//! B3 — automata machinery cost: merge construction (the intertwining
//! analysis), validation, DSL parsing, DOT export, versus protocol size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use starlink_automata::merge::{intertwine, template, MergeOptions};
use starlink_automata::{dsl, linear_usage_protocol, Automaton};
use starlink_message::equiv::SemanticRegistry;

/// Builds a pair of mergeable linear protocols with `ops` operations.
fn protocol_pair(ops: usize) -> (Automaton, Automaton, SemanticRegistry) {
    let mut reg = SemanticRegistry::new();
    let mut client_ops = Vec::new();
    let mut service_ops = Vec::new();
    for i in 0..ops {
        reg.declare_message_concept(
            &format!("op{i}"),
            [format!("client.op{i}"), format!("service.op{i}")],
        );
        reg.declare_field_concept(&format!("arg{i}"), [format!("a{i}"), format!("b{i}")]);
        reg.declare_field_concept(&format!("res{i}"), [format!("ra{i}"), format!("rb{i}")]);
        client_ops.push((
            template(&format!("client.op{i}"), &[&format!("a{i}")]),
            template(&format!("client.op{i}.reply"), &[&format!("ra{i}")]),
        ));
        service_ops.push((
            template(&format!("service.op{i}"), &[&format!("b{i}")]),
            template(&format!("service.op{i}.reply"), &[&format!("rb{i}")]),
        ));
    }
    (
        linear_usage_protocol("C", 1, &client_ops),
        linear_usage_protocol("S", 2, &service_ops),
        reg,
    )
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge/intertwine");
    for ops in [1usize, 4, 16, 64] {
        let (client, service, reg) = protocol_pair(ops);
        group.bench_with_input(BenchmarkId::from_parameter(ops), &ops, |b, _| {
            b.iter(|| intertwine(&client, &service, &reg, &MergeOptions::default()).unwrap());
        });
    }
    group.finish();
}

fn bench_validate(c: &mut Criterion) {
    let mut group = c.benchmark_group("automaton/validate");
    for ops in [4usize, 64] {
        let (client, service, reg) = protocol_pair(ops);
        let (merged, _) = intertwine(&client, &service, &reg, &MergeOptions::default()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(ops), &ops, |b, _| {
            b.iter(|| merged.validate().unwrap());
        });
    }
    group.finish();
}

fn bench_dsl(c: &mut Criterion) {
    let (client, service, reg) = protocol_pair(8);
    let (merged, _) = intertwine(&client, &service, &reg, &MergeOptions::default()).unwrap();
    let text = dsl::print(&merged);
    c.bench_function("dsl/print", |b| b.iter(|| dsl::print(&merged)));
    c.bench_function("dsl/parse", |b| b.iter(|| dsl::parse(&text).unwrap()));
    c.bench_function("dot/export", |b| b.iter(|| merged.to_dot()));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_merge, bench_validate, bench_dsl
}
criterion_main!(benches);
