//! B5 — mediated throughput: requests/second through one mediator with
//! increasing client concurrency, against the direct-call baseline.
//! Compares the thread-per-connection host against the multiplexed host
//! (bounded worker pool) at each concurrency level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use starlink_apps::calculator::{add_plus_mediator, run_add_workload, AddService, PlusService};
use starlink_bench::giop_reply;
use starlink_core::MediatorHost;
use starlink_mdl::MessageCodec;
use starlink_net::{Endpoint, Framing, LengthPrefixFraming, MemoryTransport, NetworkEngine};
use starlink_protocols::giop::giop_codec;
use std::sync::Arc;

const REQUESTS_PER_CLIENT: usize = 20;

fn network() -> NetworkEngine {
    let mut net = NetworkEngine::new();
    net.register(Arc::new(MemoryTransport::new()));
    net
}

/// Runs `clients` threads, each performing `REQUESTS_PER_CLIENT` calls.
fn run_clients(net: &NetworkEngine, endpoint: &Endpoint, clients: usize) {
    let completed = run_add_workload(net, endpoint, clients, REQUESTS_PER_CLIENT);
    assert_eq!(completed, clients * REQUESTS_PER_CLIENT);
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput/add");
    for clients in [1usize, 4, 8] {
        group.throughput(Throughput::Elements((clients * REQUESTS_PER_CLIENT) as u64));

        // Direct baseline.
        {
            let net = network();
            let service = AddService::deploy(&net, &Endpoint::memory("add")).unwrap();
            let endpoint = service.endpoint().clone();
            group.bench_with_input(BenchmarkId::new("direct", clients), &clients, |b, &n| {
                b.iter(|| run_clients(&net, &endpoint, n))
            });
        }

        // Through the thread-per-connection mediator host.
        {
            let net = network();
            let plus = PlusService::deploy(&net, &Endpoint::memory("plus")).unwrap();
            let mediator = add_plus_mediator(net.clone(), plus.endpoint().clone()).unwrap();
            let host = MediatorHost::deploy(mediator, &Endpoint::memory("bridge")).unwrap();
            let endpoint = host.endpoint().clone();
            group.bench_with_input(
                BenchmarkId::new("mediated/threaded", clients),
                &clients,
                |b, &n| b.iter(|| run_clients(&net, &endpoint, n)),
            );
        }

        // Through the multiplexed mediator host: all sessions share a
        // bounded pool of 4 worker threads regardless of client count.
        {
            let net = network();
            let plus = PlusService::deploy(&net, &Endpoint::memory("plus")).unwrap();
            let mediator = add_plus_mediator(net.clone(), plus.endpoint().clone()).unwrap();
            let host =
                MediatorHost::deploy_multiplexed(mediator, &Endpoint::memory("bridge"), 4).unwrap();
            let endpoint = host.endpoint().clone();
            group.bench_with_input(
                BenchmarkId::new("mediated/multiplexed", clients),
                &clients,
                |b, &n| b.iter(|| run_clients(&net, &endpoint, n)),
            );
        }
    }
    group.finish();
}

/// One message's full wire path — compose, frame, unframe, parse —
/// comparing the allocating API against the buffer-reusing one
/// (`compose_into` + `wrap_into` + `extract_from`).
fn bench_wire_roundtrip(c: &mut Criterion) {
    let codec = giop_codec().unwrap();
    let framing = LengthPrefixFraming::default();
    let msg = giop_reply(8);
    let wire_len = framing.wrap(&codec.compose(&msg).unwrap()).len();

    let mut group = c.benchmark_group("wire-roundtrip/giop");
    group.throughput(Throughput::Bytes(wire_len as u64));
    group.bench_function("alloc", |b| {
        b.iter(|| {
            let bytes = codec.compose(&msg).unwrap();
            let wire = framing.wrap(&bytes);
            let mut buf = wire;
            let frame = framing.extract_from(&mut buf).unwrap().unwrap();
            codec.parse(&frame).unwrap()
        });
    });
    group.bench_function("reuse", |b| {
        let mut bytes = Vec::new();
        let mut wire = Vec::new();
        b.iter(|| {
            codec.compose_into(&msg, &mut bytes).unwrap();
            framing.wrap_into(&bytes, &mut wire);
            // Receive side: hand the framer a buffer it may consume, then
            // take the allocation back for the next iteration.
            let frame = framing.extract_from(&mut wire).unwrap().unwrap();
            let parsed = codec.parse(&frame).unwrap();
            wire = frame;
            parsed
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_throughput, bench_wire_roundtrip
}
criterion_main!(benches);
