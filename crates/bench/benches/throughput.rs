//! B5 — mediated throughput: requests/second through one mediator with
//! increasing client concurrency, against the direct-call baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use starlink_apps::calculator::{add_plus_mediator, AddClient, AddService, PlusService};
use starlink_core::MediatorHost;
use starlink_net::{Endpoint, MemoryTransport, NetworkEngine};
use std::sync::Arc;

const REQUESTS_PER_CLIENT: usize = 20;

fn network() -> NetworkEngine {
    let mut net = NetworkEngine::new();
    net.register(Arc::new(MemoryTransport::new()));
    net
}

/// Runs `clients` threads, each performing `REQUESTS_PER_CLIENT` calls.
fn run_clients(net: &NetworkEngine, endpoint: &Endpoint, clients: usize) {
    let mut handles = Vec::new();
    for _ in 0..clients {
        let net = net.clone();
        let endpoint = endpoint.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = AddClient::connect(&net, &endpoint).unwrap();
            for i in 0..REQUESTS_PER_CLIENT {
                assert_eq!(client.add(i as i64, 1).unwrap(), i as i64 + 1);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput/add");
    for clients in [1usize, 4, 8] {
        group.throughput(Throughput::Elements((clients * REQUESTS_PER_CLIENT) as u64));

        // Direct baseline.
        {
            let net = network();
            let service = AddService::deploy(&net, &Endpoint::memory("add")).unwrap();
            let endpoint = service.endpoint().clone();
            group.bench_with_input(
                BenchmarkId::new("direct", clients),
                &clients,
                |b, &n| b.iter(|| run_clients(&net, &endpoint, n)),
            );
        }

        // Through the mediator.
        {
            let net = network();
            let plus = PlusService::deploy(&net, &Endpoint::memory("plus")).unwrap();
            let mediator = add_plus_mediator(net.clone(), plus.endpoint().clone()).unwrap();
            let host = MediatorHost::deploy(mediator, &Endpoint::memory("bridge")).unwrap();
            let endpoint = host.endpoint().clone();
            group.bench_with_input(
                BenchmarkId::new("mediated", clients),
                &clients,
                |b, &n| b.iter(|| run_clients(&net, &endpoint, n)),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_throughput
}
criterion_main!(benches);
