//! Ablations of the design choices DESIGN.md calls out:
//!
//! * **interpretation cost** — MTL programs are pre-parsed at mediator
//!   construction; how much does that save vs parsing at every γ?
//! * **variant-selection cost** — MDL codecs try message variants in
//!   order; how does parse cost scale with the number of variants?
//! * **layering cost** — the layered (HTTP + XML) codec vs the bare XML
//!   document codec.
//! * **bit- vs byte-aligned binary fields** — MDL field lengths are in
//!   bits; what does sub-byte packing cost?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use starlink_mdl::{MdlCodec, MessageCodec};
use starlink_message::{AbstractMessage, Direction, History, Value};
use starlink_mtl::{MtlContext, MtlProgram, TranslationCache};
use starlink_protocols::xmlrpc::{xmlrpc_codec, xmlrpc_document_codec};

fn bench_mtl_preparse(c: &mut Criterion) {
    let text = "out.a = s.a\nout.b = s.b\nout.c = concat(s.a, \"-\", s.b)";
    let mut src = AbstractMessage::new("src");
    src.set_field("a", Value::from("x"));
    src.set_field("b", Value::from("y"));
    let mut history = History::new();
    history.record("s", Direction::Received, src);

    let mut group = c.benchmark_group("ablation/mtl");
    let preparsed = MtlProgram::parse(text).unwrap();
    group.bench_function("preparsed-execute", |b| {
        b.iter(|| {
            let mut cache = TranslationCache::new();
            let mut ctx = MtlContext::new(&history, &mut cache);
            ctx.add_output("out", AbstractMessage::new("out"));
            preparsed.execute(&mut ctx).unwrap();
        });
    });
    group.bench_function("parse-every-gamma", |b| {
        b.iter(|| {
            let program = MtlProgram::parse(text).unwrap();
            let mut cache = TranslationCache::new();
            let mut ctx = MtlContext::new(&history, &mut cache);
            ctx.add_output("out", AbstractMessage::new("out"));
            program.execute(&mut ctx).unwrap();
        });
    });
    group.finish();
}

/// Builds a binary spec with `n` variants discriminated by a Kind rule;
/// the target message is the *last* variant (worst case for in-order
/// variant search).
fn many_variant_spec(n: usize) -> String {
    let mut spec = String::new();
    for i in 0..n {
        spec.push_str(&format!(
            "<Message:V{i}>\n<Rule:Kind={i}>\n<Kind:8>\n<Payload:eof:text>\n<End:Message>\n"
        ));
    }
    spec
}

fn bench_variant_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/variant-selection");
    for n in [1usize, 4, 16, 64] {
        let codec = MdlCodec::from_text(&many_variant_spec(n)).unwrap();
        let mut msg = AbstractMessage::new(format!("V{}", n - 1));
        msg.set_field("Payload", Value::from("hello"));
        let wire = codec.compose(&msg).unwrap();
        group.bench_with_input(BenchmarkId::new("worst-case-parse", n), &n, |b, _| {
            b.iter(|| codec.parse(&wire).unwrap());
        });
    }
    group.finish();
}

fn bench_layering(c: &mut Criterion) {
    let bare = xmlrpc_document_codec().unwrap();
    let layered = xmlrpc_codec("h.example.org", "/rpc").unwrap();
    let mut msg = AbstractMessage::new("MethodCall");
    msg.set_field("MethodName", Value::from("flickr.photos.search"));
    msg.set_field(
        "Params",
        Value::Array(vec![Value::Struct(vec![starlink_message::Field::new(
            "value",
            Value::from("tree"),
        )])]),
    );
    let bare_wire = bare.compose(&msg).unwrap();
    let layered_wire = layered.compose(&msg).unwrap();

    let mut group = c.benchmark_group("ablation/layering");
    group.bench_function("xml-document-only/parse", |b| {
        b.iter(|| bare.parse(&bare_wire).unwrap())
    });
    group.bench_function("http-plus-xml/parse", |b| {
        b.iter(|| layered.parse(&layered_wire).unwrap())
    });
    group.bench_function("xml-document-only/compose", |b| {
        b.iter(|| bare.compose(&msg).unwrap())
    });
    group.bench_function("http-plus-xml/compose", |b| {
        b.iter(|| layered.compose(&msg).unwrap())
    });
    group.finish();
}

fn bench_bit_packing(c: &mut Criterion) {
    // 8 single-bit flags packed into one byte vs 8 byte-wide fields.
    let packed_spec =
        "<Message:P>\n<F0:1><F1:1><F2:1><F3:1><F4:1><F5:1><F6:1><F7:1>\n<End:Message>";
    let byte_spec = "<Message:P>\n<F0:8><F1:8><F2:8><F3:8><F4:8><F5:8><F6:8><F7:8>\n<End:Message>";
    let packed = MdlCodec::from_text(packed_spec).unwrap();
    let bytes = MdlCodec::from_text(byte_spec).unwrap();
    let mut msg = AbstractMessage::new("P");
    for i in 0..8 {
        msg.set_field(&format!("F{i}"), Value::UInt(u64::from(i % 2 == 0)));
    }
    let packed_wire = packed.compose(&msg).unwrap();
    let byte_wire = bytes.compose(&msg).unwrap();
    assert_eq!(packed_wire.len(), 1);
    assert_eq!(byte_wire.len(), 8);

    let mut group = c.benchmark_group("ablation/bit-packing");
    group.bench_function("sub-byte-fields/parse", |b| {
        b.iter(|| packed.parse(&packed_wire).unwrap())
    });
    group.bench_function("byte-aligned-fields/parse", |b| {
        b.iter(|| bytes.parse(&byte_wire).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_mtl_preparse, bench_variant_selection, bench_layering, bench_bit_packing
}
criterion_main!(benches);
