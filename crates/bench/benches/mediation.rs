//! B1 — mediation overhead on the request path: latency of a direct
//! (homogeneous) call versus the same call through a Starlink mediator,
//! for both the calculator and the Flickr/Picasa case study.
//!
//! The paper's shape claim: mediation adds parse + translate + compose
//! work and one extra network hop — a constant factor, not an
//! asymptotic change.

use criterion::{criterion_group, criterion_main, Criterion};
use starlink_apps::calculator::{add_plus_mediator, AddClient, AddService, PlusService};
use starlink_apps::flickr::{FlickrClient, FlickrFlavor};
use starlink_apps::models::flickr_picasa_mediator;
use starlink_apps::picasa::{PicasaClient, PicasaService};
use starlink_apps::store::PhotoStore;
use starlink_core::MediatorHost;
use starlink_net::{Endpoint, MemoryTransport, NetworkEngine};
use std::sync::Arc;

fn network() -> NetworkEngine {
    let mut net = NetworkEngine::new();
    net.register(Arc::new(MemoryTransport::new()));
    net
}

fn bench_calculator(c: &mut Criterion) {
    let mut group = c.benchmark_group("latency/calculator");

    // Direct: IIOP client → IIOP service.
    {
        let net = network();
        let service = AddService::deploy(&net, &Endpoint::memory("add")).unwrap();
        let mut client = AddClient::connect(&net, service.endpoint()).unwrap();
        group.bench_function("direct-iiop", |b| {
            b.iter(|| client.add(30, 12).unwrap());
        });
    }

    // Mediated: IIOP client → mediator → SOAP service.
    {
        let net = network();
        let plus = PlusService::deploy(&net, &Endpoint::memory("plus")).unwrap();
        let mediator = add_plus_mediator(net.clone(), plus.endpoint().clone()).unwrap();
        let host = MediatorHost::deploy(mediator, &Endpoint::memory("bridge")).unwrap();
        let mut client = AddClient::connect(&net, host.endpoint()).unwrap();
        group.bench_function("mediated-iiop-to-soap", |b| {
            b.iter(|| client.add(30, 12).unwrap());
        });
    }
    group.finish();
}

fn bench_case_study_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("latency/photo-search");

    // Direct: native REST client → Picasa.
    {
        let net = network();
        let service = PicasaService::deploy(
            &net,
            &Endpoint::memory("picasa"),
            PhotoStore::with_fixture(),
        )
        .unwrap();
        let mut client = PicasaClient::connect(&net, service.endpoint()).unwrap();
        group.bench_function("direct-rest", |b| {
            b.iter(|| client.search("tree", 3).unwrap());
        });
    }

    // Mediated: XML-RPC Flickr client → mediator → Picasa.
    {
        let net = network();
        let service = PicasaService::deploy(
            &net,
            &Endpoint::memory("picasa"),
            PhotoStore::with_fixture(),
        )
        .unwrap();
        let mediator = flickr_picasa_mediator(
            net.clone(),
            FlickrFlavor::XmlRpc,
            service.endpoint().clone(),
        )
        .unwrap();
        let host = MediatorHost::deploy(mediator, &Endpoint::memory("mediator")).unwrap();
        let mut client =
            FlickrClient::connect(&net, host.endpoint(), FlickrFlavor::XmlRpc).unwrap();
        group.bench_function("mediated-xmlrpc-to-rest", |b| {
            b.iter(|| client.search("tree", 3).unwrap());
        });
    }

    // Mediated, SOAP flavor.
    {
        let net = network();
        let service = PicasaService::deploy(
            &net,
            &Endpoint::memory("picasa"),
            PhotoStore::with_fixture(),
        )
        .unwrap();
        let mediator =
            flickr_picasa_mediator(net.clone(), FlickrFlavor::Soap, service.endpoint().clone())
                .unwrap();
        let host = MediatorHost::deploy(mediator, &Endpoint::memory("mediator")).unwrap();
        let mut client = FlickrClient::connect(&net, host.endpoint(), FlickrFlavor::Soap).unwrap();
        group.bench_function("mediated-soap-to-rest", |b| {
            b.iter(|| client.search("tree", 3).unwrap());
        });
    }
    group.finish();
}

fn bench_getinfo_cache_answer(c: &mut Criterion) {
    // The Fig. 10 path: answered entirely inside the mediator — should
    // be *faster* than an intertwined operation (no service hop).
    let net = network();
    let service = PicasaService::deploy(
        &net,
        &Endpoint::memory("picasa"),
        PhotoStore::with_fixture(),
    )
    .unwrap();
    let mediator = flickr_picasa_mediator(
        net.clone(),
        FlickrFlavor::XmlRpc,
        service.endpoint().clone(),
    )
    .unwrap();
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("mediator")).unwrap();
    let mut client = FlickrClient::connect(&net, host.endpoint(), FlickrFlavor::XmlRpc).unwrap();
    let ids = client.search("tree", 3).unwrap();
    let id = ids[0].clone();
    c.bench_function("latency/getinfo-from-cache", |b| {
        b.iter(|| client.get_info(&id).unwrap());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_calculator, bench_case_study_search, bench_getinfo_cache_answer
}
criterion_main!(benches);
