//! B2 — parser/composer cost per protocol family (binary vs text vs
//! XML), versus message size. Regenerates the implicit claim that
//! spec-driven generic codecs are cheap enough for the request path.
//!
//! Also measures the two perf levers of the codec pipeline and records
//! every measurement to `BENCH_codec.json` (override the path with
//! `BENCH_CODEC_JSON`):
//!
//! * `dispatch/*` — probe-directed variant dispatch ([`MessageCodec::parse`])
//!   against the exhaustive try-all loop ([`MdlCodec::parse_try_all`]),
//!   on wires whose variant is *not* declared first.
//! * `compose-reuse/*` — buffer-reusing [`MessageCodec::compose_into`]
//!   against the allocating [`MessageCodec::compose`].
//! * `sink-overhead/*` — the instrumented `parse` with a no-op / live
//!   telemetry sink against the uninstrumented loop
//!   ([`MdlCodec::parse_uninstrumented`]); in fast mode the no-op path
//!   is asserted to stay within 5% of the baseline. The `tracing-sink`
//!   case prices the full per-session tracing stack (span-scoped
//!   metadata fanned out to recorder + trace buffer + flight recorder)
//!   a deployment with `Mediator::enable_tracing` pays on the same path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use starlink_bench::{
    gdata_feed, giop_reply, giop_request, http_get, http_response, soap_request, xmlrpc_call,
};
use starlink_mdl::MessageCodec;
use starlink_protocols::gdata::gdata_document_codec;
use starlink_protocols::giop::giop_codec;
use starlink_protocols::http::http_codec;
use starlink_protocols::soap::soap_envelope_codec;
use starlink_protocols::xmlrpc::xmlrpc_document_codec;

fn bench_compose(c: &mut Criterion) {
    let giop = giop_codec().unwrap();
    let http = http_codec().unwrap();
    let xmlrpc = xmlrpc_document_codec().unwrap();
    let soap = soap_envelope_codec().unwrap();
    let gdata = gdata_document_codec().unwrap();

    let mut group = c.benchmark_group("compose");
    for size in [1usize, 8, 64] {
        group.bench_with_input(BenchmarkId::new("giop-binary", size), &size, |b, &s| {
            let msg = giop_request(s);
            b.iter(|| giop.compose(&msg).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("xmlrpc-xml", size), &size, |b, &s| {
            let msg = xmlrpc_call(s);
            b.iter(|| xmlrpc.compose(&msg).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("soap-xml", size), &size, |b, &s| {
            let msg = soap_request(s);
            b.iter(|| soap.compose(&msg).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("gdata-xml", size), &size, |b, &s| {
            let msg = gdata_feed(s);
            b.iter(|| gdata.compose(&msg).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("http-text", size), &size, |b, &s| {
            let msg = http_get(s * 8);
            b.iter(|| http.compose(&msg).unwrap());
        });
    }
    group.finish();
}

fn bench_parse(c: &mut Criterion) {
    let giop = giop_codec().unwrap();
    let http = http_codec().unwrap();
    let xmlrpc = xmlrpc_document_codec().unwrap();
    let soap = soap_envelope_codec().unwrap();
    let gdata = gdata_document_codec().unwrap();

    let mut group = c.benchmark_group("parse");
    for size in [1usize, 8, 64] {
        let giop_wire = giop.compose(&giop_request(size)).unwrap();
        let xmlrpc_wire = xmlrpc.compose(&xmlrpc_call(size)).unwrap();
        let soap_wire = soap.compose(&soap_request(size)).unwrap();
        let gdata_wire = gdata.compose(&gdata_feed(size)).unwrap();
        let http_wire = http.compose(&http_get(size * 8)).unwrap();

        group.throughput(Throughput::Bytes(giop_wire.len() as u64));
        group.bench_with_input(BenchmarkId::new("giop-binary", size), &size, |b, _| {
            b.iter(|| giop.parse(&giop_wire).unwrap());
        });
        group.throughput(Throughput::Bytes(xmlrpc_wire.len() as u64));
        group.bench_with_input(BenchmarkId::new("xmlrpc-xml", size), &size, |b, _| {
            b.iter(|| xmlrpc.parse(&xmlrpc_wire).unwrap());
        });
        group.throughput(Throughput::Bytes(soap_wire.len() as u64));
        group.bench_with_input(BenchmarkId::new("soap-xml", size), &size, |b, _| {
            b.iter(|| soap.parse(&soap_wire).unwrap());
        });
        group.throughput(Throughput::Bytes(gdata_wire.len() as u64));
        group.bench_with_input(BenchmarkId::new("gdata-xml", size), &size, |b, _| {
            b.iter(|| gdata.parse(&gdata_wire).unwrap());
        });
        group.throughput(Throughput::Bytes(http_wire.len() as u64));
        group.bench_with_input(BenchmarkId::new("http-text", size), &size, |b, _| {
            b.iter(|| http.parse(&http_wire).unwrap());
        });
    }
    group.finish();
}

fn bench_dispatch(c: &mut Criterion) {
    let giop = giop_codec().unwrap();
    let http = http_codec().unwrap();
    let soap = soap_envelope_codec().unwrap();

    // Wires whose message is NOT the first declared variant, so a
    // try-all parser pays for at least one full failed attempt while the
    // probe table skips straight to the right program.
    let cases: Vec<(&str, &starlink_mdl::MdlCodec, Vec<u8>)> = vec![
        ("giop-reply", &giop, giop.compose(&giop_reply(8)).unwrap()),
        (
            "http-response",
            &http,
            http.compose(&http_response(64)).unwrap(),
        ),
        (
            "soap-request",
            &soap,
            soap.compose(&soap_request(8)).unwrap(),
        ),
    ];

    let mut group = c.benchmark_group("dispatch");
    for (name, codec, wire) in &cases {
        // Dispatch and try-all must agree before we time them.
        let fast = codec.parse(wire).unwrap();
        let slow = codec.parse_try_all(wire).unwrap();
        assert_eq!(fast, slow, "{name}: dispatch result diverged");

        group.throughput(Throughput::Bytes(wire.len() as u64));
        group.bench_with_input(BenchmarkId::new("probed", name), wire, |b, wire| {
            b.iter(|| codec.parse(wire).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("try-all", name), wire, |b, wire| {
            b.iter(|| codec.parse_try_all(wire).unwrap());
        });
    }
    group.finish();
}

fn bench_compose_reuse(c: &mut Criterion) {
    let giop = giop_codec().unwrap();
    let http = http_codec().unwrap();
    let soap = soap_envelope_codec().unwrap();

    let cases: Vec<(
        &str,
        &starlink_mdl::MdlCodec,
        starlink_message::AbstractMessage,
    )> = vec![
        ("giop-reply", &giop, giop_reply(8)),
        ("http-response", &http, http_response(64)),
        ("soap-request", &soap, soap_request(8)),
    ];

    let mut group = c.benchmark_group("compose-reuse");
    for (name, codec, msg) in &cases {
        group.bench_with_input(BenchmarkId::new("alloc", name), msg, |b, msg| {
            b.iter(|| codec.compose(msg).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("reuse", name), msg, |b, msg| {
            let mut buf = Vec::new();
            b.iter(|| codec.compose_into(msg, &mut buf).unwrap());
        });
    }
    group.finish();
}

/// Measures what telemetry instrumentation costs on the codec hot path:
/// the pre-instrumentation parse loop ([`MdlCodec::parse_uninstrumented`]),
/// the instrumented [`MessageCodec::parse`] with the default no-op sink
/// (one `enabled()` check, then delegation to the uninstrumented loop),
/// and `parse` with a live [`Recorder`] aggregating every probe outcome.
///
/// In fast mode this doubles as a regression gate: the no-op-sink path
/// must stay within 5% of the uninstrumented baseline (plus a small
/// absolute epsilon so sub-microsecond parses don't flake on timer
/// granularity).
fn bench_sink_overhead(c: &mut Criterion) {
    use starlink_telemetry::{
        FanoutSink, FlightRecorder, Recorder, SessionTracer, SpanScopedSink, TelemetrySink,
        TraceBuffer,
    };
    use std::sync::Arc;

    let giop = giop_codec().unwrap();
    let soap = soap_envelope_codec().unwrap();
    let giop_traced = giop_codec()
        .unwrap()
        .with_telemetry(Arc::new(Recorder::new()));
    let soap_traced = soap_envelope_codec()
        .unwrap()
        .with_telemetry(Arc::new(Recorder::new()));

    let cases: Vec<(
        &str,
        &starlink_mdl::MdlCodec,
        &starlink_mdl::MdlCodec,
        Vec<u8>,
    )> = vec![
        (
            "giop-reply",
            &giop,
            &giop_traced,
            giop.compose(&giop_reply(8)).unwrap(),
        ),
        (
            "soap-request",
            &soap,
            &soap_traced,
            soap.compose(&soap_request(8)).unwrap(),
        ),
    ];

    let mut group = c.benchmark_group("sink-overhead");
    for (name, plain, traced, wire) in &cases {
        group.throughput(Throughput::Bytes(wire.len() as u64));
        group.bench_with_input(BenchmarkId::new("uninstrumented", name), wire, |b, wire| {
            b.iter(|| plain.parse_uninstrumented(wire).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("noop-sink", name), wire, |b, wire| {
            b.iter(|| plain.parse(wire).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("recorder-sink", name), wire, |b, wire| {
            b.iter(|| traced.parse(wire).unwrap());
        });
        // The full tracing stack installed by `Mediator::enable_tracing`:
        // every probe event carries span metadata and fans out to the
        // aggregate recorder, the trace buffer and the flight recorder
        // (both per-trace bounded, so steady state is ring-buffer churn).
        group.bench_with_input(BenchmarkId::new("tracing-sink", name), wire, |b, wire| {
            let stack: Arc<dyn TelemetrySink> = Arc::new(FanoutSink::new(vec![
                Arc::new(Recorder::new()) as Arc<dyn TelemetrySink>,
                Arc::new(TraceBuffer::new()) as Arc<dyn TelemetrySink>,
                Arc::new(FlightRecorder::new()) as Arc<dyn TelemetrySink>,
            ]));
            let tracer =
                SessionTracer::for_sink(stack.as_ref()).expect("tracing stack wants spans");
            let scoped = SpanScopedSink::new(&tracer, stack.as_ref());
            b.iter(|| plain.parse_with_sink(wire, &scoped).unwrap());
        });
    }
    group.finish();

    if criterion::fast_mode() {
        for (name, plain, _, wire) in &cases {
            assert_noop_overhead(name, plain, wire);
        }
    }
}

/// Paired measurement for the fast-mode gate: interleaves baseline and
/// no-op-sink rounds (so clock drift hits both equally) and compares the
/// best round of each. The criterion samples above are too short in fast
/// mode to assert on directly.
fn assert_noop_overhead(name: &str, codec: &starlink_mdl::MdlCodec, wire: &[u8]) {
    use std::time::Instant;

    let round = |f: &mut dyn FnMut()| {
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < std::time::Duration::from_millis(10) {
            for _ in 0..64 {
                f();
            }
            iters += 64;
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    };

    let mut base = f64::INFINITY;
    let mut noop = f64::INFINITY;
    for _ in 0..5 {
        base = base.min(round(&mut || {
            criterion::black_box(codec.parse_uninstrumented(wire).unwrap());
        }));
        noop = noop.min(round(&mut || {
            criterion::black_box(codec.parse(wire).unwrap());
        }));
    }
    println!("sink-overhead gate: {name}: base {base:.1} ns, noop-sink {noop:.1} ns");
    assert!(
        noop <= base * 1.05 + 50.0,
        "{name}: no-op sink overhead too high: {noop:.1} ns vs {base:.1} ns baseline"
    );
}

/// Last target: dumps everything measured in this process to
/// `BENCH_codec.json` at the repo root (or `$BENCH_CODEC_JSON`).
fn emit_baseline(_c: &mut Criterion) {
    let path = std::env::var("BENCH_CODEC_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_codec.json").to_owned()
    });
    let path = std::path::PathBuf::from(path);
    criterion::save_json(&path).expect("write bench baseline");
    println!("baseline written to {}", path.display());
}

fn bench_spec_compilation(c: &mut Criterion) {
    // Deploying a mediator compiles its MDL specs; this must be cheap
    // enough for runtime deployment ("dynamically generate parsers").
    c.bench_function("compile/giop-spec", |b| {
        b.iter(|| giop_codec().unwrap());
    });
    c.bench_function("compile/http-spec", |b| {
        b.iter(|| http_codec().unwrap());
    });
    c.bench_function("compile/xmlrpc-spec", |b| {
        b.iter(|| xmlrpc_document_codec().unwrap());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_compose, bench_parse, bench_dispatch, bench_compose_reuse,
        bench_sink_overhead, bench_spec_compilation, emit_baseline
}
criterion_main!(benches);
