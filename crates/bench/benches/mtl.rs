//! B4 — MTL interpretation cost: parsing, plain assignments, list
//! translation with the Fig. 9 cache pattern, `getcache` lookups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use starlink_message::{AbstractMessage, Direction, Field, History, Value};
use starlink_mtl::{MtlContext, MtlProgram, TranslationCache};

fn history_with_entries(entries: usize) -> History {
    let mut reply = AbstractMessage::new("picasa.search.reply");
    reply.set_field(
        "Entries",
        Value::Array(
            (0..entries)
                .map(|i| {
                    Value::Struct(vec![
                        Field::new("id", Value::Str(format!("gphoto-{i}"))),
                        Field::new("title", Value::Str(format!("Photo {i}"))),
                        Field::new("url", Value::Str(format!("http://x/{i}.jpg"))),
                    ])
                })
                .collect(),
        ),
    );
    let mut h = History::new();
    h.record("m4", Direction::Received, reply);
    h
}

fn bench_parse(c: &mut Criterion) {
    let fig9 = r#"
m5.photos = newarray()
foreach e in m4.Entries {
  let p = newstruct()
  p.id = genid()
  cache(p.id, e)
  append(m5.photos, p)
}
"#;
    c.bench_function("mtl/parse-fig9", |b| {
        b.iter(|| MtlProgram::parse(fig9).unwrap())
    });

    let assignments: String = (0..32).map(|i| format!("out.f{i} = src.f{i}\n")).collect();
    c.bench_function("mtl/parse-32-assignments", |b| {
        b.iter(|| MtlProgram::parse(&assignments).unwrap())
    });
}

fn bench_assignments(c: &mut Criterion) {
    let mut group = c.benchmark_group("mtl/execute-assignments");
    for n in [2usize, 8, 32] {
        let program_text: String = (0..n).map(|i| format!("out.f{i} = src.f{i}\n")).collect();
        let program = MtlProgram::parse(&program_text).unwrap();
        let mut src = AbstractMessage::new("src");
        for i in 0..n {
            src.set_field(&format!("f{i}"), Value::Int(i as i64));
        }
        let mut history = History::new();
        history.record("src", Direction::Received, src);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut cache = TranslationCache::new();
                let mut ctx = MtlContext::new(&history, &mut cache);
                ctx.add_output("out", AbstractMessage::new("out"));
                program.execute(&mut ctx).unwrap();
                ctx.take_output("out").unwrap()
            });
        });
    }
    group.finish();
}

fn bench_fig9_foreach(c: &mut Criterion) {
    let program = MtlProgram::parse(
        r#"
m5.photos = newarray()
foreach e in m4.Entries {
  let p = newstruct()
  p.id = genid()
  cache(p.id, e)
  append(m5.photos, p)
}
"#,
    )
    .unwrap();
    let mut group = c.benchmark_group("mtl/fig9-cache-translation");
    for entries in [3usize, 25, 200] {
        let history = history_with_entries(entries);
        group.bench_with_input(BenchmarkId::from_parameter(entries), &entries, |b, _| {
            b.iter(|| {
                let mut cache = TranslationCache::new();
                let mut ctx = MtlContext::new(&history, &mut cache);
                ctx.add_output("m5", AbstractMessage::new("flickr.search.reply"));
                program.execute(&mut ctx).unwrap();
                ctx.take_output("m5").unwrap()
            });
        });
    }
    group.finish();
}

fn bench_getcache(c: &mut Criterion) {
    let program =
        MtlProgram::parse("let e = getcache(m8.photo_id)\nm9.photo = e\nm9.url = e.url").unwrap();
    let mut cache = TranslationCache::new();
    for i in 0..1000 {
        cache.put(
            format!("{}", 1000 + i),
            Value::Struct(vec![
                Field::new("title", Value::Str(format!("Photo {i}"))),
                Field::new("url", Value::Str(format!("http://x/{i}.jpg"))),
            ]),
        );
    }
    let mut getinfo = AbstractMessage::new("flickr.photos.getInfo");
    getinfo.set_field("photo_id", Value::from("1500"));
    let mut history = History::new();
    history.record("m8", Direction::Received, getinfo);
    c.bench_function("mtl/fig10-getcache", |b| {
        b.iter(|| {
            let mut ctx = MtlContext::new(&history, &mut cache);
            ctx.add_output("m9", AbstractMessage::new("flickr.photos.getInfo.reply"));
            program.execute(&mut ctx).unwrap();
            ctx.take_output("m9").unwrap()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_parse, bench_assignments, bench_fig9_foreach, bench_getcache
}
criterion_main!(benches);
