//! Shared fixtures for the Starlink benchmark harness (DESIGN.md §4,
//! rows B1–B5). Each Criterion bench regenerates one implicit performance
//! claim of the paper's evaluation; EXPERIMENTS.md records the measured
//! shapes.

use starlink_message::{AbstractMessage, Field, Value};

/// A GIOP request with `params` integer parameters.
pub fn giop_request(params: usize) -> AbstractMessage {
    let mut m = AbstractMessage::new("GIOPRequest");
    m.set_field("VersionMajor", Value::UInt(1));
    m.set_field("VersionMinor", Value::UInt(0));
    m.set_field("Flags", Value::UInt(0));
    m.set_field("RequestID", Value::UInt(7));
    m.set_field("ResponseExpected", Value::UInt(1));
    m.set_field("ObjectKey", Value::Bytes(b"bench".to_vec()));
    m.set_field("Operation", Value::from("benchOp"));
    m.set_field(
        "ParameterArray",
        Value::Array((0..params).map(|i| Value::Int(i as i64)).collect()),
    );
    m
}

/// A GIOP reply with `params` integer result values. Replies are the
/// *second* variant of the GIOP spec, so parsing one exercises variant
/// dispatch (a try-all parser must fail `GIOPRequest` first).
pub fn giop_reply(params: usize) -> AbstractMessage {
    let mut m = AbstractMessage::new("GIOPReply");
    m.set_field("VersionMajor", Value::UInt(1));
    m.set_field("VersionMinor", Value::UInt(0));
    m.set_field("Flags", Value::UInt(0));
    m.set_field("RequestID", Value::UInt(7));
    m.set_field("ReplyStatus", Value::UInt(0));
    m.set_field(
        "ParameterArray",
        Value::Array((0..params).map(|i| Value::Int(i as i64)).collect()),
    );
    m
}

/// An HTTP 200 response with a `body_len`-byte body (the second variant
/// of the HTTP spec).
pub fn http_response(body_len: usize) -> AbstractMessage {
    let mut m = AbstractMessage::new("HTTPResponse");
    m.set_field("Version", Value::from("HTTP/1.1"));
    m.set_field("Code", Value::from("200"));
    m.set_field("Reason", Value::from("OK"));
    m.set_field(
        "Headers",
        Value::Struct(vec![Field::new("Content-Type", Value::from("text/plain"))]),
    );
    m.set_field("Body", Value::Str("y".repeat(body_len)));
    m
}

/// A SOAP reply with `params` string result values.
pub fn soap_reply(params: usize) -> AbstractMessage {
    let mut m = AbstractMessage::new("SOAPReply");
    m.set_field("MethodName", Value::from("benchOpResponse"));
    m.set_field(
        "Params",
        Value::Array(
            (0..params)
                .map(|i| Value::Str(format!("result-{i}")))
                .collect(),
        ),
    );
    m
}

/// An XML-RPC method call with `params` string parameters.
pub fn xmlrpc_call(params: usize) -> AbstractMessage {
    let mut m = AbstractMessage::new("MethodCall");
    m.set_field("MethodName", Value::from("flickr.photos.search"));
    m.set_field(
        "Params",
        Value::Array(
            (0..params)
                .map(|i| Value::Struct(vec![Field::new("value", Value::Str(format!("param-{i}")))]))
                .collect(),
        ),
    );
    m
}

/// A SOAP request with `params` string parameters.
pub fn soap_request(params: usize) -> AbstractMessage {
    let mut m = AbstractMessage::new("SOAPRequest");
    m.set_field("MethodName", Value::from("benchOp"));
    m.set_field(
        "Params",
        Value::Array(
            (0..params)
                .map(|i| Value::Str(format!("param-{i}")))
                .collect(),
        ),
    );
    m
}

/// A GData feed with `entries` photo entries.
pub fn gdata_feed(entries: usize) -> AbstractMessage {
    let mut m = AbstractMessage::new("GDataFeed");
    m.set_field("Title", Value::from("Search Results"));
    m.set_field(
        "Entries",
        Value::Array(
            (0..entries)
                .map(|i| {
                    Value::Struct(vec![
                        Field::new("id", Value::Str(format!("gphoto-{i}"))),
                        Field::new("title", Value::Str(format!("Photo {i}"))),
                        Field::new("url", Value::Str(format!("http://p.example.org/{i}.jpg"))),
                    ])
                })
                .collect(),
        ),
    );
    m
}

/// An HTTP GET request message.
pub fn http_get(query_len: usize) -> AbstractMessage {
    let mut m = AbstractMessage::new("HTTPRequest");
    m.set_field("Method", Value::from("GET"));
    m.set_field(
        "RequestURI",
        Value::Str(format!("/data/feed/api/all?q={}", "x".repeat(query_len))),
    );
    m.set_field("Version", Value::from("HTTP/1.1"));
    m.set_field(
        "Headers",
        Value::Struct(vec![Field::new("Host", Value::from("bench.example.org"))]),
    );
    m.set_field("Body", Value::from(""));
    m
}
