//! Vendored minimal property-testing harness.
//!
//! This crate implements the (small) subset of the `proptest` API the
//! Starlink workspace uses, so that `cargo test` works in offline /
//! air-gapped environments where crates.io is unreachable. It keeps the
//! source-level API of the real crate — `proptest! { #[test] fn f(x in
//! strategy) { .. } }`, `prop_assert*`, `prop_oneof!`, `any::<T>()`,
//! regex-literal string strategies, `collection::vec`, `option::of`,
//! `prop_map`, `prop_recursive` — but replaces the engine with a
//! deterministic sampler: each test runs a fixed number of cases drawn
//! from a seeded PRNG (no shrinking; the failing case index and seed are
//! reported instead).

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic PRNG + test-case plumbing.

    use std::fmt;

    /// Number of sampled cases per property.
    pub const CASES: usize = 64;

    /// A test-case failure raised by `prop_assert!` and friends.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// SplitMix64: tiny, fast, deterministic.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// A generator seeded from an arbitrary value.
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng(seed ^ 0x5851_F42D_4C95_7F2D)
        }

        /// A generator seeded from a test's name (stable across runs).
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::from_seed(h)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe producing random values of one type.
    pub trait Strategy {
        /// The type of value produced.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps produced values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (cheap to clone).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let s = self;
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| s.sample(rng)))
        }

        /// Builds recursive values by applying `recurse` `depth` times to
        /// the leaf strategy (`_size`/`_branch` accepted for proptest API
        /// compatibility; recursion depth alone bounds the samples here).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _size: u32,
            _branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut s = self.boxed();
            for _ in 0..depth {
                s = recurse(s).boxed();
            }
            s
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// `prop_oneof!` support: uniform choice among alternatives.
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Builds a union over the given alternatives.
        pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(
                !alternatives.is_empty(),
                "prop_oneof! needs at least one arm"
            );
            Union(alternatives)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].sample(rng)
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy for `any::<T>()`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Produces arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    lo + (rng.below(span.saturating_add(1)) as $t)
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, G);

    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            crate::string::sample_regex(self, rng)
        }
    }
}

pub mod string {
    //! Sampler for the regex subset used as string strategies: literal
    //! characters, character classes (`[a-z0-9_.-]`), groups with
    //! alternation (`(GET|POST)`), and `{n}`/`{m,n}`/`*`/`+`/`?`
    //! quantifiers.

    use crate::test_runner::TestRng;

    #[derive(Debug, Clone)]
    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
        Group(Vec<Vec<(Atom, u32, u32)>>),
    }

    /// Parses `pattern` and draws one matching string.
    pub fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0usize;
        let alts = parse_alternation(&chars, &mut pos);
        if pos < chars.len() {
            panic!("unsupported regex strategy `{pattern}` (at offset {pos})");
        }
        let mut out = String::new();
        emit_alternation(&alts, rng, &mut out);
        out
    }

    type Seq = Vec<(Atom, u32, u32)>;

    fn parse_alternation(chars: &[char], pos: &mut usize) -> Vec<Seq> {
        let mut alts = vec![parse_sequence(chars, pos)];
        while *pos < chars.len() && chars[*pos] == '|' {
            *pos += 1;
            alts.push(parse_sequence(chars, pos));
        }
        alts
    }

    fn parse_sequence(chars: &[char], pos: &mut usize) -> Seq {
        let mut seq = Seq::new();
        while *pos < chars.len() && chars[*pos] != '|' && chars[*pos] != ')' {
            let atom = parse_atom(chars, pos);
            let (lo, hi) = parse_quantifier(chars, pos);
            seq.push((atom, lo, hi));
        }
        seq
    }

    fn parse_atom(chars: &[char], pos: &mut usize) -> Atom {
        match chars[*pos] {
            '[' => {
                *pos += 1;
                let mut ranges = Vec::new();
                while *pos < chars.len() && chars[*pos] != ']' {
                    let c = read_char(chars, pos);
                    if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
                        *pos += 1;
                        let hi = read_char(chars, pos);
                        ranges.push((c, hi));
                    } else {
                        ranges.push((c, c));
                    }
                }
                *pos += 1; // ']'
                Atom::Class(ranges)
            }
            '(' => {
                *pos += 1;
                let alts = parse_alternation(chars, pos);
                assert!(
                    *pos < chars.len() && chars[*pos] == ')',
                    "unterminated group in regex strategy"
                );
                *pos += 1;
                Atom::Group(alts)
            }
            _ => Atom::Literal(read_char(chars, pos)),
        }
    }

    fn read_char(chars: &[char], pos: &mut usize) -> char {
        let c = chars[*pos];
        *pos += 1;
        if c == '\\' && *pos < chars.len() {
            let escaped = chars[*pos];
            *pos += 1;
            escaped
        } else {
            c
        }
    }

    fn parse_quantifier(chars: &[char], pos: &mut usize) -> (u32, u32) {
        if *pos >= chars.len() {
            return (1, 1);
        }
        match chars[*pos] {
            '{' => {
                *pos += 1;
                let mut lo = 0u32;
                while chars[*pos].is_ascii_digit() {
                    lo = lo * 10 + chars[*pos].to_digit(10).unwrap();
                    *pos += 1;
                }
                let hi = if chars[*pos] == ',' {
                    *pos += 1;
                    let mut h = 0u32;
                    while chars[*pos].is_ascii_digit() {
                        h = h * 10 + chars[*pos].to_digit(10).unwrap();
                        *pos += 1;
                    }
                    h
                } else {
                    lo
                };
                assert!(chars[*pos] == '}', "unterminated quantifier");
                *pos += 1;
                (lo, hi)
            }
            '*' => {
                *pos += 1;
                (0, 4)
            }
            '+' => {
                *pos += 1;
                (1, 4)
            }
            '?' => {
                *pos += 1;
                (0, 1)
            }
            _ => (1, 1),
        }
    }

    fn emit_alternation(alts: &[Seq], rng: &mut TestRng, out: &mut String) {
        let seq = &alts[rng.below(alts.len() as u64) as usize];
        for (atom, lo, hi) in seq {
            let n = lo + rng.below(u64::from(hi - lo) + 1) as u32;
            for _ in 0..n {
                emit_atom(atom, rng, out);
            }
        }
    }

    fn emit_atom(atom: &Atom, rng: &mut TestRng, out: &mut String) {
        match atom {
            Atom::Literal(c) => out.push(*c),
            Atom::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(lo, hi)| u64::from(*hi) - u64::from(*lo) + 1)
                    .sum();
                let mut idx = rng.below(total);
                for (lo, hi) in ranges {
                    let span = u64::from(*hi) - u64::from(*lo) + 1;
                    if idx < span {
                        out.push(char::from_u32(*lo as u32 + idx as u32).unwrap_or(*lo));
                        break;
                    }
                    idx -= span;
                }
            }
            Atom::Group(alts) => emit_alternation(alts, rng, out),
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing vectors with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end.saturating_sub(self.len.start).max(1);
            let n = self.len.start + rng.below(span as u64) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Some` half the time.
    pub struct OptionStrategy<S>(S);

    /// `None` or `Some(inner)` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                Some(self.0.sample(rng))
            } else {
                None
            }
        }
    }
}

/// Declares property tests: each `fn` body runs [`test_runner::CASES`]
/// times with fresh sampled inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..$crate::test_runner::CASES {
                    let ($($pat,)+) = ($($crate::strategy::Strategy::sample(&($strat), &mut rng),)+);
                    #[allow(clippy::redundant_closure_call)]
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "property `{}` failed on case {case}: {e}",
                            stringify!($name)
                        );
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{} (`{:?}` != `{:?}`)",
                    format!($($fmt)*),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: both sides equal `{:?}`",
            left
        );
    }};
}

/// Uniform choice among strategy alternatives of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_sampler_respects_shape() {
        let mut rng = TestRng::from_seed(42);
        for _ in 0..200 {
            let s = crate::string::sample_regex("[a-z][a-z0-9]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "bad sample `{s}`");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
        for _ in 0..50 {
            let s = crate::string::sample_regex("(GET|POST|PUT|DELETE)", &mut rng);
            assert!(matches!(s.as_str(), "GET" | "POST" | "PUT" | "DELETE"));
        }
        let fixed = crate::string::sample_regex("abc", &mut rng);
        assert_eq!(fixed, "abc");
    }

    #[test]
    fn ranges_and_vec_stay_in_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..100 {
            let v = (1u8..9).sample(&mut rng);
            assert!((1..9).contains(&v));
            let xs = crate::collection::vec(any::<u8>(), 2..5).sample(&mut rng);
            assert!(xs.len() >= 2 && xs.len() < 5);
        }
    }

    proptest! {
        #[test]
        fn macro_roundtrip(x in 0u64..100, s in "[a-z]{1,3}") {
            prop_assert!(x < 100);
            prop_assert!(!s.is_empty() && s.len() <= 3);
            prop_assert_eq!(s.clone(), s);
        }
    }
}
