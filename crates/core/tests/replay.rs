//! Deterministic sans-I/O replay: the automata engine driven with
//! scripted wire bytes through [`SessionCore`] — no threads, no sockets,
//! no timeouts. The test plays both peers: it composes the client's and
//! the service's protocol messages with the same codecs/bindings the
//! real peers use, feeds the bytes to the core, and checks the exact
//! instruction stream the core emits.

use starlink_automata::merge::{template, MergeBuilder};
use starlink_automata::Automaton;
use starlink_core::{
    ActionRule, ColorRuntime, Mediator, ParamRule, ProtocolBinding, ReplyAction, SessionCore,
    SessionEvent, SessionIo, SessionPersist,
};
use starlink_mdl::{MdlCodec, MessageCodec};
use starlink_message::{AbstractMessage, Field, Value};
use starlink_net::{Endpoint, NetworkEngine};
use std::sync::Arc;

const GIOPISH_MDL: &str = "\
<Message:GIOPRequest>\n\
<Rule:MessageType=0>\n\
<MessageType:8><RequestID:32>\n\
<OperationLength:32><Operation:OperationLength>\n\
<align:64><ParameterArray:eof:valueseq>\n\
<End:Message>\n\
<Message:GIOPReply>\n\
<Rule:MessageType=1>\n\
<MessageType:8><RequestID:32>\n\
<align:64><ParameterArray:eof:valueseq>\n\
<End:Message>";

const SOAPISH_MDL: &str = "\
<Dialect:xml>\n\
<Message:SOAPRequest>\n\
<Root:soap:Envelope>\n\
<RootAttr:xmlns:soap=http://schemas.xmlsoap.org/soap/envelope/>\n\
<Name:MethodName=Body>\n\
<List:Params=Body/{MethodName}/*>\n\
<End:Message>\n\
<Message:SOAPReply>\n\
<Root:soap:ReplyEnvelope>\n\
<Name:MethodName=Body>\n\
<List:Params=Body/{MethodName}/*>\n\
<End:Message>";

fn giop_binding() -> ProtocolBinding {
    ProtocolBinding {
        name: "IIOP".into(),
        mdl: "GIOP.mdl".into(),
        request_message: "GIOPRequest".into(),
        reply_message: "GIOPReply".into(),
        request_action: ActionRule::Field("Operation".parse().unwrap()),
        reply_action: ReplyAction::Correlated,
        request_params: ParamRule::PositionalArray("ParameterArray".parse().unwrap()),
        reply_params: ParamRule::PositionalArray("ParameterArray".parse().unwrap()),
        correlation: Some("RequestID".parse().unwrap()),
        request_defaults: Vec::new(),
        reply_defaults: Vec::new(),
        request_message_overrides: Vec::new(),
        reply_message_overrides: Vec::new(),
    }
}

fn soap_binding() -> ProtocolBinding {
    ProtocolBinding {
        name: "SOAP".into(),
        mdl: "SOAP.mdl".into(),
        request_message: "SOAPRequest".into(),
        reply_message: "SOAPReply".into(),
        request_action: ActionRule::Field("MethodName".parse().unwrap()),
        reply_action: ReplyAction::Field("MethodName".parse().unwrap()),
        request_params: ParamRule::PositionalArray("Params".parse().unwrap()),
        reply_params: ParamRule::PositionalArray("Params".parse().unwrap()),
        correlation: None,
        request_defaults: Vec::new(),
        reply_defaults: Vec::new(),
        request_message_overrides: Vec::new(),
        reply_message_overrides: Vec::new(),
    }
}

fn add_plus_merged() -> Automaton {
    let mut b = MergeBuilder::new("Add+Plus", 1, 2);
    b.intertwined(
        template("Add", &["x", "y"]),
        template("Add.reply", &["z"]),
        template("Plus", &["x", "y"]),
        template("Plus.reply", &["z"]),
        "m2.x = m1.x\nm2.y = m1.y",
        "m5.z = m4.z",
    )
    .unwrap();
    let (merged, report) = b.finish().unwrap();
    assert_eq!(report.intertwined_count(), 1);
    merged
}

fn mediator(automaton: Automaton, service_ep: &str) -> Mediator {
    let giop_codec = Arc::new(MdlCodec::from_text(GIOPISH_MDL).unwrap());
    let soap_codec = Arc::new(MdlCodec::from_text(SOAPISH_MDL).unwrap());
    Mediator::new(
        automaton,
        1,
        vec![
            ColorRuntime {
                color: 1,
                binding: giop_binding(),
                codec: giop_codec,
                endpoint: None,
            },
            ColorRuntime {
                color: 2,
                binding: soap_binding(),
                codec: soap_codec,
                endpoint: Some(service_ep.parse::<Endpoint>().unwrap()),
            },
        ],
        NetworkEngine::new(), // never touched: the core does no I/O
    )
    .unwrap()
}

/// Scripts the wire bytes of a GIOP `Add` request with the given
/// correlation id.
fn giop_add_request(request_id: u64, x: i64, y: i64) -> Vec<u8> {
    let codec = MdlCodec::from_text(GIOPISH_MDL).unwrap();
    let mut app = AbstractMessage::new("Add");
    app.set_field("x", Value::Int(x));
    app.set_field("y", Value::Int(y));
    let mut proto = giop_binding().bind_request(&app).unwrap();
    proto
        .set_path(&"RequestID".parse().unwrap(), Value::UInt(request_id))
        .unwrap();
    codec.compose(&proto).unwrap()
}

/// Scripts the wire bytes of the SOAP service's reply to an operation.
fn soap_reply(op: &str, fields: &[(&str, Value)]) -> Vec<u8> {
    let codec = MdlCodec::from_text(SOAPISH_MDL).unwrap();
    let mut app = AbstractMessage::new(format!("{op}.reply"));
    for (label, value) in fields {
        app.set_field(label, value.clone());
    }
    let proto = soap_binding().bind_reply(&app, None).unwrap();
    codec.compose(&proto).unwrap()
}

#[test]
fn add_plus_flow_replays_without_io() {
    let mediator = mediator(add_plus_merged(), "memory://plus-service");
    let mut core = SessionCore::new(mediator.session_spec(), SessionPersist::new()).unwrap();

    // The traversal opens in a receiving state on the client color.
    let ios = core.start().unwrap();
    assert!(
        matches!(ios[..], [SessionIo::NeedRecv { color: 1 }]),
        "expected NeedRecv(1), got {ios:?}"
    );

    // Scripted client: GIOP Add(30, 12), RequestID 7.
    let ios = core
        .step(SessionEvent::WireReceived {
            color: 1,
            bytes: giop_add_request(7, 30, 12),
        })
        .unwrap();
    // The core connects to the service lazily, sends the translated
    // SOAP request, then waits for the service reply.
    assert_eq!(ios.len(), 3, "got {ios:?}");
    match &ios[0] {
        SessionIo::ConnectService { color: 2, endpoint } => {
            assert_eq!(endpoint, "memory://plus-service");
        }
        other => panic!("expected ConnectService, got {other:?}"),
    }
    let soap_codec = MdlCodec::from_text(SOAPISH_MDL).unwrap();
    match &ios[1] {
        SessionIo::SendWire { color: 2, bytes } => {
            let proto = soap_codec.parse(bytes).unwrap();
            assert_eq!(
                proto
                    .get_path(&"MethodName".parse().unwrap())
                    .unwrap()
                    .to_text(),
                "Plus"
            );
            let params = proto.get_path(&"Params".parse().unwrap()).unwrap();
            let items = params.as_array().unwrap();
            assert_eq!(items[0].to_text(), "30");
            assert_eq!(items[1].to_text(), "12");
        }
        other => panic!("expected SendWire to the service, got {other:?}"),
    }
    assert!(matches!(ios[2], SessionIo::NeedRecv { color: 2 }));

    // Scripted service: SOAP Plus.reply with z = 42.
    let ios = core
        .step(SessionEvent::WireReceived {
            color: 2,
            bytes: soap_reply("Plus", &[("z", Value::Int(42))]),
        })
        .unwrap();
    assert_eq!(ios.len(), 2, "got {ios:?}");
    let giop_codec = MdlCodec::from_text(GIOPISH_MDL).unwrap();
    match &ios[0] {
        SessionIo::SendWire { color: 1, bytes } => {
            let proto = giop_codec.parse(bytes).unwrap();
            // The reply echoes the client's correlation id.
            assert_eq!(
                proto.get_path(&"RequestID".parse().unwrap()).unwrap(),
                &Value::UInt(7)
            );
            let params = proto.get_path(&"ParameterArray".parse().unwrap()).unwrap();
            assert_eq!(params.as_array().unwrap()[0].to_text(), "42");
        }
        other => panic!("expected SendWire to the client, got {other:?}"),
    }
    match &ios[1] {
        SessionIo::Finished(outcome) => {
            assert_eq!(outcome.exchanges, 4);
            assert!(core.is_finished());
        }
        other => panic!("expected Finished, got {other:?}"),
    }
}

/// Drives one full Add→Plus traversal, returning `(ptr, capacity)` of
/// every [`SessionIo::SendWire`] buffer and recycling each one back into
/// the core, the way the blocking driver and the multiplexed pump do.
fn run_traversal_recycling(core: &mut SessionCore, restart: bool) -> Vec<(usize, usize)> {
    let mut seen = Vec::new();
    let mut ios = if restart {
        core.restart().unwrap()
    } else {
        core.start().unwrap()
    };
    assert!(matches!(ios[..], [SessionIo::NeedRecv { color: 1 }]));
    ios = core
        .step(SessionEvent::WireReceived {
            color: 1,
            bytes: giop_add_request(7, 30, 12),
        })
        .unwrap();
    for io in ios {
        if let SessionIo::SendWire { bytes, .. } = io {
            seen.push((bytes.as_ptr() as usize, bytes.capacity()));
            core.recycle_wire_buf(bytes);
        }
    }
    ios = core
        .step(SessionEvent::WireReceived {
            color: 2,
            bytes: soap_reply("Plus", &[("z", Value::Int(42))]),
        })
        .unwrap();
    for io in ios {
        if let SessionIo::SendWire { bytes, .. } = io {
            seen.push((bytes.as_ptr() as usize, bytes.capacity()));
            core.recycle_wire_buf(bytes);
        }
    }
    assert!(core.is_finished());
    assert_eq!(seen.len(), 2, "one service send + one client reply");
    seen
}

#[test]
fn steady_state_sends_reuse_one_scratch_buffer() {
    let mediator = mediator(add_plus_merged(), "memory://plus-service");
    let mut core = SessionCore::new(mediator.session_spec(), SessionPersist::new()).unwrap();

    // Warm-up: the first traversals grow the scratch buffer to the
    // largest wire the session composes.
    run_traversal_recycling(&mut core, false);
    run_traversal_recycling(&mut core, true);

    // Steady state: every subsequent SendWire must reuse the same
    // allocation — identical pointer and capacity, traversal after
    // traversal. A driver that forgot to recycle (or a compose path that
    // reallocates) breaks this.
    let baseline = run_traversal_recycling(&mut core, true);
    for round in 0..4 {
        let seen = run_traversal_recycling(&mut core, true);
        assert_eq!(
            seen, baseline,
            "round {round}: wire buffers were reallocated in steady state"
        );
    }
}

#[test]
fn wrong_color_bytes_are_rejected() {
    let mediator = mediator(add_plus_merged(), "memory://plus-service");
    let mut core = SessionCore::new(mediator.session_spec(), SessionPersist::new()).unwrap();
    core.start().unwrap();
    // The core asked for color 1; feeding color 2 is a driver bug.
    let err = core
        .step(SessionEvent::WireReceived {
            color: 2,
            bytes: vec![],
        })
        .unwrap_err();
    assert!(
        matches!(err, starlink_core::CoreError::UnexpectedEvent { .. }),
        "got {err:?}"
    );
}

/// A hand-built Flickr-style merged automaton with the Fig. 10 shape:
/// `search` crosses to the Picasa-style service and caches the entry
/// behind a minted photo id; `getInfo` is answered *from the cache* with
/// no service interaction at all.
fn flickr_cache_automaton() -> Automaton {
    let mut a = Automaton::new("Flickr+Cache", 1);
    for s in ["s0", "r1", "r4", "r5", "g1", "g2", "end"] {
        a.add_state(s);
    }
    a.add_colored_state("r2", vec![2]);
    a.add_colored_state("r3", vec![2]);
    a.set_initial("s0").unwrap();
    a.add_final("end").unwrap();
    // search branch: client → γ → service → γ (mint id + cache) → client.
    a.add_receive("s0", "r1", template("search", &["text"]))
        .unwrap();
    a.add_gamma("r1", "r2", "r2.q = r1.text").unwrap();
    a.add_send("r2", "r3", template("SearchSvc", &["q"]))
        .unwrap();
    a.add_receive("r3", "r4", template("SearchSvc.reply", &["entry"]))
        .unwrap();
    a.add_gamma(
        "r4",
        "r5",
        "let p = newstruct()\n\
         p.id = genid()\n\
         cache(p.id, r4.entry)\n\
         r5.photo_id = p.id",
    )
    .unwrap();
    a.add_send("r5", "end", template("search.reply", &["photo_id"]))
        .unwrap();
    // getInfo branch: answered from the cache, no service color at all.
    a.add_receive("s0", "g1", template("getInfo", &["photo_id"]))
        .unwrap();
    a.add_gamma(
        "g1",
        "g2",
        "let e = getcache(g1.photo_id)\n\
         g2.title = e.title\n\
         g2.url = e.url",
    )
    .unwrap();
    a.add_send("g2", "end", template("getInfo.reply", &["title", "url"]))
        .unwrap();
    a
}

#[test]
fn flickr_get_info_is_served_from_the_cache() {
    let mediator = mediator(flickr_cache_automaton(), "memory://picasa");
    let mut core = SessionCore::new(mediator.session_spec(), SessionPersist::new()).unwrap();
    let giop_codec = MdlCodec::from_text(GIOPISH_MDL).unwrap();

    // Traversal 1 — search. The service entry is cached behind the
    // minted photo id.
    let ios = core.start().unwrap();
    assert!(matches!(ios[..], [SessionIo::NeedRecv { color: 1 }]));
    let mut search = AbstractMessage::new("search");
    search.set_field("text", Value::Str("tree".into()));
    let mut search_proto = giop_binding().bind_request(&search).unwrap();
    search_proto
        .set_path(&"RequestID".parse().unwrap(), Value::UInt(1))
        .unwrap();
    let ios = core
        .step(SessionEvent::WireReceived {
            color: 1,
            bytes: giop_codec.compose(&search_proto).unwrap(),
        })
        .unwrap();
    assert!(matches!(
        ios[..],
        [
            SessionIo::ConnectService { color: 2, .. },
            SessionIo::SendWire { color: 2, .. },
            SessionIo::NeedRecv { color: 2 }
        ]
    ));
    let entry = Value::Struct(vec![
        Field::new("title", Value::Str("Tall Tree".into())),
        Field::new("url", Value::Str("http://photos.example.org/1.jpg".into())),
    ]);
    let ios = core
        .step(SessionEvent::WireReceived {
            color: 2,
            bytes: soap_reply("SearchSvc", &[("entry", entry)]),
        })
        .unwrap();
    let photo_id = match &ios[..] {
        [SessionIo::SendWire { color: 1, bytes }, SessionIo::Finished(_)] => {
            let proto = giop_codec.parse(bytes).unwrap();
            let params = proto.get_path(&"ParameterArray".parse().unwrap()).unwrap();
            params.as_array().unwrap()[0].to_text()
        }
        other => panic!("expected reply + finish, got {other:?}"),
    };
    assert_eq!(photo_id, "1000", "minted ids are deterministic");

    // Traversal 2 — getInfo on the minted id. The core must answer from
    // the persisted translation cache and never touch color 2.
    let ios = core.restart().unwrap();
    assert!(matches!(ios[..], [SessionIo::NeedRecv { color: 1 }]));
    let mut get_info = AbstractMessage::new("getInfo");
    get_info.set_field("photo_id", Value::Str(photo_id));
    let mut info_proto = giop_binding().bind_request(&get_info).unwrap();
    info_proto
        .set_path(&"RequestID".parse().unwrap(), Value::UInt(2))
        .unwrap();
    let ios = core
        .step(SessionEvent::WireReceived {
            color: 1,
            bytes: giop_codec.compose(&info_proto).unwrap(),
        })
        .unwrap();
    match &ios[..] {
        [SessionIo::SendWire { color: 1, bytes }, SessionIo::Finished(outcome)] => {
            let proto = giop_codec.parse(bytes).unwrap();
            let params = proto.get_path(&"ParameterArray".parse().unwrap()).unwrap();
            let items = params.as_array().unwrap();
            assert_eq!(items[0].to_text(), "Tall Tree");
            assert_eq!(items[1].to_text(), "http://photos.example.org/1.jpg");
            assert_eq!(outcome.exchanges, 2, "no service exchanges");
        }
        other => panic!("expected a cache-served reply, got {other:?}"),
    }
}
