//! Property-based tests for protocol bindings: `unbind ∘ wire ∘ bind`
//! recovers the application message for every binding family.

use proptest::prelude::*;
use starlink_core::{ActionRule, ParamRule, ProtocolBinding, ReplyAction};
use starlink_mdl::{MdlCodec, MessageCodec};
use starlink_message::{AbstractMessage, Value};

const BIN_MDL: &str = "\
<Message:Req>\n\
<Rule:Kind=0>\n\
<Kind:8><Id:32><OpLength:32><Op:OpLength>\n\
<align:64><Params:eof:valueseq>\n\
<End:Message>\n\
<Message:Rep>\n\
<Rule:Kind=1>\n\
<Kind:8><Id:32>\n\
<align:64><Params:eof:valueseq>\n\
<End:Message>";

fn positional_binding() -> ProtocolBinding {
    ProtocolBinding::new("BIN", "BIN.mdl", "Req", "Rep")
        .with_request_action(ActionRule::Field("Op".parse().unwrap()))
        .with_reply_action(ReplyAction::Correlated)
        .with_params(
            ParamRule::PositionalArray("Params".parse().unwrap()),
            ParamRule::PositionalArray("Params".parse().unwrap()),
        )
        .with_correlation("Id".parse().unwrap())
}

fn label() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}"
}

fn action() -> impl Strategy<Value = String> {
    "[a-z][a-zA-Z0-9._]{0,16}"
}

fn primitive() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        "[a-zA-Z0-9 _.-]{0,16}".prop_map(Value::Str),
    ]
}

/// App message + matching template (same field names, Null values).
fn app_message() -> impl Strategy<Value = (AbstractMessage, AbstractMessage)> {
    (
        action(),
        proptest::collection::vec((label(), primitive()), 0..6),
    )
        .prop_map(|(name, fields)| {
            let mut seen = std::collections::HashSet::new();
            let mut msg = AbstractMessage::new(&name);
            let mut template = AbstractMessage::new(&name);
            for (l, v) in fields {
                if seen.insert(l.clone()) {
                    msg.set_field(&l, v);
                    template.set_field(&l, Value::Null);
                }
            }
            (msg, template)
        })
}

proptest! {
    #[test]
    fn positional_bind_unbind_roundtrip((app, template) in app_message()) {
        let binding = positional_binding();
        let codec = MdlCodec::from_text(BIN_MDL).unwrap();

        // Request direction, over the real wire codec.
        let mut proto = binding.bind_request(&app).unwrap();
        proto.set_field("Id", Value::UInt(1));
        let wire = codec.compose(&proto).unwrap();
        let parsed = codec.parse(&wire).unwrap();
        let back = binding
            .unbind_request(&parsed, |a| (a == app.name()).then_some(&template))
            .unwrap();
        prop_assert_eq!(back.name(), app.name());
        for f in app.fields() {
            prop_assert_eq!(back.get(f.label()).unwrap(), f.value());
        }
    }

    #[test]
    fn correlated_reply_roundtrip((app, template) in app_message()) {
        let binding = positional_binding();
        let codec = MdlCodec::from_text(BIN_MDL).unwrap();
        let reply_name = format!("{}.reply", app.name());
        let mut app_reply = AbstractMessage::new(&reply_name);
        for f in app.fields() {
            app_reply.set_field(f.label(), f.value().clone());
        }
        let mut reply_template = AbstractMessage::new(&reply_name);
        for f in template.fields() {
            reply_template.set_field(f.label(), Value::Null);
        }
        let mut req_proto = AbstractMessage::new("Req");
        req_proto.set_field("Id", Value::UInt(42));
        let mut proto = binding.bind_reply(&app_reply, Some(&req_proto)).unwrap();
        prop_assert_eq!(proto.get("Id").unwrap().as_uint(), Some(42));
        proto.set_field("Id", Value::UInt(42));
        let wire = codec.compose(&proto).unwrap();
        let parsed = codec.parse(&wire).unwrap();
        let back = binding
            .unbind_reply(&parsed, app.name(), Some(&reply_template))
            .unwrap();
        prop_assert_eq!(back.name(), reply_name);
        for f in app_reply.fields() {
            prop_assert_eq!(back.get(f.label()).unwrap(), f.value());
        }
    }

    #[test]
    fn named_fields_roundtrip((app, template) in app_message()) {
        let binding = ProtocolBinding::new("T", "t", "Req", "Rep")
            .with_request_action(ActionRule::Field("Op".parse().unwrap()))
            .with_params(ParamRule::NamedFields(None), ParamRule::None);
        let proto = binding.bind_request(&app).unwrap();
        let back = binding
            .unbind_request(&proto, |a| (a == app.name()).then_some(&template))
            .unwrap();
        for f in app.fields() {
            prop_assert_eq!(back.get(f.label()).unwrap(), f.value());
        }
    }

    #[test]
    fn query_roundtrip_preserves_text_values(
        name in action(),
        fields in proptest::collection::vec((label(), "[a-zA-Z0-9 &=%_.-]{0,12}"), 0..5),
    ) {
        // Query strings carry text; values survive percent-coding.
        let binding = ProtocolBinding::new("REST", "r", "HTTPRequest", "HTTPResponse")
            .with_request_action(ActionRule::Rest {
                method_field: "Method".parse().unwrap(),
                uri_field: "RequestURI".parse().unwrap(),
                routes: vec![starlink_core::RestRoute {
                    action: name.clone(),
                    method: "GET".into(),
                    path: "/api".into(),
                }],
            })
            .with_params(
                ParamRule::Query { uri_field: "RequestURI".parse().unwrap() },
                ParamRule::None,
            );
        let mut seen = std::collections::HashSet::new();
        let mut app = AbstractMessage::new(&name);
        for (l, v) in &fields {
            if seen.insert(l.clone()) {
                app.set_field(l, Value::Str(v.clone()));
            }
        }
        let proto = binding.bind_request(&app).unwrap();
        let back = binding.unbind_request(&proto, |_| None).unwrap();
        prop_assert_eq!(back.name(), name);
        for f in app.fields() {
            prop_assert_eq!(back.get(f.label()).unwrap(), f.value());
        }
    }

    #[test]
    fn percent_coding_roundtrip(s in "\\PC{0,48}") {
        let encoded = starlink_core::percent_encode(&s);
        prop_assert_eq!(starlink_core::percent_decode(&encoded), s);
    }
}
