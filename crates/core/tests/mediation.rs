//! End-to-end mediation through the automata engine: an IIOP-style `Add`
//! client interoperates with a SOAP-style `Plus` service through a
//! generated mediator — the paper's Fig. 8 scenario, executed.

use starlink_automata::merge::{template, MergeBuilder};
use starlink_core::{
    ActionRule, ColorRuntime, Mediator, MediatorHost, ParamRule, ProtocolBinding, ReplyAction,
    RpcClient, RpcServer, ServiceHandler, ServiceInterface,
};
use starlink_mdl::MdlCodec;
use starlink_message::{AbstractMessage, Value};
use starlink_net::{Endpoint, MemoryTransport, NetworkEngine};
use std::sync::Arc;

const GIOPISH_MDL: &str = "\
<Message:GIOPRequest>\n\
<Rule:MessageType=0>\n\
<MessageType:8><RequestID:32>\n\
<OperationLength:32><Operation:OperationLength>\n\
<align:64><ParameterArray:eof:valueseq>\n\
<End:Message>\n\
<Message:GIOPReply>\n\
<Rule:MessageType=1>\n\
<MessageType:8><RequestID:32>\n\
<align:64><ParameterArray:eof:valueseq>\n\
<End:Message>";

const SOAPISH_MDL: &str = "\
<Dialect:xml>\n\
<Message:SOAPRequest>\n\
<Root:soap:Envelope>\n\
<RootAttr:xmlns:soap=http://schemas.xmlsoap.org/soap/envelope/>\n\
<Name:MethodName=Body>\n\
<List:Params=Body/{MethodName}/*>\n\
<End:Message>\n\
<Message:SOAPReply>\n\
<Root:soap:ReplyEnvelope>\n\
<Name:MethodName=Body>\n\
<List:Params=Body/{MethodName}/*>\n\
<End:Message>";

fn giop_binding() -> ProtocolBinding {
    ProtocolBinding {
        name: "IIOP".into(),
        mdl: "GIOP.mdl".into(),
        request_message: "GIOPRequest".into(),
        reply_message: "GIOPReply".into(),
        request_action: ActionRule::Field("Operation".parse().unwrap()),
        reply_action: ReplyAction::Correlated,
        request_params: ParamRule::PositionalArray("ParameterArray".parse().unwrap()),
        reply_params: ParamRule::PositionalArray("ParameterArray".parse().unwrap()),
        correlation: Some("RequestID".parse().unwrap()),
        request_defaults: Vec::new(),
        reply_defaults: Vec::new(),
        request_message_overrides: Vec::new(),
        reply_message_overrides: Vec::new(),
    }
}

fn soap_binding() -> ProtocolBinding {
    ProtocolBinding {
        name: "SOAP".into(),
        mdl: "SOAP.mdl".into(),
        request_message: "SOAPRequest".into(),
        reply_message: "SOAPReply".into(),
        request_action: ActionRule::Field("MethodName".parse().unwrap()),
        reply_action: ReplyAction::Field("MethodName".parse().unwrap()),
        request_params: ParamRule::PositionalArray("Params".parse().unwrap()),
        reply_params: ParamRule::PositionalArray("Params".parse().unwrap()),
        correlation: None,
        request_defaults: Vec::new(),
        reply_defaults: Vec::new(),
        request_message_overrides: Vec::new(),
        reply_message_overrides: Vec::new(),
    }
}

fn plus_interface() -> ServiceInterface {
    let mut plus = AbstractMessage::new("Plus");
    plus.set_field("x", Value::Null);
    plus.set_field("y", Value::Null);
    let mut reply = AbstractMessage::new("Plus.reply");
    reply.set_field("z", Value::Null);
    ServiceInterface::new().with_operation(plus, reply)
}

fn add_interface() -> ServiceInterface {
    let mut add = AbstractMessage::new("Add");
    add.set_field("x", Value::Null);
    add.set_field("y", Value::Null);
    let mut reply = AbstractMessage::new("Add.reply");
    reply.set_field("z", Value::Null);
    ServiceInterface::new().with_operation(add, reply)
}

/// The SOAP `Plus` service: adds two integers (params arrive as text over
/// XML).
fn plus_handler() -> Arc<ServiceHandler> {
    Arc::new(|req| {
        if req.name() != "Plus" {
            return Err(format!("unknown operation {}", req.name()));
        }
        let x: i64 = req
            .get("x")
            .map(Value::to_text)
            .and_then(|t| t.parse().ok())
            .ok_or("bad x")?;
        let y: i64 = req
            .get("y")
            .map(Value::to_text)
            .and_then(|t| t.parse().ok())
            .ok_or("bad y")?;
        let mut reply = AbstractMessage::new("Plus.reply");
        reply.set_field("z", Value::Int(x + y));
        Ok(reply)
    })
}

fn add_plus_merged() -> starlink_automata::Automaton {
    let mut b = MergeBuilder::new("Add+Plus", 1, 2);
    b.intertwined(
        template("Add", &["x", "y"]),
        template("Add.reply", &["z"]),
        template("Plus", &["x", "y"]),
        template("Plus.reply", &["z"]),
        // State id scheme: m1 = client request received, m2 = service
        // request composed, m4 = service reply received, m5 = client
        // reply composed.
        "m2.x = m1.x\nm2.y = m1.y",
        "m5.z = m4.z",
    )
    .unwrap();
    let (merged, report) = b.finish().unwrap();
    assert_eq!(report.intertwined_count(), 1);
    merged
}

/// Shared network with one memory namespace so mediator, client and
/// service all see each other.
fn shared_network() -> NetworkEngine {
    let mut net = NetworkEngine::new();
    net.register(Arc::new(MemoryTransport::new()));
    net
}

#[test]
fn add_client_reaches_plus_service_through_mediator() {
    let net = shared_network();
    let giop_codec = Arc::new(MdlCodec::from_text(GIOPISH_MDL).unwrap());
    let soap_codec = Arc::new(MdlCodec::from_text(SOAPISH_MDL).unwrap());

    // Deploy the SOAP Plus service.
    let service_ep = Endpoint::memory("plus-service");
    let _service = RpcServer::serve(
        &net,
        &service_ep,
        soap_codec.clone(),
        soap_binding(),
        plus_interface(),
        plus_handler(),
    )
    .unwrap();

    // Generate and deploy the mediator.
    let mediator = Mediator::new(
        add_plus_merged(),
        1,
        vec![
            ColorRuntime {
                color: 1,
                binding: giop_binding(),
                codec: giop_codec.clone(),
                endpoint: None,
            },
            ColorRuntime {
                color: 2,
                binding: soap_binding(),
                codec: soap_codec,
                endpoint: Some(service_ep),
            },
        ],
        net.clone(),
    )
    .unwrap();
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("add-mediator")).unwrap();

    // The unmodified IIOP Add client talks to the mediator.
    let mut client = RpcClient::connect(
        &net,
        host.endpoint(),
        giop_codec,
        giop_binding(),
        add_interface(),
    )
    .unwrap();
    let mut request = AbstractMessage::new("Add");
    request.set_field("x", Value::Int(30));
    request.set_field("y", Value::Int(12));
    let reply = client.call(&request).unwrap();
    assert_eq!(reply.name(), "Add.reply");
    assert_eq!(reply.get("z").unwrap().to_text(), "42");

    // A second traversal on the same connection also works.
    let reply2 = client.call(&request).unwrap();
    assert_eq!(reply2.get("z").unwrap().to_text(), "42");
    assert!(host.completed_sessions() >= 1);
}

#[test]
fn mediator_rejects_unexpected_operation() {
    let net = shared_network();
    let giop_codec = Arc::new(MdlCodec::from_text(GIOPISH_MDL).unwrap());
    let soap_codec = Arc::new(MdlCodec::from_text(SOAPISH_MDL).unwrap());
    let service_ep = Endpoint::memory("plus-service");
    let _service = RpcServer::serve(
        &net,
        &service_ep,
        soap_codec.clone(),
        soap_binding(),
        plus_interface(),
        plus_handler(),
    )
    .unwrap();
    let mediator = Mediator::new(
        add_plus_merged(),
        1,
        vec![
            ColorRuntime {
                color: 1,
                binding: giop_binding(),
                codec: giop_codec.clone(),
                endpoint: None,
            },
            ColorRuntime {
                color: 2,
                binding: soap_binding(),
                codec: soap_codec,
                endpoint: Some(service_ep),
            },
        ],
        net.clone(),
    )
    .unwrap();
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("add-mediator")).unwrap();

    let mut client = RpcClient::connect(
        &net,
        host.endpoint(),
        giop_codec,
        giop_binding(),
        add_interface(),
    )
    .unwrap();
    client.timeout = std::time::Duration::from_millis(300);
    // `Multiply` is not part of the merged automaton: the mediator drops
    // the session, the client times out or sees the connection close.
    let mut request = AbstractMessage::new("Multiply");
    request.set_field("x", Value::Int(3));
    request.set_field("y", Value::Int(4));
    assert!(client.call(&request).is_err());
}

#[test]
fn direct_session_runner_works_without_host() {
    // Exercise Mediator::run_session against a manually accepted
    // connection (the embedded deployment mode).
    let net = shared_network();
    let giop_codec = Arc::new(MdlCodec::from_text(GIOPISH_MDL).unwrap());
    let soap_codec = Arc::new(MdlCodec::from_text(SOAPISH_MDL).unwrap());
    let service_ep = Endpoint::memory("plus-service");
    let _service = RpcServer::serve(
        &net,
        &service_ep,
        soap_codec.clone(),
        soap_binding(),
        plus_interface(),
        plus_handler(),
    )
    .unwrap();
    let mediator = Mediator::new(
        add_plus_merged(),
        1,
        vec![
            ColorRuntime {
                color: 1,
                binding: giop_binding(),
                codec: giop_codec.clone(),
                endpoint: None,
            },
            ColorRuntime {
                color: 2,
                binding: soap_binding(),
                codec: soap_codec,
                endpoint: Some(service_ep),
            },
        ],
        net.clone(),
    )
    .unwrap();

    let listen = Endpoint::memory("manual-mediator");
    let listener = net.listen(&listen).unwrap();
    let client_thread = {
        let net = net.clone();
        std::thread::spawn(move || {
            let mut client =
                RpcClient::connect(&net, &listen, giop_codec, giop_binding(), add_interface())
                    .unwrap();
            let mut request = AbstractMessage::new("Add");
            request.set_field("x", Value::Int(1));
            request.set_field("y", Value::Int(2));
            client.call(&request).unwrap()
        })
    };
    let mut conn = listener.accept().unwrap();
    let outcome = mediator.run_session(conn.as_mut()).unwrap();
    assert_eq!(outcome.exchanges, 4);
    let reply = client_thread.join().unwrap();
    assert_eq!(reply.get("z").unwrap().to_text(), "3");
}
