//! Mediator host deployment behaviour: the multiplexed worker-pool host
//! serving many concurrent clients with few threads, and prompt,
//! bounded-time shutdown for both host shapes.

use starlink_automata::merge::{template, MergeBuilder};
use starlink_core::{
    ActionRule, ColorRuntime, Mediator, MediatorHost, ParamRule, ProtocolBinding, ReplyAction,
    RpcClient, RpcServer, ServiceHandler, ServiceInterface,
};
use starlink_mdl::MdlCodec;
use starlink_message::{AbstractMessage, Value};
use starlink_net::{Endpoint, MemoryTransport, NetworkEngine};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const GIOPISH_MDL: &str = "\
<Message:GIOPRequest>\n\
<Rule:MessageType=0>\n\
<MessageType:8><RequestID:32>\n\
<OperationLength:32><Operation:OperationLength>\n\
<align:64><ParameterArray:eof:valueseq>\n\
<End:Message>\n\
<Message:GIOPReply>\n\
<Rule:MessageType=1>\n\
<MessageType:8><RequestID:32>\n\
<align:64><ParameterArray:eof:valueseq>\n\
<End:Message>";

const SOAPISH_MDL: &str = "\
<Dialect:xml>\n\
<Message:SOAPRequest>\n\
<Root:soap:Envelope>\n\
<RootAttr:xmlns:soap=http://schemas.xmlsoap.org/soap/envelope/>\n\
<Name:MethodName=Body>\n\
<List:Params=Body/{MethodName}/*>\n\
<End:Message>\n\
<Message:SOAPReply>\n\
<Root:soap:ReplyEnvelope>\n\
<Name:MethodName=Body>\n\
<List:Params=Body/{MethodName}/*>\n\
<End:Message>";

fn giop_binding() -> ProtocolBinding {
    ProtocolBinding {
        name: "IIOP".into(),
        mdl: "GIOP.mdl".into(),
        request_message: "GIOPRequest".into(),
        reply_message: "GIOPReply".into(),
        request_action: ActionRule::Field("Operation".parse().unwrap()),
        reply_action: ReplyAction::Correlated,
        request_params: ParamRule::PositionalArray("ParameterArray".parse().unwrap()),
        reply_params: ParamRule::PositionalArray("ParameterArray".parse().unwrap()),
        correlation: Some("RequestID".parse().unwrap()),
        request_defaults: Vec::new(),
        reply_defaults: Vec::new(),
        request_message_overrides: Vec::new(),
        reply_message_overrides: Vec::new(),
    }
}

fn soap_binding() -> ProtocolBinding {
    ProtocolBinding {
        name: "SOAP".into(),
        mdl: "SOAP.mdl".into(),
        request_message: "SOAPRequest".into(),
        reply_message: "SOAPReply".into(),
        request_action: ActionRule::Field("MethodName".parse().unwrap()),
        reply_action: ReplyAction::Field("MethodName".parse().unwrap()),
        request_params: ParamRule::PositionalArray("Params".parse().unwrap()),
        reply_params: ParamRule::PositionalArray("Params".parse().unwrap()),
        correlation: None,
        request_defaults: Vec::new(),
        reply_defaults: Vec::new(),
        request_message_overrides: Vec::new(),
        reply_message_overrides: Vec::new(),
    }
}

fn plus_interface() -> ServiceInterface {
    let mut plus = AbstractMessage::new("Plus");
    plus.set_field("x", Value::Null);
    plus.set_field("y", Value::Null);
    let mut reply = AbstractMessage::new("Plus.reply");
    reply.set_field("z", Value::Null);
    ServiceInterface::new().with_operation(plus, reply)
}

fn add_interface() -> ServiceInterface {
    let mut add = AbstractMessage::new("Add");
    add.set_field("x", Value::Null);
    add.set_field("y", Value::Null);
    let mut reply = AbstractMessage::new("Add.reply");
    reply.set_field("z", Value::Null);
    ServiceInterface::new().with_operation(add, reply)
}

fn plus_handler() -> Arc<ServiceHandler> {
    Arc::new(|req| {
        let x: i64 = req
            .get("x")
            .map(Value::to_text)
            .and_then(|t| t.parse().ok())
            .ok_or("bad x")?;
        let y: i64 = req
            .get("y")
            .map(Value::to_text)
            .and_then(|t| t.parse().ok())
            .ok_or("bad y")?;
        let mut reply = AbstractMessage::new("Plus.reply");
        reply.set_field("z", Value::Int(x + y));
        Ok(reply)
    })
}

fn add_plus_merged() -> starlink_automata::Automaton {
    let mut b = MergeBuilder::new("Add+Plus", 1, 2);
    b.intertwined(
        template("Add", &["x", "y"]),
        template("Add.reply", &["z"]),
        template("Plus", &["x", "y"]),
        template("Plus.reply", &["z"]),
        "m2.x = m1.x\nm2.y = m1.y",
        "m5.z = m4.z",
    )
    .unwrap();
    b.finish().unwrap().0
}

/// Deploys the Plus service on a fresh memory network and builds the
/// Add↔Plus mediator against it.
fn service_and_mediator(ns: &str) -> (NetworkEngine, Mediator) {
    let mut net = NetworkEngine::new();
    net.register(Arc::new(MemoryTransport::new()));
    let giop_codec = Arc::new(MdlCodec::from_text(GIOPISH_MDL).unwrap());
    let soap_codec = Arc::new(MdlCodec::from_text(SOAPISH_MDL).unwrap());
    let service_ep = Endpoint::memory(format!("{ns}-plus"));
    let service = RpcServer::serve(
        &net,
        &service_ep,
        soap_codec.clone(),
        soap_binding(),
        plus_interface(),
        plus_handler(),
    )
    .unwrap();
    std::mem::forget(service);
    let mediator = Mediator::new(
        add_plus_merged(),
        1,
        vec![
            ColorRuntime {
                color: 1,
                binding: giop_binding(),
                codec: giop_codec,
                endpoint: None,
            },
            ColorRuntime {
                color: 2,
                binding: soap_binding(),
                codec: soap_codec,
                endpoint: Some(service_ep),
            },
        ],
        net.clone(),
    )
    .unwrap();
    (net, mediator)
}

fn giop_client(net: &NetworkEngine, endpoint: &Endpoint) -> RpcClient {
    RpcClient::connect(
        net,
        endpoint,
        Arc::new(MdlCodec::from_text(GIOPISH_MDL).unwrap()),
        giop_binding(),
        add_interface(),
    )
    .unwrap()
}

const CLIENTS: usize = 64;
const WORKERS: usize = 8;

#[test]
fn multiplexed_host_serves_64_concurrent_clients_on_8_workers() {
    let (net, mediator) = service_and_mediator("mux");
    let host = MediatorHost::deploy_multiplexed(mediator, &Endpoint::memory("mux-bridge"), WORKERS)
        .unwrap();
    let endpoint = host.endpoint().clone();

    // All clients connect and hold their connections before any of them
    // issues a request: the host really is carrying 64 concurrent
    // sessions on its 8 workers.
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mut handles = Vec::new();
    for i in 0..CLIENTS {
        let net = net.clone();
        let endpoint = endpoint.clone();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = giop_client(&net, &endpoint);
            barrier.wait();
            let mut request = AbstractMessage::new("Add");
            request.set_field("x", Value::Int(i as i64));
            request.set_field("y", Value::Int(1));
            let reply = client.call(&request).unwrap();
            assert_eq!(reply.get("z").unwrap().to_text(), (i + 1).to_string());
            // A second traversal on the same connection also works.
            let reply2 = client.call(&request).unwrap();
            assert_eq!(reply2.get("z").unwrap().to_text(), (i + 1).to_string());
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(
        host.completed_sessions() >= 2 * CLIENTS,
        "expected {} sessions, saw {}",
        2 * CLIENTS,
        host.completed_sessions()
    );
}

#[test]
fn threaded_host_shutdown_is_prompt_and_joins() {
    let (net, mediator) = service_and_mediator("shutdown-threaded");
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("t-bridge")).unwrap();
    // A connected-but-silent client parks a session mid-receive; shutdown
    // must still complete promptly rather than waiting out the 10 s
    // receive timeout.
    let _idle = net.connect(host.endpoint()).unwrap();
    let started = Instant::now();
    host.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown took {:?}",
        started.elapsed()
    );
}

#[test]
fn multiplexed_host_shutdown_is_prompt_and_joins() {
    let (net, mediator) = service_and_mediator("shutdown-mux");
    let host =
        MediatorHost::deploy_multiplexed(mediator, &Endpoint::memory("m-bridge"), 4).unwrap();
    let _idle = net.connect(host.endpoint()).unwrap();
    let started = Instant::now();
    host.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown took {:?}",
        started.elapsed()
    );
}

#[test]
fn accept_loop_survives_clients_that_vanish() {
    // A client that connects and immediately disappears must not take
    // the accept loop down with it; later clients are still served.
    let (net, mediator) = service_and_mediator("flaky");
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("flaky-bridge")).unwrap();
    for _ in 0..3 {
        let conn = net.connect(host.endpoint()).unwrap();
        drop(conn);
    }
    let mut client = giop_client(&net, host.endpoint());
    let mut request = AbstractMessage::new("Add");
    request.set_field("x", Value::Int(2));
    request.set_field("y", Value::Int(2));
    let reply = client.call(&request).unwrap();
    assert_eq!(reply.get("z").unwrap().to_text(), "4");
}

#[test]
fn telemetry_snapshot_aggregates_and_serves_over_the_wire() {
    let (net, mediator) = service_and_mediator("telemetry");
    let host =
        MediatorHost::deploy_multiplexed(mediator, &Endpoint::memory("tel-bridge"), 2).unwrap();
    let stats_endpoint = host
        .expose_stats(&net, &Endpoint::memory("tel-stats"))
        .unwrap();

    let mut client = giop_client(&net, host.endpoint());
    let mut request = AbstractMessage::new("Add");
    request.set_field("x", Value::Int(20));
    request.set_field("y", Value::Int(22));
    let reply = client.call(&request).unwrap();
    assert_eq!(reply.get("z").unwrap().to_text(), "42");

    let snap = host.telemetry_snapshot();
    assert!(snap.counter("starlink_sessions_started_total") >= 1);
    assert_eq!(
        snap.counter("starlink_sessions_finished_total") as usize,
        host.completed_sessions()
    );
    assert!(snap.counter("starlink_sessions_accepted_total") >= 1);
    // The whole mediation is visible: client request in, service leg
    // out+in, client reply out — with a γ-translation in between.
    assert!(snap.counter("starlink_wire_messages_in_total") >= 2);
    assert!(snap.counter("starlink_wire_messages_out_total") >= 2);
    assert!(snap.family("starlink_gamma_duration_ns").is_some());
    assert!(snap.counter("starlink_parse_bytes_total") > 0);

    // The stats endpoint serves the same exposition, one frame per
    // connection, parseable back into a snapshot.
    let mut stats_conn = net.connect(&stats_endpoint).unwrap();
    let frame = stats_conn.receive().unwrap();
    let text = String::from_utf8(frame).unwrap();
    let parsed = starlink_core::Snapshot::parse_text(&text).unwrap();
    assert!(parsed.counter("starlink_sessions_finished_total") >= 1);

    host.shutdown();
}

#[test]
fn injected_sink_receives_events_alongside_host_recorder() {
    let (net, mediator) = service_and_mediator("fanout");
    let recorder = Arc::new(starlink_core::Recorder::new());
    let mediator =
        mediator.with_telemetry(recorder.clone() as Arc<dyn starlink_core::TelemetrySink>);
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("fanout-bridge")).unwrap();

    let mut client = giop_client(&net, host.endpoint());
    let mut request = AbstractMessage::new("Add");
    request.set_field("x", Value::Int(1));
    request.set_field("y", Value::Int(2));
    client.call(&request).unwrap();

    // The caller's sink already aggregates, so the host adopts it
    // directly: both views are the same counter.
    let via_host = host.telemetry_snapshot();
    let via_caller = starlink_core::TelemetrySink::snapshot(recorder.as_ref()).unwrap();
    assert!(via_caller.counter("starlink_sessions_finished_total") >= 1);
    assert_eq!(
        via_host.counter("starlink_sessions_finished_total"),
        via_caller.counter("starlink_sessions_finished_total")
    );
    host.shutdown();
}
