//! Operations-plane behaviour: the stall watchdog (observe and abort
//! policies, both host shapes), health reports degrading on stalls, and
//! the unified diagnostics endpoint's request/reply selectors.

use starlink_automata::merge::{template, MergeBuilder};
use starlink_core::{
    ActionRule, ColorRuntime, HealthReport, HealthStatus, Mediator, MediatorHost, OpsConfig,
    ParamRule, ProtocolBinding, ReplyAction, RpcClient, RpcServer, ServiceHandler,
    ServiceInterface, Snapshot,
};
use starlink_mdl::MdlCodec;
use starlink_message::{AbstractMessage, Value};
use starlink_net::{Endpoint, MemoryTransport, NetworkEngine};
use std::sync::Arc;
use std::time::{Duration, Instant};

const GIOPISH_MDL: &str = "\
<Message:GIOPRequest>\n\
<Rule:MessageType=0>\n\
<MessageType:8><RequestID:32>\n\
<OperationLength:32><Operation:OperationLength>\n\
<align:64><ParameterArray:eof:valueseq>\n\
<End:Message>\n\
<Message:GIOPReply>\n\
<Rule:MessageType=1>\n\
<MessageType:8><RequestID:32>\n\
<align:64><ParameterArray:eof:valueseq>\n\
<End:Message>";

const SOAPISH_MDL: &str = "\
<Dialect:xml>\n\
<Message:SOAPRequest>\n\
<Root:soap:Envelope>\n\
<RootAttr:xmlns:soap=http://schemas.xmlsoap.org/soap/envelope/>\n\
<Name:MethodName=Body>\n\
<List:Params=Body/{MethodName}/*>\n\
<End:Message>\n\
<Message:SOAPReply>\n\
<Root:soap:ReplyEnvelope>\n\
<Name:MethodName=Body>\n\
<List:Params=Body/{MethodName}/*>\n\
<End:Message>";

fn giop_binding() -> ProtocolBinding {
    ProtocolBinding {
        name: "IIOP".into(),
        mdl: "GIOP.mdl".into(),
        request_message: "GIOPRequest".into(),
        reply_message: "GIOPReply".into(),
        request_action: ActionRule::Field("Operation".parse().unwrap()),
        reply_action: ReplyAction::Correlated,
        request_params: ParamRule::PositionalArray("ParameterArray".parse().unwrap()),
        reply_params: ParamRule::PositionalArray("ParameterArray".parse().unwrap()),
        correlation: Some("RequestID".parse().unwrap()),
        request_defaults: Vec::new(),
        reply_defaults: Vec::new(),
        request_message_overrides: Vec::new(),
        reply_message_overrides: Vec::new(),
    }
}

fn soap_binding() -> ProtocolBinding {
    ProtocolBinding {
        name: "SOAP".into(),
        mdl: "SOAP.mdl".into(),
        request_message: "SOAPRequest".into(),
        reply_message: "SOAPReply".into(),
        request_action: ActionRule::Field("MethodName".parse().unwrap()),
        reply_action: ReplyAction::Field("MethodName".parse().unwrap()),
        request_params: ParamRule::PositionalArray("Params".parse().unwrap()),
        reply_params: ParamRule::PositionalArray("Params".parse().unwrap()),
        correlation: None,
        request_defaults: Vec::new(),
        reply_defaults: Vec::new(),
        request_message_overrides: Vec::new(),
        reply_message_overrides: Vec::new(),
    }
}

fn plus_interface() -> ServiceInterface {
    let mut plus = AbstractMessage::new("Plus");
    plus.set_field("x", Value::Null);
    plus.set_field("y", Value::Null);
    let mut reply = AbstractMessage::new("Plus.reply");
    reply.set_field("z", Value::Null);
    ServiceInterface::new().with_operation(plus, reply)
}

fn add_interface() -> ServiceInterface {
    let mut add = AbstractMessage::new("Add");
    add.set_field("x", Value::Null);
    add.set_field("y", Value::Null);
    let mut reply = AbstractMessage::new("Add.reply");
    reply.set_field("z", Value::Null);
    ServiceInterface::new().with_operation(add, reply)
}

fn plus_handler() -> Arc<ServiceHandler> {
    Arc::new(|req| {
        let x: i64 = req
            .get("x")
            .map(Value::to_text)
            .and_then(|t| t.parse().ok())
            .ok_or("bad x")?;
        let y: i64 = req
            .get("y")
            .map(Value::to_text)
            .and_then(|t| t.parse().ok())
            .ok_or("bad y")?;
        let mut reply = AbstractMessage::new("Plus.reply");
        reply.set_field("z", Value::Int(x + y));
        Ok(reply)
    })
}

fn add_plus_merged() -> starlink_automata::Automaton {
    let mut b = MergeBuilder::new("Add+Plus", 1, 2);
    b.intertwined(
        template("Add", &["x", "y"]),
        template("Add.reply", &["z"]),
        template("Plus", &["x", "y"]),
        template("Plus.reply", &["z"]),
        "m2.x = m1.x\nm2.y = m1.y",
        "m5.z = m4.z",
    )
    .unwrap();
    b.finish().unwrap().0
}

/// Deploys the Plus service on a fresh memory network and builds the
/// Add↔Plus mediator against it, with a short receive timeout so stall
/// tests finish quickly.
fn service_and_mediator(ns: &str) -> (NetworkEngine, Mediator) {
    let mut net = NetworkEngine::new();
    net.register(Arc::new(MemoryTransport::new()));
    let giop_codec = Arc::new(MdlCodec::from_text(GIOPISH_MDL).unwrap());
    let soap_codec = Arc::new(MdlCodec::from_text(SOAPISH_MDL).unwrap());
    let service_ep = Endpoint::memory(format!("{ns}-plus"));
    let service = RpcServer::serve(
        &net,
        &service_ep,
        soap_codec.clone(),
        soap_binding(),
        plus_interface(),
        plus_handler(),
    )
    .unwrap();
    std::mem::forget(service);
    let mut mediator = Mediator::new(
        add_plus_merged(),
        1,
        vec![
            ColorRuntime {
                color: 1,
                binding: giop_binding(),
                codec: giop_codec,
                endpoint: None,
            },
            ColorRuntime {
                color: 2,
                binding: soap_binding(),
                codec: soap_codec,
                endpoint: Some(service_ep),
            },
        ],
        net.clone(),
    )
    .unwrap();
    mediator.timeout = Duration::from_secs(3);
    (net, mediator)
}

fn giop_client(net: &NetworkEngine, endpoint: &Endpoint) -> RpcClient {
    RpcClient::connect(
        net,
        endpoint,
        Arc::new(MdlCodec::from_text(GIOPISH_MDL).unwrap()),
        giop_binding(),
        add_interface(),
    )
    .unwrap()
}

fn call_add(net: &NetworkEngine, endpoint: &Endpoint, x: i64, y: i64) -> String {
    let mut client = giop_client(net, endpoint);
    let mut request = AbstractMessage::new("Add");
    request.set_field("x", Value::Int(x));
    request.set_field("y", Value::Int(y));
    let reply = client.call(&request).unwrap();
    reply.get("z").unwrap().to_text()
}

const STALL_AFTER: Duration = Duration::from_millis(100);
const DEADLINE: Duration = Duration::from_secs(2);

/// Polls until `probe` returns `Some`, panicking with `what` past the
/// deadline — stall detection must happen well within the configured
/// stall deadline's order of magnitude, not the receive timeout's.
fn wait_for<T>(what: &str, mut probe: impl FnMut() -> Option<T>) -> T {
    let started = Instant::now();
    loop {
        if let Some(v) = probe() {
            return v;
        }
        assert!(started.elapsed() < DEADLINE, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn stalled_check(report: &HealthReport) -> Option<(HealthStatus, String)> {
    let pair = report.pairs.first()?;
    let check = pair.checks.iter().find(|c| c.name == "stalled-sessions")?;
    (check.status != HealthStatus::Healthy).then(|| (check.status, check.reason.clone()))
}

#[test]
fn multiplexed_watchdog_reports_silent_peer_and_degrades_health() {
    let (net, mediator) = service_and_mediator("wd-mux");
    let mut mediator = mediator;
    mediator.enable_ops(OpsConfig::watching(STALL_AFTER));
    let host =
        MediatorHost::deploy_multiplexed(mediator, &Endpoint::memory("wd-mux-bridge"), 2).unwrap();

    // A client that connects and never sends: the session parks awaiting
    // the client receive and the watchdog flags it within the deadline.
    let _silent = net.connect(host.endpoint()).unwrap();
    let (status, reason) = wait_for("health to notice the stall", || {
        stalled_check(&host.health_report())
    });
    assert_eq!(status, HealthStatus::Degraded);
    assert!(
        reason.contains("stalled"),
        "reason should mention the stall: {reason}"
    );
    assert_eq!(host.health_report().overall, HealthStatus::Degraded);

    // The event surfaced as a counter, the live gauge, and the window.
    let snap = host.diagnostics_snapshot();
    assert!(snap.counter("starlink_sessions_stalled_total") >= 1);
    assert!(snap.value("starlink_sessions_stalled", &[]).unwrap_or(0) >= 1);
    assert!(
        snap.value("starlink_window_sessions_stalled", &[("pair", "Add+Plus")])
            .unwrap_or(0)
            >= 1
    );
    // Health families carry the same verdict (1 = degraded).
    assert_eq!(
        snap.value("starlink_health_status", &[("pair", "Add+Plus")]),
        Some(1)
    );
    host.shutdown();
}

#[test]
fn abort_policy_reclaims_the_slot_and_later_sessions_succeed() {
    let (net, mediator) = service_and_mediator("wd-abort");
    let mut mediator = mediator;
    mediator.enable_ops(OpsConfig::aborting(STALL_AFTER));
    let host = MediatorHost::deploy_multiplexed(mediator, &Endpoint::memory("wd-abort-bridge"), 1)
        .unwrap();

    let _silent = net.connect(host.endpoint()).unwrap();
    // The watchdog aborts the hung session: it counts as a failure under
    // stage "stalled" and the stalled gauge returns to zero.
    wait_for("the stalled session to be aborted", || {
        let snap = host.diagnostics_snapshot();
        (snap.counter("starlink_sessions_failed_total") >= 1
            && snap.counter("starlink_sessions_stalled_total") >= 1
            && snap.value("starlink_sessions_stalled", &[]) == Some(0))
        .then_some(())
    });
    let snap = host.diagnostics_snapshot();
    assert!(
        snap.value(
            "starlink_window_session_failures",
            &[("pair", "Add+Plus"), ("stage", "stalled")]
        )
        .unwrap_or(0)
            >= 1
    );

    // The worker slot is free again: a real client is served.
    assert_eq!(call_add(&net, host.endpoint(), 20, 22), "42");
    host.shutdown();
}

#[test]
fn threaded_host_watchdog_flags_silent_peer() {
    let (net, mediator) = service_and_mediator("wd-threaded");
    let mut mediator = mediator;
    mediator.enable_ops(OpsConfig::watching(STALL_AFTER));
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("wd-threaded-bridge")).unwrap();

    let _silent = net.connect(host.endpoint()).unwrap();
    let (status, _) = wait_for("health to notice the stall", || {
        stalled_check(&host.health_report())
    });
    assert_eq!(status, HealthStatus::Degraded);
    assert!(
        host.diagnostics_snapshot()
            .counter("starlink_sessions_stalled_total")
            >= 1
    );
    host.shutdown();
}

#[test]
fn diagnostics_endpoint_answers_every_selector() {
    let (net, mediator) = service_and_mediator("diag");
    let mut mediator = mediator;
    mediator.enable_tracing();
    mediator.enable_ops(OpsConfig::default());
    let host =
        MediatorHost::deploy_multiplexed(mediator, &Endpoint::memory("diag-bridge"), 2).unwrap();
    let diag_ep = host
        .expose_diagnostics(&net, &Endpoint::memory("diag-endpoint"))
        .unwrap();
    assert_eq!(call_add(&net, host.endpoint(), 1, 2), "3");

    let ask = |selector: &str| -> String {
        let mut conn = net.connect(&diag_ep).unwrap();
        conn.send(selector.as_bytes()).unwrap();
        String::from_utf8(conn.receive_timeout(Duration::from_secs(5)).unwrap()).unwrap()
    };

    // stats: the full snapshot including window and health families.
    let stats = Snapshot::parse_text(&ask("stats")).unwrap();
    assert!(stats.counter("starlink_sessions_finished_total") >= 1);
    assert_eq!(
        stats.value("starlink_window_seconds", &[("pair", "Add+Plus")]),
        Some(60)
    );
    assert!(stats.family("starlink_health_status").is_some());

    // health: parseable report, healthy after a clean workload.
    let health = HealthReport::parse_text(&ask("health")).unwrap();
    assert_eq!(health.overall, HealthStatus::Healthy);

    // sessions: the live directory (no live sessions once calls drain,
    // but the framing is always present).
    let sessions = ask("sessions");
    assert!(
        sessions.starts_with("starlink-sessions "),
        "unexpected sessions frame: {sessions}"
    );
    assert!(sessions.trim_end().ends_with("end"));

    // traces: Chrome trace JSON for the completed session.
    let traces = ask("traces");
    assert!(traces.contains("traceEvents"), "not a trace: {traces}");

    // Unknown selectors get a one-line error, not a hang.
    let err = ask("bogus");
    assert!(err.starts_with("error: unknown diagnostics selector"));

    // Back-compat: a client that sends nothing gets stats.
    let mut legacy = net.connect(&diag_ep).unwrap();
    let frame = legacy.receive_timeout(Duration::from_secs(5)).unwrap();
    let parsed = Snapshot::parse_text(&String::from_utf8(frame).unwrap()).unwrap();
    assert!(parsed.counter("starlink_sessions_finished_total") >= 1);

    host.shutdown();
}

#[test]
fn expose_stats_wrapper_still_serves_plain_readers() {
    let (net, mediator) = service_and_mediator("stats-compat");
    let host =
        MediatorHost::deploy_multiplexed(mediator, &Endpoint::memory("compat-bridge"), 2).unwrap();
    let stats_ep = host
        .expose_stats(&net, &Endpoint::memory("compat-stats"))
        .unwrap();
    assert_eq!(call_add(&net, host.endpoint(), 2, 3), "5");
    let mut conn = net.connect(&stats_ep).unwrap();
    let text = String::from_utf8(conn.receive_timeout(Duration::from_secs(5)).unwrap()).unwrap();
    let snap = Snapshot::parse_text(&text).unwrap();
    assert!(snap.counter("starlink_sessions_finished_total") >= 1);
    // Ops were not enabled: health families still present (graded with
    // defaults over lifetime counters), window families absent.
    assert!(snap.family("starlink_health_status").is_some());
    assert!(snap.family("starlink_window_seconds").is_none());
    host.shutdown();
}
