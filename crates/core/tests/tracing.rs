//! Per-session causal tracing, end to end: a replayed Add→Plus session
//! must yield a span tree covering accept → parse → γ-translate →
//! compose → wire-out on both colors with monotonic timestamps, the
//! flight recorder must show each message before and after γ, and the
//! exported Chrome trace must validate with balanced span pairs.

use starlink_automata::merge::{template, MergeBuilder};
use starlink_automata::Automaton;
use starlink_core::{
    ActionRule, ColorRuntime, Mediator, MediatorHost, ParamRule, ProtocolBinding, ReplyAction,
    RpcClient, RpcServer, ServiceHandler, ServiceInterface, SessionCore, SessionEvent,
    SessionPersist,
};
use starlink_mdl::{MdlCodec, MessageCodec};
use starlink_message::{AbstractMessage, Value};
use starlink_net::{Endpoint, MemoryTransport, NetworkEngine};
use starlink_telemetry::{
    chrome_events, render_chrome_json, validate_chrome_trace, TraceRecordKind,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

const GIOPISH_MDL: &str = "\
<Message:GIOPRequest>\n\
<Rule:MessageType=0>\n\
<MessageType:8><RequestID:32>\n\
<OperationLength:32><Operation:OperationLength>\n\
<align:64><ParameterArray:eof:valueseq>\n\
<End:Message>\n\
<Message:GIOPReply>\n\
<Rule:MessageType=1>\n\
<MessageType:8><RequestID:32>\n\
<align:64><ParameterArray:eof:valueseq>\n\
<End:Message>";

const SOAPISH_MDL: &str = "\
<Dialect:xml>\n\
<Message:SOAPRequest>\n\
<Root:soap:Envelope>\n\
<RootAttr:xmlns:soap=http://schemas.xmlsoap.org/soap/envelope/>\n\
<Name:MethodName=Body>\n\
<List:Params=Body/{MethodName}/*>\n\
<End:Message>\n\
<Message:SOAPReply>\n\
<Root:soap:ReplyEnvelope>\n\
<Name:MethodName=Body>\n\
<List:Params=Body/{MethodName}/*>\n\
<End:Message>";

fn giop_binding() -> ProtocolBinding {
    ProtocolBinding {
        name: "IIOP".into(),
        mdl: "GIOP.mdl".into(),
        request_message: "GIOPRequest".into(),
        reply_message: "GIOPReply".into(),
        request_action: ActionRule::Field("Operation".parse().unwrap()),
        reply_action: ReplyAction::Correlated,
        request_params: ParamRule::PositionalArray("ParameterArray".parse().unwrap()),
        reply_params: ParamRule::PositionalArray("ParameterArray".parse().unwrap()),
        correlation: Some("RequestID".parse().unwrap()),
        request_defaults: Vec::new(),
        reply_defaults: Vec::new(),
        request_message_overrides: Vec::new(),
        reply_message_overrides: Vec::new(),
    }
}

fn soap_binding() -> ProtocolBinding {
    ProtocolBinding {
        name: "SOAP".into(),
        mdl: "SOAP.mdl".into(),
        request_message: "SOAPRequest".into(),
        reply_message: "SOAPReply".into(),
        request_action: ActionRule::Field("MethodName".parse().unwrap()),
        reply_action: ReplyAction::Field("MethodName".parse().unwrap()),
        request_params: ParamRule::PositionalArray("Params".parse().unwrap()),
        reply_params: ParamRule::PositionalArray("Params".parse().unwrap()),
        correlation: None,
        request_defaults: Vec::new(),
        reply_defaults: Vec::new(),
        request_message_overrides: Vec::new(),
        reply_message_overrides: Vec::new(),
    }
}

fn add_plus_merged() -> Automaton {
    let mut b = MergeBuilder::new("Add+Plus", 1, 2);
    b.intertwined(
        template("Add", &["x", "y"]),
        template("Add.reply", &["z"]),
        template("Plus", &["x", "y"]),
        template("Plus.reply", &["z"]),
        "m2.x = m1.x\nm2.y = m1.y",
        "m5.z = m4.z",
    )
    .unwrap();
    b.finish().unwrap().0
}

fn giop_add_request(request_id: u64, x: i64, y: i64) -> Vec<u8> {
    let codec = MdlCodec::from_text(GIOPISH_MDL).unwrap();
    let mut app = AbstractMessage::new("Add");
    app.set_field("x", Value::Int(x));
    app.set_field("y", Value::Int(y));
    let mut proto = giop_binding().bind_request(&app).unwrap();
    proto
        .set_path(&"RequestID".parse().unwrap(), Value::UInt(request_id))
        .unwrap();
    codec.compose(&proto).unwrap()
}

fn soap_plus_reply(z: i64) -> Vec<u8> {
    let codec = MdlCodec::from_text(SOAPISH_MDL).unwrap();
    let mut app = AbstractMessage::new("Plus.reply");
    app.set_field("z", Value::Int(z));
    let proto = soap_binding().bind_reply(&app, None).unwrap();
    codec.compose(&proto).unwrap()
}

fn color_runtimes(service_ep: Endpoint) -> Vec<ColorRuntime> {
    vec![
        ColorRuntime {
            color: 1,
            binding: giop_binding(),
            codec: Arc::new(MdlCodec::from_text(GIOPISH_MDL).unwrap()),
            endpoint: None,
        },
        ColorRuntime {
            color: 2,
            binding: soap_binding(),
            codec: Arc::new(MdlCodec::from_text(SOAPISH_MDL).unwrap()),
            endpoint: Some(service_ep),
        },
    ]
}

#[test]
fn replayed_session_produces_full_causal_trace() {
    let mut mediator = Mediator::new(
        add_plus_merged(),
        1,
        color_runtimes(Endpoint::memory("plus-service")),
        NetworkEngine::new(), // never touched: the core does no I/O
    )
    .unwrap();
    let (traces, flight) = mediator.enable_tracing();

    let mut core = SessionCore::new(mediator.session_spec(), SessionPersist::new()).unwrap();
    core.start().unwrap();
    core.step(SessionEvent::WireReceived {
        color: 1,
        bytes: giop_add_request(7, 30, 12),
    })
    .unwrap();
    core.step(SessionEvent::WireReceived {
        color: 2,
        bytes: soap_plus_reply(42),
    })
    .unwrap();
    assert!(core.is_finished());

    let trace = traces.latest().expect("one completed trace");
    assert_eq!(traces.traces().len(), 1);
    assert_eq!(Some(trace.session), core.trace_id());

    // Span tree: one root session span; each leg (client request,
    // service reply) opens receive, gamma and send spans.
    let names = trace.span_names();
    let count = |n: &str| names.iter().filter(|&&s| s == n).count();
    assert_eq!(count("session"), 1, "spans: {names:?}");
    assert_eq!(count("receive"), 2, "spans: {names:?}");
    assert_eq!(count("gamma"), 2, "spans: {names:?}");
    assert_eq!(count("send"), 2, "spans: {names:?}");

    // Timestamps are monotonic over the whole record stream.
    let ts: Vec<u64> = trace.records.iter().map(|r| r.meta.ts_ns).collect();
    assert!(ts.windows(2).all(|w| w[0] <= w[1]), "non-monotonic: {ts:?}");

    // The pipeline stages all left records, covering both colors.
    for stage in ["parse", "translate", "gamma", "compose"] {
        assert!(
            trace
                .records
                .iter()
                .any(|r| r.name == stage && matches!(r.kind, TraceRecordKind::Timed(_))),
            "missing timed {stage} record"
        );
    }
    let details_of = |name: &str| -> Vec<&str> {
        trace
            .records
            .iter()
            .filter(|r| r.name == name)
            .map(|r| r.detail.as_str())
            .collect()
    };
    for name in ["wire-in", "wire-out"] {
        let details = details_of(name);
        for color in ["color 1", "color 2"] {
            assert!(
                details.iter().any(|d| d.contains(color)),
                "{name} missing {color}: {details:?}"
            );
        }
    }
    assert!(trace.records.iter().any(|r| r.name == "session-finished"));

    // Flight recorder: both γ-translations captured before and after
    // translation, with field values.
    let caps = flight.captures(trace.session);
    let stages: Vec<(&str, &str)> = caps
        .iter()
        .map(|c| (c.stage.as_str(), c.message.as_str()))
        .collect();
    assert_eq!(
        stages,
        vec![
            ("received", "Add"),
            ("pre-gamma", "Add"),
            ("post-gamma", "Plus"),
            ("sent", "Plus"),
            ("received", "Plus.reply"),
            ("pre-gamma", "Plus.reply"),
            ("post-gamma", "Add.reply"),
            ("sent", "Add.reply"),
        ]
    );
    let pre = &caps[1];
    assert!(pre.fields.contains(&("x".into(), "30".into())), "{pre:?}");
    assert!(pre.fields.contains(&("y".into(), "12".into())), "{pre:?}");
    let post = &caps[6];
    assert!(post.fields.contains(&("z".into(), "42".into())), "{post:?}");

    // Chrome export: valid, balanced, one session track.
    let json = render_chrome_json(&chrome_events(&trace));
    let stats = validate_chrome_trace(&json).expect("valid Chrome trace");
    assert_eq!(stats.span_pairs, 7);
    assert_eq!(stats.tracks, 1);
}

fn plus_interface() -> ServiceInterface {
    let mut plus = AbstractMessage::new("Plus");
    plus.set_field("x", Value::Null);
    plus.set_field("y", Value::Null);
    let mut reply = AbstractMessage::new("Plus.reply");
    reply.set_field("z", Value::Null);
    ServiceInterface::new().with_operation(plus, reply)
}

fn add_interface() -> ServiceInterface {
    let mut add = AbstractMessage::new("Add");
    add.set_field("x", Value::Null);
    add.set_field("y", Value::Null);
    let mut reply = AbstractMessage::new("Add.reply");
    reply.set_field("z", Value::Null);
    ServiceInterface::new().with_operation(add, reply)
}

fn plus_handler() -> Arc<ServiceHandler> {
    Arc::new(|req| {
        let x: i64 = req
            .get("x")
            .map(Value::to_text)
            .and_then(|t| t.parse().ok())
            .ok_or("bad x")?;
        let y: i64 = req
            .get("y")
            .map(Value::to_text)
            .and_then(|t| t.parse().ok())
            .ok_or("bad y")?;
        let mut reply = AbstractMessage::new("Plus.reply");
        reply.set_field("z", Value::Int(x + y));
        Ok(reply)
    })
}

/// Deploys the Plus service on a fresh memory network and builds the
/// Add↔Plus mediator against it.
fn service_and_mediator(ns: &str) -> (NetworkEngine, Mediator) {
    let mut net = NetworkEngine::new();
    net.register(Arc::new(MemoryTransport::new()));
    let service_ep = Endpoint::memory(format!("{ns}-plus"));
    let service = RpcServer::serve(
        &net,
        &service_ep,
        Arc::new(MdlCodec::from_text(SOAPISH_MDL).unwrap()),
        soap_binding(),
        plus_interface(),
        plus_handler(),
    )
    .unwrap();
    std::mem::forget(service);
    let mediator = Mediator::new(
        add_plus_merged(),
        1,
        color_runtimes(service_ep),
        net.clone(),
    )
    .unwrap();
    (net, mediator)
}

#[test]
fn host_exposes_traces_as_chrome_json_over_the_network() {
    let (net, mut mediator) = service_and_mediator("traced");
    mediator.enable_tracing();
    let host =
        MediatorHost::deploy_multiplexed(mediator, &Endpoint::memory("traced-bridge"), 2).unwrap();
    let traces = host.trace_buffer().expect("tracing was enabled");
    assert!(host.flight_recorder().is_some());
    let trace_ep = host
        .expose_traces(&net, &Endpoint::memory("traced-traces"))
        .unwrap();

    let mut client = RpcClient::connect(
        &net,
        host.endpoint(),
        Arc::new(MdlCodec::from_text(GIOPISH_MDL).unwrap()),
        giop_binding(),
        add_interface(),
    )
    .unwrap();
    let mut request = AbstractMessage::new("Add");
    request.set_field("x", Value::Int(20));
    request.set_field("y", Value::Int(22));
    let reply = client.call(&request).unwrap();
    assert_eq!(reply.get("z").unwrap().to_text(), "42");

    // The traversal's trace completes when its root span closes; give
    // the pump a moment to get there.
    let deadline = Instant::now() + Duration::from_secs(5);
    while traces.traces().is_empty() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(!traces.traces().is_empty(), "no trace completed in time");

    let mut conn = net.connect(&trace_ep).unwrap();
    let frame = conn.receive().unwrap();
    let json = String::from_utf8(frame).unwrap();
    let stats = validate_chrome_trace(&json).expect("served trace is valid Chrome JSON");
    assert!(stats.events > 0);
    assert!(stats.span_pairs >= 7, "span pairs: {}", stats.span_pairs);
    host.shutdown();
}

#[test]
fn untraced_host_has_no_trace_surface() {
    let (net, mediator) = service_and_mediator("untraced");
    let host = MediatorHost::deploy(mediator, &Endpoint::memory("untraced-bridge")).unwrap();
    assert!(host.trace_buffer().is_none());
    assert!(host.flight_recorder().is_none());
    assert!(host
        .expose_traces(&net, &Endpoint::memory("untraced-traces"))
        .is_err());
    host.shutdown();
}
