//! Runtime conformance monitoring against an API usage protocol.
//!
//! Paper §3.1: the usage-protocol automaton "acts as a call graph of
//! invoked operations and specifies the order in which they should be
//! invoked". A [`ProtocolMonitor`] enforces that order at runtime: each
//! observed send/receive advances the automaton; an action the protocol
//! does not allow in the current state is a conformance violation —
//! caught *before* a non-conforming request reaches the network when the
//! monitor is attached to an [`crate::RpcClient`].

use crate::error::CoreError;
use crate::Result;
use starlink_automata::{Action, Automaton};
use starlink_message::Direction;
use starlink_telemetry::{TelemetrySink, TraceEvent};
use std::sync::Arc;

/// A cursor over a usage-protocol automaton, advanced by observed
/// actions.
#[derive(Clone)]
pub struct ProtocolMonitor {
    automaton: Arc<Automaton>,
    current: String,
    observed: usize,
    telemetry: Arc<dyn TelemetrySink>,
}

impl ProtocolMonitor {
    /// Creates a monitor at the automaton's initial state.
    ///
    /// # Errors
    ///
    /// Validation failures of the underlying automaton.
    pub fn new(automaton: Automaton) -> Result<ProtocolMonitor> {
        automaton.validate()?;
        let current = automaton
            .initial()
            .expect("validate() guarantees an initial state")
            .to_owned();
        Ok(ProtocolMonitor {
            automaton: Arc::new(automaton),
            current,
            observed: 0,
            telemetry: starlink_telemetry::noop_sink(),
        })
    }

    /// Reports conformance violations into `sink` (as
    /// `MonitorViolation` events) in addition to returning them as
    /// errors.
    #[must_use]
    pub fn with_telemetry(mut self, sink: Arc<dyn TelemetrySink>) -> ProtocolMonitor {
        self.telemetry = sink;
        self
    }

    /// The state the monitor is currently in.
    pub fn state(&self) -> &str {
        &self.current
    }

    /// Number of actions observed since the last reset.
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Whether the protocol run so far may stop here.
    pub fn is_accepting(&self) -> bool {
        self.automaton.is_final(&self.current)
    }

    /// Observes one action (`!` for sends, `?` for receives) on the named
    /// message and advances the automaton. Silent γ-transitions are
    /// crossed automatically.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnexpectedMessage`] when the usage protocol does not
    /// allow the action in the current state; the monitor state is left
    /// unchanged so the caller can recover or report.
    pub fn observe(&mut self, direction: Direction, message_name: &str) -> Result<()> {
        let label = format!("{}{message_name}", direction.symbol());
        let mut probe = self.current.clone();
        // Cross γ-transitions until the action matches or nothing is left.
        for _ in 0..self.automaton.states().len() + 1 {
            if let Some(t) = self
                .automaton
                .transitions_from(&probe)
                .find(|t| t.action.label() == label)
            {
                self.current = t.to.clone();
                self.observed += 1;
                return Ok(());
            }
            match self
                .automaton
                .transitions_from(&probe)
                .find(|t| t.action.is_gamma())
            {
                Some(g) => probe = g.to.clone(),
                None => break,
            }
        }
        self.telemetry.record(&TraceEvent::MonitorViolation {
            state: &self.current,
            action: &label,
        });
        Err(CoreError::UnexpectedMessage {
            state: self.current.clone(),
            received: label,
            expected: self
                .automaton
                .transitions_from(&self.current)
                .map(|t| t.action.label())
                .collect(),
        })
    }

    /// Returns to the initial state (a new session).
    pub fn reset(&mut self) {
        self.current = self
            .automaton
            .initial()
            .expect("validated automaton has an initial state")
            .to_owned();
        self.observed = 0;
    }

    /// The action labels allowed next (after silently crossing γs).
    ///
    /// Each label appears once, in first-encounter order, even when the
    /// γ-chain revisits states (γ-cycles) or distinct states offer the
    /// same action.
    pub fn allowed(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut probe = self.current.clone();
        for _ in 0..self.automaton.states().len() + 1 {
            for t in self.automaton.transitions_from(&probe) {
                if !t.action.is_gamma() {
                    let label = t.action.label();
                    if seen.insert(label.clone()) {
                        out.push(label);
                    }
                }
            }
            match self
                .automaton
                .transitions_from(&probe)
                .find(|t| t.action.is_gamma())
            {
                Some(g) => probe = g.to.clone(),
                None => break,
            }
        }
        out
    }
}

impl std::fmt::Debug for ProtocolMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProtocolMonitor")
            .field("automaton", &self.automaton.name())
            .field("state", &self.current)
            .field("observed", &self.observed)
            .finish()
    }
}

/// Marker trait use: keep `Action` imported for label parity with the
/// automaton (compile-time coupling only).
const _: fn(&Action) -> String = Action::label;

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_automata::linear_usage_protocol;
    use starlink_automata::merge::template;

    fn monitor() -> ProtocolMonitor {
        let a = linear_usage_protocol(
            "AFlickr",
            1,
            &[
                (
                    template("flickr.photos.search", &["text"]),
                    template("flickr.photos.search.reply", &["photos"]),
                ),
                (
                    template("flickr.photos.getInfo", &["photo_id"]),
                    template("flickr.photos.getInfo.reply", &["photo"]),
                ),
            ],
        );
        ProtocolMonitor::new(a).unwrap()
    }

    #[test]
    fn conforming_run_accepts() {
        let mut m = monitor();
        assert!(!m.is_accepting());
        m.observe(Direction::Sent, "flickr.photos.search").unwrap();
        m.observe(Direction::Received, "flickr.photos.search.reply")
            .unwrap();
        m.observe(Direction::Sent, "flickr.photos.getInfo").unwrap();
        m.observe(Direction::Received, "flickr.photos.getInfo.reply")
            .unwrap();
        assert!(m.is_accepting());
        assert_eq!(m.observed(), 4);
    }

    #[test]
    fn out_of_order_call_is_a_violation() {
        let mut m = monitor();
        let err = m
            .observe(Direction::Sent, "flickr.photos.getInfo")
            .unwrap_err();
        match err {
            CoreError::UnexpectedMessage { expected, .. } => {
                assert_eq!(expected, vec!["!flickr.photos.search"]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // State unchanged: the conforming call still works.
        m.observe(Direction::Sent, "flickr.photos.search").unwrap();
    }

    #[test]
    fn wrong_direction_is_a_violation() {
        let mut m = monitor();
        assert!(m
            .observe(Direction::Received, "flickr.photos.search")
            .is_err());
    }

    #[test]
    fn reset_starts_over() {
        let mut m = monitor();
        m.observe(Direction::Sent, "flickr.photos.search").unwrap();
        m.reset();
        assert_eq!(m.observed(), 0);
        m.observe(Direction::Sent, "flickr.photos.search").unwrap();
    }

    #[test]
    fn allowed_lists_next_actions() {
        let m = monitor();
        assert_eq!(m.allowed(), vec!["!flickr.photos.search"]);
    }

    #[test]
    fn allowed_dedupes_labels_across_gamma_chain() {
        // A γ-cycle (s0 → s1 → s0) where both states offer `!op`: the
        // chain revisits the same action set, which used to produce the
        // label once per visit.
        let mut a = Automaton::new("Loop", 1);
        a.add_state("s0");
        a.add_state("s1");
        a.add_state("s2");
        a.set_initial("s0").unwrap();
        a.add_final("s2").unwrap();
        a.add_gamma("s0", "s1", "").unwrap();
        a.add_send("s1", "s2", template("op", &[])).unwrap();
        a.add_gamma("s1", "s0", "").unwrap();
        let m = ProtocolMonitor {
            automaton: Arc::new(a),
            current: "s0".to_owned(),
            observed: 0,
            telemetry: starlink_telemetry::noop_sink(),
        };
        assert_eq!(m.allowed(), vec!["!op"]);
    }

    #[test]
    fn observe_after_accepting_state_is_a_violation() {
        let mut m = monitor();
        m.observe(Direction::Sent, "flickr.photos.search").unwrap();
        m.observe(Direction::Received, "flickr.photos.search.reply")
            .unwrap();
        m.observe(Direction::Sent, "flickr.photos.getInfo").unwrap();
        m.observe(Direction::Received, "flickr.photos.getInfo.reply")
            .unwrap();
        assert!(m.is_accepting());
        // The protocol run is over: nothing further is allowed, and the
        // violation leaves the monitor in its accepting state.
        let err = m
            .observe(Direction::Sent, "flickr.photos.search")
            .unwrap_err();
        match err {
            CoreError::UnexpectedMessage { expected, .. } => assert!(expected.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        assert!(m.is_accepting());
        assert_eq!(m.observed(), 4);
    }

    #[test]
    fn reset_restores_initial_state_and_clears_observed() {
        let mut m = monitor();
        let initial = m.state().to_owned();
        m.observe(Direction::Sent, "flickr.photos.search").unwrap();
        m.observe(Direction::Received, "flickr.photos.search.reply")
            .unwrap();
        assert_ne!(m.state(), initial);
        assert_eq!(m.observed(), 2);
        m.reset();
        assert_eq!(m.state(), initial);
        assert_eq!(m.observed(), 0);
        assert_eq!(m.allowed(), vec!["!flickr.photos.search"]);
    }

    #[test]
    fn allowed_order_is_stable_across_calls() {
        // Two sends offered from the same state: `allowed()` must report
        // them in a deterministic (insertion) order, call after call.
        let mut a = Automaton::new("Branch", 1);
        a.add_state("s0");
        a.add_state("s1");
        a.add_state("s2");
        a.set_initial("s0").unwrap();
        a.add_final("s1").unwrap();
        a.add_final("s2").unwrap();
        a.add_send("s0", "s1", template("zeta", &[])).unwrap();
        a.add_send("s0", "s2", template("alpha", &[])).unwrap();
        let m = ProtocolMonitor::new(a).unwrap();
        let first = m.allowed();
        assert_eq!(first, vec!["!zeta", "!alpha"]);
        for _ in 0..10 {
            assert_eq!(m.allowed(), first);
        }
    }

    #[test]
    fn violation_is_reported_to_telemetry() {
        let recorder = Arc::new(starlink_telemetry::Recorder::new());
        let mut m = monitor().with_telemetry(recorder.clone());
        assert!(m.observe(Direction::Sent, "flickr.photos.getInfo").is_err());
        let snap = starlink_telemetry::TelemetrySink::snapshot(recorder.as_ref()).unwrap();
        assert_eq!(snap.counter("starlink_monitor_violations_total"), 1);
    }
}
