use std::fmt;

/// Errors produced by the Starlink runtime.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// Message-model failure (field paths, values).
    Message(starlink_message::MessageError),
    /// MDL spec or codec failure.
    Mdl(starlink_mdl::MdlError),
    /// Automaton model failure.
    Automaton(starlink_automata::AutomatonError),
    /// MTL translation failure.
    Mtl(starlink_mtl::MtlLangError),
    /// Network engine failure.
    Net(starlink_net::NetError),
    /// A registry lookup failed.
    NotRegistered {
        /// What kind of model was looked up (`"mdl"`, `"automaton"`).
        kind: &'static str,
        /// The name that missed.
        name: String,
    },
    /// The automaton reached a state whose outgoing transitions cannot
    /// process the situation (e.g. an unexpected message arrived).
    UnexpectedMessage {
        /// The state the engine was in.
        state: String,
        /// The (application-level) message that arrived.
        received: String,
        /// The action labels that were acceptable.
        expected: Vec<String>,
    },
    /// The engine reached a state with no outgoing transition that is
    /// not final.
    Stuck {
        /// The state in question.
        state: String,
    },
    /// A binding could not translate between application and protocol
    /// levels.
    Binding {
        /// Human-readable description.
        message: String,
    },
    /// The session was aborted by the peer or by a handler.
    Aborted {
        /// Why.
        reason: String,
    },
    /// A sans-I/O [`crate::SessionCore`] was fed an event it did not ask
    /// for (wrong color, bytes after finishing, step before start).
    UnexpectedEvent {
        /// What was wrong.
        detail: String,
    },
    /// The host rejected new work because it is shutting down.
    HostStopped,
    /// A stall watchdog aborted the session: it had been awaiting a
    /// receive beyond the configured stall deadline (see
    /// `WatchdogConfig` / `StallPolicy::Abort`). *Not* an orderly end —
    /// a stall is exactly the failure mode the operations plane exists
    /// to surface.
    Stalled {
        /// The automaton state the session was stuck in.
        state: String,
        /// How long it had been awaiting, in milliseconds.
        waited_ms: u64,
    },
}

impl CoreError {
    /// A stable, low-cardinality label naming the failure stage, used as
    /// the `stage` of [`starlink_telemetry::TraceEvent::SessionFailed`]
    /// events (and therefore safe to aggregate on).
    pub fn stage_label(&self) -> &'static str {
        match self {
            CoreError::Message(_) => "message",
            CoreError::Mdl(_) => "mdl",
            CoreError::Automaton(_) => "automaton",
            CoreError::Mtl(_) => "mtl",
            CoreError::Net(_) => "net",
            CoreError::NotRegistered { .. } => "not-registered",
            CoreError::UnexpectedMessage { .. } => "unexpected-message",
            CoreError::Stuck { .. } => "stuck",
            CoreError::Binding { .. } => "binding",
            CoreError::Aborted { .. } => "aborted",
            CoreError::UnexpectedEvent { .. } => "unexpected-event",
            CoreError::HostStopped => "host-stopped",
            CoreError::Stalled { .. } => "stalled",
        }
    }

    /// Whether this error is part of normal operation rather than a
    /// failure worth reporting: receive timeouts restart the traversal,
    /// a closed connection is how clients hang up, and
    /// [`CoreError::HostStopped`] is orderly shutdown.
    pub fn is_orderly_end(&self) -> bool {
        matches!(
            self,
            CoreError::Net(starlink_net::NetError::Closed)
                | CoreError::Net(starlink_net::NetError::Timeout)
                | CoreError::HostStopped
        )
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Message(e) => write!(f, "message error: {e}"),
            CoreError::Mdl(e) => write!(f, "mdl error: {e}"),
            CoreError::Automaton(e) => write!(f, "automaton error: {e}"),
            CoreError::Mtl(e) => write!(f, "mtl error: {e}"),
            CoreError::Net(e) => write!(f, "network error: {e}"),
            CoreError::NotRegistered { kind, name } => {
                write!(f, "no {kind} registered under `{name}`")
            }
            CoreError::UnexpectedMessage {
                state,
                received,
                expected,
            } => write!(
                f,
                "unexpected message `{received}` in state `{state}` (expected one of: {})",
                expected.join(", ")
            ),
            CoreError::Stuck { state } => {
                write!(f, "automaton stuck in non-final state `{state}`")
            }
            CoreError::Binding { message } => write!(f, "binding error: {message}"),
            CoreError::Aborted { reason } => write!(f, "session aborted: {reason}"),
            CoreError::UnexpectedEvent { detail } => {
                write!(f, "unexpected session event: {detail}")
            }
            CoreError::HostStopped => write!(f, "mediator host is shutting down"),
            CoreError::Stalled { state, waited_ms } => write!(
                f,
                "session stalled in state `{state}` ({waited_ms} ms awaiting a receive)"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Message(e) => Some(e),
            CoreError::Mdl(e) => Some(e),
            CoreError::Automaton(e) => Some(e),
            CoreError::Mtl(e) => Some(e),
            CoreError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<starlink_message::MessageError> for CoreError {
    fn from(e: starlink_message::MessageError) -> Self {
        CoreError::Message(e)
    }
}

impl From<starlink_mdl::MdlError> for CoreError {
    fn from(e: starlink_mdl::MdlError) -> Self {
        CoreError::Mdl(e)
    }
}

impl From<starlink_automata::AutomatonError> for CoreError {
    fn from(e: starlink_automata::AutomatonError) -> Self {
        CoreError::Automaton(e)
    }
}

impl From<starlink_mtl::MtlLangError> for CoreError {
    fn from(e: starlink_mtl::MtlLangError) -> Self {
        CoreError::Mtl(e)
    }
}

impl From<starlink_net::NetError> for CoreError {
    fn from(e: starlink_net::NetError) -> Self {
        CoreError::Net(e)
    }
}
