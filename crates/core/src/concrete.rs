//! Concretization: producing the application-middleware automaton of
//! paper §4.3–4.4 (Fig. 7/8).
//!
//! The abstract (merged) automaton carries application actions and
//! application-level MTL. Binding it to protocols yields the *concrete*
//! automaton whose transitions carry protocol message templates
//! (`!GIOPRequest(Add, X, Y)`) and whose MTL references protocol field
//! paths (`S22.SOAPRqst → X = S21.GIOPRqst → X`). The engine executes
//! the abstract automaton with bindings applied at the edges — an
//! equivalent formulation — so `concretize` exists for inspection,
//! export, DOT rendering, and the Fig. 7/8 reproduction tests.

use crate::binding::{ParamRule, ProtocolBinding};
use crate::Result;
use starlink_automata::{Action, Automaton, Transition};
use starlink_message::{AbstractMessage, FieldPath, PathSegment};
use starlink_mtl::MtlProgram;
use std::collections::HashMap;

/// Where a state's message sits in the request/reply cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Request,
    Reply,
}

/// Binds every transition of a (possibly merged) automaton to concrete
/// protocol messages using the per-color bindings.
///
/// # Errors
///
/// Binding failures (unroutable actions) and automaton construction
/// failures.
pub fn concretize(
    automaton: &Automaton,
    bindings: &HashMap<u8, ProtocolBinding>,
) -> Result<Automaton> {
    let mut out = Automaton::new(format!("{}-concrete", automaton.name()), automaton.color());
    for s in automaton.states() {
        out.add_colored_state(s.id.clone(), s.colors.clone());
    }
    if let Some(init) = automaton.initial() {
        out.set_initial(init)?;
    }
    for f in automaton.finals() {
        out.add_final(f)?;
    }
    for color in bindings.keys() {
        if let Some(n) = automaton.network(*color) {
            out.set_network(*color, n.clone());
        }
    }

    // Map every send/receive endpoint state to the application message
    // handled there, for MTL rewriting.
    let mut at_state: HashMap<String, (u8, Kind, AbstractMessage)> = HashMap::new();
    for t in automaton.transitions() {
        let color = automaton
            .state(&t.from)
            .map(|s| s.colors[0])
            .unwrap_or(automaton.color());
        match &t.action {
            Action::Send(m) => {
                at_state.insert(t.from.clone(), (color, kind_of(m), m.clone()));
            }
            Action::Receive(m) => {
                at_state.insert(t.to.clone(), (color, kind_of(m), m.clone()));
            }
            Action::Gamma { .. } => {}
        }
    }

    for t in automaton.transitions() {
        let color = automaton
            .state(&t.from)
            .map(|s| s.colors[0])
            .unwrap_or(automaton.color());
        let binding = bindings.get(&color);
        let action = match (&t.action, binding) {
            (Action::Send(m), Some(b)) => Action::Send(bind_template(b, m)?),
            (Action::Receive(m), Some(b)) => Action::Receive(bind_template(b, m)?),
            (Action::Gamma { mtl }, _) => {
                let mut program = MtlProgram::parse(mtl)?;
                program.rewrite_refs(|slot, path| {
                    if let (Some((c, kind, template)), Some(p)) =
                        (at_state.get(slot.as_str()), path.as_mut())
                    {
                        if let Some(b) = bindings.get(c) {
                            if let Some(rewritten) = protocol_path(b, *kind, template, p) {
                                *p = rewritten;
                            }
                        }
                    }
                });
                Action::Gamma {
                    mtl: program.to_string(),
                }
            }
            (other, None) => other.clone(),
        };
        out.add_transition(Transition {
            from: t.from.clone(),
            to: t.to.clone(),
            action,
            network: t.network.clone(),
        })?;
    }
    Ok(out)
}

fn resolve_per_action<'r>(rule: &'r ParamRule, action: &str) -> &'r ParamRule {
    match rule {
        ParamRule::PerAction { rules, default } => {
            let op = action.strip_suffix(".reply").unwrap_or(action);
            rules
                .iter()
                .find(|(a, _)| a == op || a == action)
                .map(|(_, r)| r)
                .unwrap_or(default)
        }
        other => other,
    }
}

fn kind_of(m: &AbstractMessage) -> Kind {
    if m.name().ends_with(".reply") {
        Kind::Reply
    } else {
        Kind::Request
    }
}

fn bind_template(b: &ProtocolBinding, app: &AbstractMessage) -> Result<AbstractMessage> {
    match kind_of(app) {
        Kind::Request => b.bind_request(app),
        Kind::Reply => b.bind_reply(app, None),
    }
}

/// Rewrites an application field path into the protocol field path the
/// binding places it at (`X` → `ParameterArray[0]`, `q` → `Params.q`, …).
/// Returns `None` when the rule keeps application paths intact or the
/// field is not part of the template.
fn protocol_path(
    b: &ProtocolBinding,
    kind: Kind,
    template: &AbstractMessage,
    app_path: &FieldPath,
) -> Option<FieldPath> {
    let base = match kind {
        Kind::Request => &b.request_params,
        Kind::Reply => &b.reply_params,
    };
    let rule = resolve_per_action(base, template.name());
    let head = match app_path.head() {
        PathSegment::Name(n) => n.clone(),
        PathSegment::Index(_) => return None,
    };
    let rest: Vec<PathSegment> = app_path.segments()[1..].to_vec();
    let position = template.fields().iter().position(|f| f.label() == head);
    let mut segments: Vec<PathSegment> = match rule {
        ParamRule::PositionalArray(array) => {
            let i = position?;
            let mut s: Vec<PathSegment> = array.segments().to_vec();
            s.push(PathSegment::Index(i));
            s
        }
        ParamRule::Wrapped { array, item } => {
            let i = position?;
            let mut s: Vec<PathSegment> = array.segments().to_vec();
            s.push(PathSegment::Index(i));
            s.push(PathSegment::Name(item.clone()));
            s
        }
        ParamRule::NamedFields(Some(prefix)) => {
            let mut s: Vec<PathSegment> = prefix.segments().to_vec();
            s.push(PathSegment::Name(head));
            s
        }
        ParamRule::NamedFields(None) => return None,
        ParamRule::Query { uri_field } => uri_field.segments().to_vec(),
        ParamRule::None | ParamRule::PerAction { .. } => return None,
    };
    segments.extend(rest);
    FieldPath::from_segments(segments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{ActionRule, ReplyAction};
    use starlink_automata::linear_usage_protocol;
    use starlink_automata::merge::{template, MergeBuilder};
    use starlink_message::Value;

    fn iiop_binding() -> ProtocolBinding {
        ProtocolBinding {
            name: "IIOP".into(),
            mdl: "GIOP.mdl".into(),
            request_message: "GIOPRequest".into(),
            reply_message: "GIOPReply".into(),
            request_action: ActionRule::Field("Operation".parse().unwrap()),
            reply_action: ReplyAction::Correlated,
            request_params: ParamRule::PositionalArray("ParameterArray".parse().unwrap()),
            reply_params: ParamRule::PositionalArray("ParameterArray".parse().unwrap()),
            correlation: Some("RequestID".parse().unwrap()),
            request_defaults: Vec::new(),
            reply_defaults: Vec::new(),
            request_message_overrides: Vec::new(),
            reply_message_overrides: Vec::new(),
        }
    }

    fn soap_binding() -> ProtocolBinding {
        ProtocolBinding {
            name: "SOAP".into(),
            mdl: "SOAP.mdl".into(),
            request_message: "SOAPRequest".into(),
            reply_message: "SOAPReply".into(),
            request_action: ActionRule::Field("MethodName".parse().unwrap()),
            reply_action: ReplyAction::Field("MethodName".parse().unwrap()),
            request_params: ParamRule::PositionalArray("Params".parse().unwrap()),
            reply_params: ParamRule::PositionalArray("Params".parse().unwrap()),
            correlation: None,
            request_defaults: Vec::new(),
            reply_defaults: Vec::new(),
            request_message_overrides: Vec::new(),
            reply_message_overrides: Vec::new(),
        }
    }

    fn add_usage() -> Automaton {
        linear_usage_protocol(
            "AddClient",
            1,
            &[(template("Add", &["x", "y"]), template("Add.reply", &["z"]))],
        )
    }

    #[test]
    fn fig7_binding_to_iiop_and_soap() {
        // The same abstract Add automaton binds to both protocols.
        let usage = add_usage();
        let iiop = concretize(&usage, &HashMap::from([(1, iiop_binding())])).unwrap();
        let soap = concretize(&usage, &HashMap::from([(1, soap_binding())])).unwrap();

        let iiop_labels: Vec<String> = iiop
            .transitions()
            .iter()
            .map(|t| t.action.label())
            .collect();
        assert_eq!(iiop_labels, vec!["!GIOPRequest", "?GIOPReply"]);
        let soap_labels: Vec<String> = soap
            .transitions()
            .iter()
            .map(|t| t.action.label())
            .collect();
        assert_eq!(soap_labels, vec!["!SOAPRequest", "?SOAPReply"]);

        // The action label landed in the binding's action field.
        let req = iiop.transitions()[0].action.message().unwrap();
        assert_eq!(req.get("Operation").unwrap().as_str(), Some("Add"));
        let sreq = soap.transitions()[0].action.message().unwrap();
        assert_eq!(sreq.get("MethodName").unwrap().as_str(), Some("Add"));
    }

    #[test]
    fn fig8_concrete_merged_automaton() {
        // Merged Add(IIOP client) / Plus(SOAP service) automaton.
        let mut b = MergeBuilder::new("Add+Plus", 1, 2);
        b.intertwined(
            template("Add", &["x", "y"]),
            template("Add.reply", &["z"]),
            template("Plus", &["x", "y"]),
            template("Plus.reply", &["z"]),
            "m2.x = m1.x\nm2.y = m1.y",
            "m5.z = m4.z",
        )
        .unwrap();
        let (merged, _) = b.finish().unwrap();

        let bindings = HashMap::from([(1, iiop_binding()), (2, soap_binding())]);
        let concrete = concretize(&merged, &bindings).unwrap();

        // Send/receive transitions now carry protocol messages; client
        // color 1 is GIOP, service color 2 is SOAP.
        let labels: Vec<String> = concrete
            .transitions()
            .iter()
            .map(|t| t.action.label())
            .collect();
        assert_eq!(
            labels,
            vec![
                "?GIOPRequest",
                "γ",
                "!SOAPRequest",
                "?SOAPReply",
                "γ",
                "!GIOPReply"
            ]
        );

        // Fig. 8's concrete MTL: S22.SOAPRqst→X = S21.GIOPRqst→X becomes
        // positional ParameterArray paths on both sides.
        let request_gamma = match &concrete.transitions()[1].action {
            Action::Gamma { mtl } => mtl.clone(),
            other => panic!("unexpected {other:?}"),
        };
        assert!(request_gamma.contains("m2.Params[0] = m1.ParameterArray[0]"));
        assert!(request_gamma.contains("m2.Params[1] = m1.ParameterArray[1]"));
        let reply_gamma = match &concrete.transitions()[4].action {
            Action::Gamma { mtl } => mtl.clone(),
            other => panic!("unexpected {other:?}"),
        };
        assert!(reply_gamma.contains("m5.ParameterArray[0] = m4.Params[0]"));
    }

    #[test]
    fn named_prefix_rewrite() {
        let mut binding = soap_binding();
        binding.request_params = ParamRule::NamedFields(Some("Body".parse().unwrap()));
        let t = template("op", &["k"]);
        let rewritten =
            protocol_path(&binding, Kind::Request, &t, &"k.sub".parse().unwrap()).unwrap();
        assert_eq!(rewritten.to_string(), "Body.k.sub");
    }

    #[test]
    fn unknown_fields_left_alone() {
        let binding = iiop_binding();
        let t = template("op", &["k"]);
        assert!(protocol_path(&binding, Kind::Request, &t, &"zz".parse().unwrap()).is_none());
    }

    #[test]
    fn concrete_reply_template_has_status_defaults() {
        let mut binding = soap_binding();
        binding.reply_defaults = vec![("Status".parse().unwrap(), Value::Str("200".into()))];
        let usage = add_usage();
        let concrete = concretize(&usage, &HashMap::from([(1, binding)])).unwrap();
        let reply = concrete.transitions()[1].action.message().unwrap();
        assert_eq!(reply.get("Status").unwrap().as_str(), Some("200"));
    }
}
