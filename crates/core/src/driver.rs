//! Blocking driver for the sans-I/O [`SessionCore`]: owns the sockets,
//! executes the core's [`SessionIo`] instructions with blocking calls,
//! and reproduces the behaviour of the original fused engine loop —
//! existing integration tests run against it unchanged through
//! [`crate::Mediator::run_session`] and the thread-per-connection
//! [`crate::MediatorHost`].

use crate::error::CoreError;
use crate::ops::{OpsRuntime, SessionEntry, StallPolicy};
use crate::session_core::{
    SessionCore, SessionEvent, SessionIo, SessionOutcome, SessionPersist, SessionSpec,
};
use crate::Result;
use starlink_mtl::TranslationCache;
use starlink_net::{Connection, Endpoint, NetworkEngine};
use starlink_telemetry::SessionTracer;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-connection view of the operations plane: the host's shared
/// runtime plus this connection's directory id. `None` when the mediator
/// never called `enable_ops` — the driver then pays nothing beyond one
/// `Option` check per receive.
pub(crate) struct SessionWatch {
    pub ops: Arc<OpsRuntime>,
    pub id: u64,
}

/// Mutable per-connection state shared across successive traversals on
/// the same client connection (the translation cache persists so that
/// e.g. photo ids minted in one traversal resolve in the next).
pub(crate) struct ConnectionState {
    pub cache: TranslationCache,
    pub service_conns: HashMap<u8, Box<dyn Connection>>,
    pub host_override: Option<String>,
    /// Recycled wire buffers carried between traversals so composing
    /// stays allocation-free in steady state.
    pub wire_pool: Vec<Vec<u8>>,
    /// Per-connection tracer so successive traversals on one client
    /// connection share a session trace id (minted at accept time by
    /// the host, or lazily by the first traversal).
    pub tracer: Option<SessionTracer>,
}

impl ConnectionState {
    pub(crate) fn new() -> ConnectionState {
        ConnectionState {
            cache: TranslationCache::new(),
            service_conns: HashMap::new(),
            host_override: None,
            wire_pool: Vec::new(),
            tracer: None,
        }
    }
}

/// Granularity at which a stoppable blocking receive re-checks the stop
/// flag, so host shutdown interrupts sessions promptly.
const STOP_POLL: Duration = Duration::from_millis(50);

/// Runs one automaton traversal to completion over blocking I/O.
///
/// `stop` (when given) makes the driver abandon the session promptly on
/// host shutdown instead of sleeping out the full receive timeout.
pub(crate) fn run_blocking(
    spec: &Arc<SessionSpec>,
    net: &NetworkEngine,
    timeout: Duration,
    client_conn: &mut dyn Connection,
    state: &mut ConnectionState,
    stop: Option<&AtomicBool>,
    watch: Option<&SessionWatch>,
) -> Result<SessionOutcome> {
    let persist = SessionPersist {
        cache: std::mem::replace(&mut state.cache, TranslationCache::new()),
        connected: state.service_conns.keys().copied().collect(),
        host_override: state.host_override.take(),
        wire_pool: std::mem::take(&mut state.wire_pool),
        tracer: state.tracer.take(),
    };
    let mut core = SessionCore::new(spec.clone(), persist)?;
    let result = drive(
        &mut core,
        spec,
        net,
        timeout,
        client_conn,
        state,
        stop,
        watch,
    );
    if let Err(err) = &result {
        core.record_failure(err);
    }
    // Persistent state flows back even when the traversal failed — a
    // timeout-and-retry must keep the translation cache.
    let persist = core.into_persist();
    state.cache = persist.cache;
    state.host_override = persist.host_override;
    state.wire_pool = persist.wire_pool;
    state.tracer = persist.tracer;
    result
}

#[allow(clippy::too_many_arguments)]
fn drive(
    core: &mut SessionCore,
    spec: &Arc<SessionSpec>,
    net: &NetworkEngine,
    timeout: Duration,
    client_conn: &mut dyn Connection,
    state: &mut ConnectionState,
    stop: Option<&AtomicBool>,
    watch: Option<&SessionWatch>,
) -> Result<SessionOutcome> {
    let mut ios = core.start()?;
    loop {
        let mut need: Option<u8> = None;
        for io in ios {
            match io {
                SessionIo::Finished(outcome) => return Ok(outcome),
                SessionIo::NeedRecv { color } => need = Some(color),
                SessionIo::SendWire { color, bytes } => {
                    if color == spec.client_color {
                        client_conn.send(&bytes)?;
                    } else {
                        let conn = state.service_conns.get_mut(&color).ok_or_else(|| {
                            CoreError::Aborted {
                                reason: format!("send on color {color} with no connection"),
                            }
                        })?;
                        conn.send(&bytes)?;
                    }
                    core.recycle_wire_buf(bytes);
                }
                SessionIo::ConnectService { color, endpoint } => {
                    let endpoint: Endpoint = endpoint.parse()?;
                    let conn = net.connect(&endpoint)?;
                    state.service_conns.insert(color, conn);
                }
            }
        }
        let Some(color) = need else {
            return Err(CoreError::Aborted {
                reason: "session core yielded without finishing or requesting input".to_owned(),
            });
        };
        if let Some(w) = watch {
            w.ops.directory.upsert(SessionEntry {
                id: w.id,
                state: core.current_state().to_owned(),
                awaiting: Some(color),
                since: Instant::now(),
                stalled: false,
            });
        }
        let wire = if color == spec.client_color {
            receive_watched(client_conn, timeout, stop, watch, core)?
        } else {
            let conn = state
                .service_conns
                .get_mut(&color)
                .ok_or_else(|| CoreError::Aborted {
                    reason: format!("receive on color {color} before any request was sent"),
                })?;
            receive_watched(conn.as_mut(), timeout, stop, watch, core)?
        };
        ios = core.step(SessionEvent::WireReceived { color, bytes: wire })?;
    }
}

/// Blocking receive that honours an optional stop flag and an optional
/// stall watchdog by receiving in short slices. Timeout and close
/// semantics match a plain `receive_timeout` call.
///
/// Once the wait exceeds the watchdog's stall deadline the session is
/// flagged (`SessionCore::note_stalled` emits `SessionStalled` once per
/// episode, the directory entry is marked, and the stalled gauge rises);
/// under [`StallPolicy::Abort`] the receive then fails with
/// [`CoreError::Stalled`]. However the wait ends, a flagged episode
/// lowers the gauge on the way out — bytes arriving, the traversal
/// timeout, or the abort all conclude it.
fn receive_watched(
    conn: &mut dyn Connection,
    timeout: Duration,
    stop: Option<&AtomicBool>,
    watch: Option<&SessionWatch>,
    core: &mut SessionCore,
) -> Result<Vec<u8>> {
    let watchdog = watch.and_then(|w| w.ops.watchdog);
    if stop.is_none() && watchdog.is_none() {
        return Ok(conn.receive_timeout(timeout)?);
    }
    let start = Instant::now();
    let deadline = start + timeout;
    let result = loop {
        if let Some(stop) = stop {
            if stop.load(Ordering::SeqCst) {
                break Err(CoreError::HostStopped);
            }
        }
        let now = Instant::now();
        if let (Some(w), Some(wd)) = (watch, watchdog) {
            let waited = now.saturating_duration_since(start);
            if waited >= wd.stall_after && !core.stall_flagged() {
                let waited_ms = waited.as_millis() as u64;
                if core.note_stalled(waited_ms) {
                    w.ops.directory.mark_stalled(w.id);
                    w.ops.stall_raised();
                }
                if wd.policy == StallPolicy::Abort {
                    break Err(CoreError::Stalled {
                        state: core.current_state().to_owned(),
                        waited_ms,
                    });
                }
            }
        }
        if now >= deadline {
            break Err(CoreError::Net(starlink_net::NetError::Timeout));
        }
        let mut slice = STOP_POLL.min(deadline - now);
        if let Some(wd) = watchdog {
            // Wake in time to flag the stall, not a full poll slice late.
            let stall_at = start + wd.stall_after;
            if stall_at > now {
                slice = slice.min(stall_at - now);
            }
        }
        match conn.receive_timeout(slice) {
            Ok(wire) => break Ok(wire),
            Err(starlink_net::NetError::Timeout) => continue,
            Err(e) => break Err(e.into()),
        }
    };
    if let Some(w) = watch {
        if core.stall_flagged() {
            w.ops.stall_lowered();
        }
    }
    result
}
