//! Blocking driver for the sans-I/O [`SessionCore`]: owns the sockets,
//! executes the core's [`SessionIo`] instructions with blocking calls,
//! and reproduces the behaviour of the original fused engine loop —
//! existing integration tests run against it unchanged through
//! [`crate::Mediator::run_session`] and the thread-per-connection
//! [`crate::MediatorHost`].

use crate::error::CoreError;
use crate::session_core::{
    SessionCore, SessionEvent, SessionIo, SessionOutcome, SessionPersist, SessionSpec,
};
use crate::Result;
use starlink_mtl::TranslationCache;
use starlink_net::{Connection, Endpoint, NetworkEngine};
use starlink_telemetry::SessionTracer;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Mutable per-connection state shared across successive traversals on
/// the same client connection (the translation cache persists so that
/// e.g. photo ids minted in one traversal resolve in the next).
pub(crate) struct ConnectionState {
    pub cache: TranslationCache,
    pub service_conns: HashMap<u8, Box<dyn Connection>>,
    pub host_override: Option<String>,
    /// Recycled wire buffers carried between traversals so composing
    /// stays allocation-free in steady state.
    pub wire_pool: Vec<Vec<u8>>,
    /// Per-connection tracer so successive traversals on one client
    /// connection share a session trace id (minted at accept time by
    /// the host, or lazily by the first traversal).
    pub tracer: Option<SessionTracer>,
}

impl ConnectionState {
    pub(crate) fn new() -> ConnectionState {
        ConnectionState {
            cache: TranslationCache::new(),
            service_conns: HashMap::new(),
            host_override: None,
            wire_pool: Vec::new(),
            tracer: None,
        }
    }
}

/// Granularity at which a stoppable blocking receive re-checks the stop
/// flag, so host shutdown interrupts sessions promptly.
const STOP_POLL: Duration = Duration::from_millis(50);

/// Runs one automaton traversal to completion over blocking I/O.
///
/// `stop` (when given) makes the driver abandon the session promptly on
/// host shutdown instead of sleeping out the full receive timeout.
pub(crate) fn run_blocking(
    spec: &Arc<SessionSpec>,
    net: &NetworkEngine,
    timeout: Duration,
    client_conn: &mut dyn Connection,
    state: &mut ConnectionState,
    stop: Option<&AtomicBool>,
) -> Result<SessionOutcome> {
    let persist = SessionPersist {
        cache: std::mem::replace(&mut state.cache, TranslationCache::new()),
        connected: state.service_conns.keys().copied().collect(),
        host_override: state.host_override.take(),
        wire_pool: std::mem::take(&mut state.wire_pool),
        tracer: state.tracer.take(),
    };
    let mut core = SessionCore::new(spec.clone(), persist)?;
    let result = drive(&mut core, spec, net, timeout, client_conn, state, stop);
    if let Err(err) = &result {
        core.record_failure(err);
    }
    // Persistent state flows back even when the traversal failed — a
    // timeout-and-retry must keep the translation cache.
    let persist = core.into_persist();
    state.cache = persist.cache;
    state.host_override = persist.host_override;
    state.wire_pool = persist.wire_pool;
    state.tracer = persist.tracer;
    result
}

fn drive(
    core: &mut SessionCore,
    spec: &Arc<SessionSpec>,
    net: &NetworkEngine,
    timeout: Duration,
    client_conn: &mut dyn Connection,
    state: &mut ConnectionState,
    stop: Option<&AtomicBool>,
) -> Result<SessionOutcome> {
    let mut ios = core.start()?;
    loop {
        let mut need: Option<u8> = None;
        for io in ios {
            match io {
                SessionIo::Finished(outcome) => return Ok(outcome),
                SessionIo::NeedRecv { color } => need = Some(color),
                SessionIo::SendWire { color, bytes } => {
                    if color == spec.client_color {
                        client_conn.send(&bytes)?;
                    } else {
                        let conn = state.service_conns.get_mut(&color).ok_or_else(|| {
                            CoreError::Aborted {
                                reason: format!("send on color {color} with no connection"),
                            }
                        })?;
                        conn.send(&bytes)?;
                    }
                    core.recycle_wire_buf(bytes);
                }
                SessionIo::ConnectService { color, endpoint } => {
                    let endpoint: Endpoint = endpoint.parse()?;
                    let conn = net.connect(&endpoint)?;
                    state.service_conns.insert(color, conn);
                }
            }
        }
        let Some(color) = need else {
            return Err(CoreError::Aborted {
                reason: "session core yielded without finishing or requesting input".to_owned(),
            });
        };
        let wire = if color == spec.client_color {
            receive_stoppable(client_conn, timeout, stop)?
        } else {
            let conn = state
                .service_conns
                .get_mut(&color)
                .ok_or_else(|| CoreError::Aborted {
                    reason: format!("receive on color {color} before any request was sent"),
                })?;
            receive_stoppable(conn.as_mut(), timeout, stop)?
        };
        ios = core.step(SessionEvent::WireReceived { color, bytes: wire })?;
    }
}

/// Blocking receive that honours an optional stop flag by receiving in
/// short slices. Timeout and close semantics match a plain
/// `receive_timeout` call.
fn receive_stoppable(
    conn: &mut dyn Connection,
    timeout: Duration,
    stop: Option<&AtomicBool>,
) -> Result<Vec<u8>> {
    let Some(stop) = stop else {
        return Ok(conn.receive_timeout(timeout)?);
    };
    let deadline = Instant::now() + timeout;
    loop {
        if stop.load(Ordering::SeqCst) {
            return Err(CoreError::HostStopped);
        }
        let now = Instant::now();
        if now >= deadline {
            return Err(CoreError::Net(starlink_net::NetError::Timeout));
        }
        let slice = STOP_POLL.min(deadline - now);
        match conn.receive_timeout(slice) {
            Ok(wire) => return Ok(wire),
            Err(starlink_net::NetError::Timeout) => continue,
            Err(e) => return Err(e.into()),
        }
    }
}
