//! The automata engine (paper §4.2): executes a (merged) k-colored
//! automaton against live connections.
//!
//! "There are three types of states: i) a receiving state waits to
//! receive a message and will only follow a matching receive transition
//! when a matching message is received; ii) a sending state sends a
//! message described in the single transition; iii) a no-action state is
//! a translation state that translates data from the fields on one or
//! more of the prior messages into the message to be constructed."
//!
//! The engine classifies states by their outgoing transitions, reads and
//! writes wire messages through each color's codec + binding, records
//! every application-level message in the session [`History`] (keyed by
//! the state where it was observed, which is how MTL's state-qualified
//! references resolve), and executes MTL programs at γ-transitions.

use crate::binding::ProtocolBinding;
use crate::error::CoreError;
use crate::Result;
use starlink_automata::{Action, Automaton, Transition};
use starlink_mdl::MessageCodec;
use starlink_message::{AbstractMessage, Direction, History, Value};
use starlink_mtl::{MtlContext, MtlProgram, TranslationCache};
use starlink_net::{Connection, Endpoint, NetworkEngine};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Per-color runtime configuration: how messages of that color reach the
/// network (Fig. 4's `transport/mode/mdl` annotations made executable).
#[derive(Clone)]
pub struct ColorRuntime {
    /// The color this configures.
    pub color: u8,
    /// Binding between application actions and the color's protocol.
    pub binding: ProtocolBinding,
    /// The color's message codec.
    pub codec: Arc<dyn MessageCodec>,
    /// For service-facing colors: the endpoint the mediator connects to.
    /// `None` for the client-facing color (the mediator listens there).
    pub endpoint: Option<Endpoint>,
}

/// What a completed session looked like.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionOutcome {
    /// The accepting state the automaton finished in.
    pub final_state: String,
    /// Application messages received + sent during the session.
    pub exchanges: usize,
}

/// Session-scoped execution of one automaton traversal.
pub(crate) struct Session<'m> {
    pub automaton: &'m Automaton,
    pub client_color: u8,
    pub runtimes: &'m HashMap<u8, ColorRuntime>,
    pub gammas: &'m HashMap<(String, String), MtlProgram>,
    pub templates: &'m HashMap<String, AbstractMessage>,
    pub net: &'m NetworkEngine,
    pub timeout: Duration,
}

/// Mutable per-connection state shared across successive traversals on
/// the same client connection (the translation cache persists so that
/// e.g. photo ids minted in one traversal resolve in the next).
pub(crate) struct ConnectionState {
    pub cache: TranslationCache,
    pub service_conns: HashMap<u8, Box<dyn Connection>>,
    pub host_override: Option<String>,
}

impl ConnectionState {
    pub(crate) fn new() -> ConnectionState {
        ConnectionState {
            cache: TranslationCache::new(),
            service_conns: HashMap::new(),
            host_override: None,
        }
    }
}

impl<'m> Session<'m> {
    /// Runs the automaton once, from initial to a final state.
    pub(crate) fn run(
        &self,
        client_conn: &mut dyn Connection,
        state: &mut ConnectionState,
    ) -> Result<SessionOutcome> {
        let mut current: String = self
            .automaton
            .initial()
            .ok_or_else(|| CoreError::Automaton(
                starlink_automata::AutomatonError::NoInitialState {
                    automaton: self.automaton.name().to_owned(),
                },
            ))?
            .to_owned();
        let mut history = History::new();
        let mut pending: HashMap<String, AbstractMessage> = HashMap::new();
        // Last protocol-level request per color (for reply correlation).
        let mut last_request_proto: HashMap<u8, AbstractMessage> = HashMap::new();
        // Pending application operation per service color.
        let mut pending_op: HashMap<u8, String> = HashMap::new();
        let mut exchanges = 0usize;

        loop {
            let outgoing: Vec<&Transition> =
                self.automaton.transitions_from(&current).collect();
            if outgoing.is_empty() {
                return if self.automaton.is_final(&current) {
                    Ok(SessionOutcome {
                        final_state: current,
                        exchanges,
                    })
                } else {
                    Err(CoreError::Stuck { state: current })
                };
            }
            match &outgoing[0].action {
                Action::Receive(_) => {
                    let color = self.state_color(&current)?;
                    let app = if color == self.client_color {
                        let wire = client_conn.receive_timeout(self.timeout)?;
                        let runtime = self.runtime(color)?;
                        let proto = runtime.codec.parse(&wire)?;
                        let app = runtime.binding.unbind_request(&proto, |action| {
                            self.templates.get(action)
                        })?;
                        last_request_proto.insert(color, proto);
                        app
                    } else {
                        let runtime = self.runtime(color)?;
                        let conn = state.service_conns.get_mut(&color).ok_or_else(|| {
                            CoreError::Aborted {
                                reason: format!(
                                    "receive on color {color} before any request was sent"
                                ),
                            }
                        })?;
                        let wire = conn.receive_timeout(self.timeout)?;
                        let proto = runtime.codec.parse(&wire)?;
                        let op = pending_op.get(&color).cloned().unwrap_or_default();
                        let template = self.templates.get(&format!("{op}.reply"));
                        runtime.binding.unbind_reply(&proto, &op, template)?
                    };
                    // Match against the expected receive transitions.
                    let matching = outgoing.iter().find(|t| {
                        t.action
                            .message()
                            .map(|m| m.name() == app.name())
                            .unwrap_or(false)
                    });
                    let t = matching.ok_or_else(|| CoreError::UnexpectedMessage {
                        state: current.clone(),
                        received: app.name().to_owned(),
                        expected: outgoing.iter().map(|t| t.action.label()).collect(),
                    })?;
                    history.record(t.to.clone(), Direction::Received, app);
                    exchanges += 1;
                    current = t.to.clone();
                }
                Action::Gamma { .. } => {
                    let t = outgoing[0];
                    let program = self
                        .gammas
                        .get(&(t.from.clone(), t.to.clone()))
                        .cloned()
                        .unwrap_or_else(MtlProgram::empty);
                    let mut ctx = MtlContext::new(&history, &mut state.cache);
                    // Pre-register the message the next send will need,
                    // composed at the γ's target state.
                    if let Some(send_template) = self.next_send_template(&t.to) {
                        ctx.add_output(
                            t.to.clone(),
                            AbstractMessage::new(send_template.name()),
                        );
                    }
                    program.execute(&mut ctx)?;
                    if let Some(host) = ctx.host_override() {
                        state.host_override = Some(host.to_owned());
                    }
                    if let Some(msg) = ctx.take_output(&t.to) {
                        pending.insert(t.to.clone(), msg);
                    }
                    current = t.to.clone();
                }
                Action::Send(_) => {
                    let t = outgoing[0];
                    let template =
                        t.action.message().expect("send actions carry a message");
                    let mut app = pending
                        .remove(&current)
                        .unwrap_or_else(|| AbstractMessage::new(template.name()));
                    app.set_name(template.name());
                    let color = self.state_color(&current)?;
                    let runtime = self.runtime(color)?;
                    if color == self.client_color {
                        // Reply to the client.
                        let proto = runtime
                            .binding
                            .bind_reply(&app, last_request_proto.get(&color))?;
                        let wire = runtime.codec.compose(&proto)?;
                        client_conn.send(&wire)?;
                    } else {
                        // Request to a service.
                        let mut proto = runtime.binding.bind_request(&app)?;
                        if let Some(corr) = &runtime.binding.correlation {
                            if proto.get_path(corr).is_err() {
                                proto.set_path(corr, Value::UInt(exchanges as u64 + 1))?;
                            }
                        }
                        let wire = runtime.codec.compose(&proto)?;
                        self.service_conn(color, state)?.send(&wire)?;
                        last_request_proto.insert(color, proto);
                        pending_op.insert(color, app.name().to_owned());
                    }
                    history.record(current.clone(), Direction::Sent, app);
                    exchanges += 1;
                    current = t.to.clone();
                }
            }
        }
    }

    fn runtime(&self, color: u8) -> Result<&ColorRuntime> {
        self.runtimes
            .get(&color)
            .ok_or_else(|| CoreError::NotRegistered {
                kind: "color runtime",
                name: color.to_string(),
            })
    }

    /// The color that drives network activity at a state (single-colored
    /// states only; bi-colored states carry γ-transitions, which touch no
    /// network).
    fn state_color(&self, state_id: &str) -> Result<u8> {
        let state =
            self.automaton
                .state(state_id)
                .ok_or_else(|| CoreError::Automaton(
                    starlink_automata::AutomatonError::UnknownState {
                        automaton: self.automaton.name().to_owned(),
                        state: state_id.to_owned(),
                    },
                ))?;
        Ok(state.colors[0])
    }

    /// The message template of the send transition leaving `state`, if
    /// the state is a sending state.
    fn next_send_template(&self, state: &str) -> Option<&AbstractMessage> {
        self.automaton
            .transitions_from(state)
            .find_map(|t| match &t.action {
                Action::Send(m) => Some(m),
                _ => None,
            })
    }

    /// Connects (lazily) to the service endpoint of a color, honoring a
    /// `sethost` override issued earlier in the session.
    fn service_conn<'c>(
        &self,
        color: u8,
        state: &'c mut ConnectionState,
    ) -> Result<&'c mut Box<dyn Connection>> {
        if !state.service_conns.contains_key(&color) {
            let runtime = self.runtime(color)?;
            let endpoint = match (&state.host_override, &runtime.endpoint) {
                (Some(host), _) => host.parse::<Endpoint>()?,
                (None, Some(ep)) => ep.clone(),
                (None, None) => {
                    return Err(CoreError::Binding {
                        message: format!("color {color} has no service endpoint"),
                    })
                }
            };
            let conn = self.net.connect(&endpoint)?;
            state.service_conns.insert(color, conn);
        }
        Ok(state
            .service_conns
            .get_mut(&color)
            .expect("inserted above"))
    }
}
