//! Per-color runtime configuration for deployed mediators.
//!
//! The automata engine itself lives in [`crate::session_core`] as a
//! pure, I/O-free state machine; the blocking execution path that used
//! to be fused into this module is now the driver in `driver.rs`. What
//! remains here is the deployment-facing configuration type: how each
//! color of the merged automaton reaches the network (Fig. 4's
//! `transport/mode/mdl` annotations made executable).

use crate::binding::ProtocolBinding;
use starlink_mdl::MessageCodec;
use starlink_net::Endpoint;
use std::sync::Arc;

/// Per-color runtime configuration: how messages of that color reach the
/// network (Fig. 4's `transport/mode/mdl` annotations made executable).
#[derive(Clone)]
pub struct ColorRuntime {
    /// The color this configures.
    pub color: u8,
    /// Binding between application actions and the color's protocol.
    pub binding: ProtocolBinding,
    /// The color's message codec.
    pub codec: Arc<dyn MessageCodec>,
    /// For service-facing colors: the endpoint the mediator connects to.
    /// `None` for the client-facing color (the mediator listens there).
    pub endpoint: Option<Endpoint>,
}
