//! Application endpoints: executors for one side of an
//! application-middleware automaton (paper §4.3).
//!
//! The case study's "hand developed test standalone client applications
//! in SOAP and XML-RPC" (§5.1) are built on [`RpcClient`]; the simulated
//! Flickr/Picasa services on [`RpcServer`]. Both speak *application*
//! messages and let the binding + codec layers produce the wire form, so
//! the same application code runs over any bound protocol.

use crate::binding::ProtocolBinding;
use crate::error::CoreError;
use crate::monitor::ProtocolMonitor;
use crate::Result;
use starlink_mdl::MessageCodec;
use starlink_message::{AbstractMessage, Value};
use starlink_net::{Connection, Endpoint, Listener, NetworkEngine};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The application-level interface of a service: request and reply
/// templates per operation (field names and mandatory flags — values are
/// ignored). Positional parameter rules need these to name parameters.
#[derive(Debug, Clone, Default)]
pub struct ServiceInterface {
    ops: Vec<(AbstractMessage, AbstractMessage)>,
}

impl ServiceInterface {
    /// An empty interface.
    pub fn new() -> ServiceInterface {
        ServiceInterface::default()
    }

    /// Adds an operation (request template, reply template).
    pub fn add_operation(
        &mut self,
        request: AbstractMessage,
        reply: AbstractMessage,
    ) -> &mut ServiceInterface {
        self.ops.push((request, reply));
        self
    }

    /// Builder-style [`ServiceInterface::add_operation`].
    #[must_use]
    pub fn with_operation(
        mut self,
        request: AbstractMessage,
        reply: AbstractMessage,
    ) -> ServiceInterface {
        self.ops.push((request, reply));
        self
    }

    /// Request template for an action label.
    pub fn request_template(&self, action: &str) -> Option<&AbstractMessage> {
        self.ops
            .iter()
            .find(|(req, _)| req.name() == action)
            .map(|(req, _)| req)
    }

    /// Reply template for an action label.
    pub fn reply_template(&self, action: &str) -> Option<&AbstractMessage> {
        self.ops
            .iter()
            .find(|(req, _)| req.name() == action)
            .map(|(_, rep)| rep)
    }

    /// All operations.
    pub fn operations(&self) -> &[(AbstractMessage, AbstractMessage)] {
        &self.ops
    }
}

/// A synchronous RPC client bound to one protocol.
pub struct RpcClient {
    connection: Box<dyn Connection>,
    codec: Arc<dyn MessageCodec>,
    binding: ProtocolBinding,
    interface: ServiceInterface,
    next_correlation: u64,
    monitor: Option<ProtocolMonitor>,
    /// Receive timeout for replies.
    pub timeout: Duration,
}

impl RpcClient {
    /// Connects to a service endpoint.
    ///
    /// # Errors
    ///
    /// Network connect failures.
    pub fn connect(
        engine: &NetworkEngine,
        endpoint: &Endpoint,
        codec: Arc<dyn MessageCodec>,
        binding: ProtocolBinding,
        interface: ServiceInterface,
    ) -> Result<RpcClient> {
        let connection = engine.connect(endpoint)?;
        Ok(RpcClient {
            connection,
            codec,
            binding,
            interface,
            next_correlation: 1,
            monitor: None,
            timeout: Duration::from_secs(10),
        })
    }

    /// Wraps an existing connection (testing, custom transports).
    pub fn over(
        connection: Box<dyn Connection>,
        codec: Arc<dyn MessageCodec>,
        binding: ProtocolBinding,
        interface: ServiceInterface,
    ) -> RpcClient {
        RpcClient {
            connection,
            codec,
            binding,
            interface,
            next_correlation: 1,
            monitor: None,
            timeout: Duration::from_secs(10),
        }
    }

    /// Attaches a usage-protocol monitor: every `call` first checks that
    /// the invocation conforms to the protocol (paper §3.1's ordered call
    /// graph) and fails *before* sending a non-conforming request.
    #[must_use]
    pub fn with_monitor(mut self, monitor: ProtocolMonitor) -> RpcClient {
        self.monitor = Some(monitor);
        self
    }

    /// The attached monitor, if any.
    pub fn monitor(&self) -> Option<&ProtocolMonitor> {
        self.monitor.as_ref()
    }

    /// Invokes an operation: binds, composes, sends, receives, parses,
    /// unbinds.
    ///
    /// # Errors
    ///
    /// Binding, codec, or network failures; [`CoreError::Aborted`] when
    /// the service signalled a fault.
    pub fn call(&mut self, request: &AbstractMessage) -> Result<AbstractMessage> {
        if let Some(monitor) = &mut self.monitor {
            monitor.observe(starlink_message::Direction::Sent, request.name())?;
        }
        let mut proto = self.binding.bind_request(request)?;
        if let Some(corr) = &self.binding.correlation {
            if proto.get_path(corr).is_err() {
                proto.set_path(corr, Value::UInt(self.next_correlation))?;
            }
            self.next_correlation += 1;
        }
        let wire = self.codec.compose(&proto)?;
        self.connection.send(&wire)?;
        let reply_wire = self.connection.receive_timeout(self.timeout)?;
        let reply_proto = self.codec.parse(&reply_wire)?;
        let template = self.interface.reply_template(request.name());
        let reply = self
            .binding
            .unbind_reply(&reply_proto, request.name(), template)?;
        if let Some(monitor) = &mut self.monitor {
            monitor.observe(starlink_message::Direction::Received, reply.name())?;
        }
        Ok(reply)
    }

    /// The raw protocol-level exchange (benchmarks observing wire sizes).
    ///
    /// # Errors
    ///
    /// Codec or network failures.
    pub fn call_raw(&mut self, proto: &AbstractMessage) -> Result<AbstractMessage> {
        let wire = self.codec.compose(proto)?;
        self.connection.send(&wire)?;
        let reply_wire = self.connection.receive_timeout(self.timeout)?;
        Ok(self.codec.parse(&reply_wire)?)
    }
}

/// The handler a service implements: application request in, application
/// reply out (or a fault string).
pub type ServiceHandler =
    dyn Fn(&AbstractMessage) -> std::result::Result<AbstractMessage, String> + Send + Sync;

/// A synchronous RPC server bound to one protocol. Each accepted
/// connection is served on its own thread until the peer disconnects.
pub struct RpcServer {
    endpoint: Endpoint,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl RpcServer {
    /// Binds and starts serving in background threads.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn serve(
        engine: &NetworkEngine,
        endpoint: &Endpoint,
        codec: Arc<dyn MessageCodec>,
        binding: ProtocolBinding,
        interface: ServiceInterface,
        handler: Arc<ServiceHandler>,
    ) -> Result<RpcServer> {
        let listener = engine.listen(endpoint)?;
        let local = listener.local_endpoint();
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = stop.clone();
        let interface = Arc::new(interface);
        let binding = Arc::new(binding);
        let accept_thread = std::thread::spawn(move || {
            accept_loop(listener, codec, binding, interface, handler, accept_stop);
        });
        Ok(RpcServer {
            endpoint: local,
            stop,
            threads: vec![accept_thread],
        })
    }

    /// The endpoint actually bound (resolved port for `tcp://…:0`).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Requests shutdown. Serving threads exit as their connections
    /// close; this does not forcibly unblock `accept`.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

impl Drop for RpcServer {
    fn drop(&mut self) {
        self.shutdown();
        // Accept threads block on `accept`; they are detached rather than
        // joined so tests and examples exit promptly.
        self.threads.clear();
    }
}

fn accept_loop(
    listener: Box<dyn Listener>,
    codec: Arc<dyn MessageCodec>,
    binding: Arc<ProtocolBinding>,
    interface: Arc<ServiceInterface>,
    handler: Arc<ServiceHandler>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(conn) => {
                let codec = codec.clone();
                let binding = binding.clone();
                let interface = interface.clone();
                let handler = handler.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    serve_connection(conn, codec, binding, interface, handler, stop);
                });
            }
            Err(_) => return,
        }
    }
}

fn serve_connection(
    mut conn: Box<dyn Connection>,
    codec: Arc<dyn MessageCodec>,
    binding: Arc<ProtocolBinding>,
    interface: Arc<ServiceInterface>,
    handler: Arc<ServiceHandler>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::SeqCst) {
        let wire = match conn.receive_timeout(Duration::from_millis(500)) {
            Ok(w) => w,
            Err(starlink_net::NetError::Timeout) => continue,
            Err(_) => return,
        };
        let reply = handle_one(&wire, &codec, &binding, &interface, &handler);
        match reply {
            Ok(reply_wire) => {
                if conn.send(&reply_wire).is_err() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn handle_one(
    wire: &[u8],
    codec: &Arc<dyn MessageCodec>,
    binding: &ProtocolBinding,
    interface: &ServiceInterface,
    handler: &Arc<ServiceHandler>,
) -> Result<Vec<u8>> {
    let proto = codec.parse(wire)?;
    let app_request =
        binding.unbind_request(&proto, |action| interface.request_template(action))?;
    let app_reply = handler(&app_request).map_err(|reason| CoreError::Aborted { reason })?;
    let reply_proto = binding.bind_reply(&app_reply, Some(&proto))?;
    Ok(codec.compose(&reply_proto)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{ActionRule, ParamRule, ReplyAction};
    use starlink_mdl::MdlCodec;

    const CALC_MDL: &str = "\
<Message:CalcRequest>\n\
<Rule:MessageType=0>\n\
<MessageType:8><RequestID:32>\n\
<OperationLength:32><Operation:OperationLength>\n\
<align:64><ParameterArray:eof:valueseq>\n\
<End:Message>\n\
<Message:CalcReply>\n\
<Rule:MessageType=1>\n\
<MessageType:8><RequestID:32>\n\
<align:64><ParameterArray:eof:valueseq>\n\
<End:Message>";

    fn calc_binding() -> ProtocolBinding {
        ProtocolBinding {
            name: "CALC".into(),
            mdl: "Calc.mdl".into(),
            request_message: "CalcRequest".into(),
            reply_message: "CalcReply".into(),
            request_action: ActionRule::Field("Operation".parse().unwrap()),
            reply_action: ReplyAction::Correlated,
            request_params: ParamRule::PositionalArray("ParameterArray".parse().unwrap()),
            reply_params: ParamRule::PositionalArray("ParameterArray".parse().unwrap()),
            correlation: Some("RequestID".parse().unwrap()),
            request_defaults: Vec::new(),
            reply_defaults: Vec::new(),
            request_message_overrides: Vec::new(),
            reply_message_overrides: Vec::new(),
        }
    }

    fn calc_interface() -> ServiceInterface {
        let mut add = AbstractMessage::new("Add");
        add.set_field("x", Value::Null);
        add.set_field("y", Value::Null);
        let mut add_reply = AbstractMessage::new("Add.reply");
        add_reply.set_field("z", Value::Null);
        ServiceInterface::new().with_operation(add, add_reply)
    }

    #[test]
    fn end_to_end_rpc_over_memory_transport() {
        let engine = NetworkEngine::with_defaults();
        let codec: Arc<dyn MessageCodec> =
            Arc::new(MdlCodec::from_text(CALC_MDL).expect("valid spec"));
        let ep = Endpoint::memory("calc");
        let handler: Arc<ServiceHandler> = Arc::new(|req| {
            if req.name() != "Add" {
                return Err(format!("unknown operation {}", req.name()));
            }
            let x = req.get("x").and_then(Value::as_int).ok_or("missing x")?;
            let y = req.get("y").and_then(Value::as_int).ok_or("missing y")?;
            let mut reply = AbstractMessage::new("Add.reply");
            reply.set_field("z", Value::Int(x + y));
            Ok(reply)
        });
        let _server = RpcServer::serve(
            &engine,
            &ep,
            codec.clone(),
            calc_binding(),
            calc_interface(),
            handler,
        )
        .unwrap();

        let mut client =
            RpcClient::connect(&engine, &ep, codec, calc_binding(), calc_interface()).unwrap();
        let mut request = AbstractMessage::new("Add");
        request.set_field("x", Value::Int(30));
        request.set_field("y", Value::Int(12));
        let reply = client.call(&request).unwrap();
        assert_eq!(reply.name(), "Add.reply");
        assert_eq!(reply.get("z").unwrap().as_int(), Some(42));

        // Multiple sequential calls on the same connection work.
        let reply2 = client.call(&request).unwrap();
        assert_eq!(reply2.get("z").unwrap().as_int(), Some(42));
    }

    #[test]
    fn rpc_over_tcp_loopback() {
        let engine = NetworkEngine::with_defaults();
        let codec: Arc<dyn MessageCodec> =
            Arc::new(MdlCodec::from_text(CALC_MDL).expect("valid spec"));
        let ep = Endpoint::tcp("127.0.0.1", 0);
        let handler: Arc<ServiceHandler> = Arc::new(|req| {
            let x = req.get("x").and_then(Value::as_int).unwrap_or(0);
            let y = req.get("y").and_then(Value::as_int).unwrap_or(0);
            let mut reply = AbstractMessage::new("Add.reply");
            reply.set_field("z", Value::Int(x * y));
            Ok(reply)
        });
        let server = RpcServer::serve(
            &engine,
            &ep,
            codec.clone(),
            calc_binding(),
            calc_interface(),
            handler,
        )
        .unwrap();
        let mut client = RpcClient::connect(
            &engine,
            server.endpoint(),
            codec,
            calc_binding(),
            calc_interface(),
        )
        .unwrap();
        let mut request = AbstractMessage::new("Add");
        request.set_field("x", Value::Int(6));
        request.set_field("y", Value::Int(7));
        assert_eq!(
            client.call(&request).unwrap().get("z").unwrap().as_int(),
            Some(42)
        );
    }

    #[test]
    fn handler_fault_closes_exchange() {
        let engine = NetworkEngine::with_defaults();
        let codec: Arc<dyn MessageCodec> =
            Arc::new(MdlCodec::from_text(CALC_MDL).expect("valid spec"));
        let ep = Endpoint::memory("calc-fault");
        let handler: Arc<ServiceHandler> = Arc::new(|_| Err("nope".into()));
        let _server = RpcServer::serve(
            &engine,
            &ep,
            codec.clone(),
            calc_binding(),
            calc_interface(),
            handler,
        )
        .unwrap();
        let mut client =
            RpcClient::connect(&engine, &ep, codec, calc_binding(), calc_interface()).unwrap();
        client.timeout = Duration::from_millis(300);
        let mut request = AbstractMessage::new("Add");
        request.set_field("x", Value::Int(1));
        request.set_field("y", Value::Int(2));
        assert!(client.call(&request).is_err());
    }

    #[test]
    fn interface_lookup() {
        let iface = calc_interface();
        assert!(iface.request_template("Add").is_some());
        assert!(iface.reply_template("Add").is_some());
        assert!(iface.request_template("Sub").is_none());
        assert_eq!(iface.operations().len(), 1);
    }
}
