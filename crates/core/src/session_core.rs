//! Sans-I/O automata engine: the paper's state machine (§4.2) with the
//! sockets cut away.
//!
//! "There are three types of states: i) a receiving state waits to
//! receive a message and will only follow a matching receive transition
//! when a matching message is received; ii) a sending state sends a
//! message described in the single transition; iii) a no-action state is
//! a translation state that translates data from the fields on one or
//! more of the prior messages into the message to be constructed."
//!
//! [`SessionCore`] executes exactly that — classifying states, applying
//! binding rules at the edges (parse→unbind on receive, bind→compose on
//! send), recording the session [`History`], and running MTL programs at
//! γ-transitions — but performs no I/O. It consumes [`SessionEvent`]s
//! (wire bytes arrived, or time passed) and emits [`SessionIo`]
//! instructions (read this color, write these bytes, connect to this
//! endpoint, traversal finished) for a driver to carry out. Two drivers
//! exist: the blocking driver behind [`crate::Mediator::run_session`]
//! reproducing the original thread-per-connection engine, and the
//! multiplexed [`crate::MediatorHost`] interleaving many sessions over a
//! bounded worker pool. Deterministic replay tests drive the core with
//! scripted bytes and no sockets at all.
//!
//! This module deliberately has **zero dependencies on `starlink_net`**:
//! endpoints travel as strings, connections as color numbers.

use crate::binding::ProtocolBinding;
use crate::error::CoreError;
use crate::Result;
use starlink_automata::{Action, Automaton, Transition};
use starlink_mdl::MessageCodec;
use starlink_message::{AbstractMessage, Direction, History, Value};
use starlink_mtl::{MtlContext, MtlProgram, TranslationCache};
use starlink_telemetry::{
    SessionTracer, SpanGuard, SpanScopedSink, TelemetrySink, TraceEvent, TransitionKind,
};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Per-color protocol configuration as the sans-I/O core sees it: how to
/// read/write that color's wire format and (for service colors) where
/// the service lives — as a string, since the core never touches the
/// network itself.
#[derive(Clone)]
pub struct ColorConfig {
    /// Binding between application actions and the color's protocol.
    pub binding: ProtocolBinding,
    /// The color's message codec.
    pub codec: Arc<dyn MessageCodec>,
    /// For service-facing colors: the endpoint the driver should connect
    /// to (e.g. `"memory://plus-service"`). `None` for the client-facing
    /// color.
    pub endpoint: Option<String>,
}

/// Everything a session needs that outlives any single traversal:
/// the merged automaton, per-color protocol configurations, pre-parsed
/// γ-programs and message templates. Shared (via [`Arc`]) by every
/// concurrent session a host runs.
pub struct SessionSpec {
    /// The merged k-colored automaton to execute.
    pub automaton: Arc<Automaton>,
    /// The color whose peer is the mediator's client.
    pub client_color: u8,
    /// Per-color protocol configuration.
    pub colors: HashMap<u8, ColorConfig>,
    /// Pre-parsed MTL program per γ-transition `(from, to)`.
    pub gammas: HashMap<(String, String), MtlProgram>,
    /// Application message templates by message name.
    pub templates: HashMap<String, AbstractMessage>,
    /// Where the engine reports trace events. Injected explicitly (the
    /// engine never discovers a sink ambiently); defaults to
    /// [`starlink_telemetry::NoopSink`] via [`Mediator::new`][crate::Mediator::new],
    /// whose disabled fast path keeps instrumentation cost negligible.
    pub telemetry: Arc<dyn TelemetrySink>,
}

/// What a completed session looked like.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionOutcome {
    /// The accepting state the automaton finished in.
    pub final_state: String,
    /// Application messages received + sent during the session.
    pub exchanges: usize,
}

/// An input to [`SessionCore::step`].
#[derive(Debug, Clone)]
pub enum SessionEvent {
    /// Wire bytes arrived on the connection of `color` (the one the
    /// core most recently asked for via [`SessionIo::NeedRecv`]).
    WireReceived {
        /// Color the bytes arrived on.
        color: u8,
        /// One whole framed protocol message.
        bytes: Vec<u8>,
    },
    /// The driver's receive deadline expired. The core abandons the
    /// current traversal and restarts from the initial state (the
    /// connection-scoped translation cache survives), mirroring the
    /// original engine's behaviour of re-running the automaton after a
    /// timeout.
    Tick,
}

/// An instruction emitted by the core for its driver to execute.
#[derive(Debug)]
pub enum SessionIo {
    /// Wait for one framed message on `color`'s connection, then feed it
    /// back via [`SessionEvent::WireReceived`] (or [`SessionEvent::Tick`]
    /// on timeout).
    NeedRecv {
        /// Color to read.
        color: u8,
    },
    /// Write these bytes to `color`'s connection.
    SendWire {
        /// Color to write to.
        color: u8,
        /// Framed protocol message.
        bytes: Vec<u8>,
    },
    /// Open a connection for `color` to `endpoint` before the following
    /// [`SessionIo::SendWire`] for that color. Emitted at most once per
    /// color per connection (honouring a `sethost` override issued by an
    /// MTL program earlier in the session).
    ConnectService {
        /// Service color to connect.
        color: u8,
        /// Endpoint text (e.g. `"tcp://127.0.0.1:9050"`).
        endpoint: String,
    },
    /// The traversal reached an accepting state. The driver may start a
    /// fresh traversal on the same connection via [`SessionCore::restart`].
    Finished(SessionOutcome),
}

/// Session state that persists across traversals on one client
/// connection: the translation cache (photo ids minted in one traversal
/// resolve in the next), which service colors already have connections,
/// and a `sethost` override.
#[derive(Default)]
pub struct SessionPersist {
    /// MTL `cache`/`getcache` storage.
    pub cache: TranslationCache,
    /// Service colors the driver already holds connections for.
    pub connected: HashSet<u8>,
    /// `sethost` override for subsequent service connections.
    pub host_override: Option<String>,
    /// Recycled wire buffers: [`SessionIo::SendWire`] bytes come from
    /// here (composed in place via `compose_into`) and drivers return
    /// them with [`SessionCore::recycle_wire_buf`] after writing, so
    /// steady-state sends reuse capacity instead of allocating.
    pub wire_pool: Vec<Vec<u8>>,
    /// Per-session trace context. Minted by drivers at accept time (or
    /// lazily by [`SessionCore::new`]) when the sink consumes spans or
    /// message snapshots; `None` for purely aggregate sinks, keeping
    /// their per-event cost unchanged. Lives here so successive
    /// traversals on a kept-alive connection share one session trace id.
    pub tracer: Option<SessionTracer>,
}

impl SessionPersist {
    /// Fresh state for a new client connection.
    pub fn new() -> SessionPersist {
        SessionPersist::default()
    }
}

/// One automaton traversal as a pure state machine.
///
/// Create with [`SessionCore::new`], kick off with [`SessionCore::start`],
/// then alternate: execute the returned [`SessionIo`]s, feed the next
/// [`SessionEvent`] to [`SessionCore::step`]. The core never blocks and
/// never touches a socket.
pub struct SessionCore {
    spec: Arc<SessionSpec>,
    persist: SessionPersist,
    current: String,
    /// Color the core is waiting to receive on, if any.
    awaiting: Option<u8>,
    started: bool,
    finished: bool,
    history: History,
    pending: HashMap<String, AbstractMessage>,
    /// Last protocol-level request per color (for reply correlation).
    last_request_proto: HashMap<u8, AbstractMessage>,
    /// Pending application operation per service color.
    pending_op: HashMap<u8, String>,
    exchanges: usize,
    /// The traversal's root tracing span (open from start/restart until
    /// the traversal finishes, fails, or is abandoned).
    root_span: Option<SpanGuard>,
    /// When the traversal entered `current`. Only stamped while a sink
    /// is installed (the no-op path never reads the clock); powers the
    /// per-state dwell histogram.
    state_entered: Option<Instant>,
    /// Whether a stall watchdog has flagged the current await. Cleared
    /// when bytes arrive or the traversal restarts, so a session that
    /// recovers and stalls again is flagged (and counted) again.
    stall_flagged: bool,
}

impl SessionCore {
    /// Creates a core at the automaton's initial state.
    ///
    /// # Errors
    ///
    /// [`CoreError::Automaton`] if the automaton has no initial state.
    pub fn new(spec: Arc<SessionSpec>, mut persist: SessionPersist) -> Result<SessionCore> {
        let initial = spec
            .automaton
            .initial()
            .ok_or_else(|| {
                CoreError::Automaton(starlink_automata::AutomatonError::NoInitialState {
                    automaton: spec.automaton.name().to_owned(),
                })
            })?
            .to_owned();
        if persist.tracer.is_none() {
            // Drivers normally mint the tracer at accept time; cover
            // direct/embedded use here so replay tests trace too.
            persist.tracer = SessionTracer::for_sink(spec.telemetry.as_ref());
        }
        Ok(SessionCore {
            spec,
            persist,
            current: initial,
            awaiting: None,
            started: false,
            finished: false,
            history: History::new(),
            pending: HashMap::new(),
            last_request_proto: HashMap::new(),
            pending_op: HashMap::new(),
            exchanges: 0,
            root_span: None,
            state_entered: None,
            stall_flagged: false,
        })
    }

    /// Begins the traversal: advances through sending and no-action
    /// states until the core needs input ([`SessionIo::NeedRecv`]) or
    /// finishes.
    ///
    /// # Errors
    ///
    /// Any engine failure (binding, codec, MTL, stuck automaton).
    pub fn start(&mut self) -> Result<Vec<SessionIo>> {
        if self.started {
            return Err(CoreError::UnexpectedEvent {
                detail: "start() called on a running session".to_owned(),
            });
        }
        self.started = true;
        self.state_entered = self.spec.telemetry.enabled().then(Instant::now);
        self.root_span = self.open_span("session");
        self.emit(&TraceEvent::SessionStarted);
        let mut ios = Vec::new();
        self.advance(&mut ios)?;
        Ok(ios)
    }

    /// Abandons the finished (or timed-out) traversal and begins a new
    /// one on the same connection, keeping persistent state. Each
    /// traversal forms its own root span (sharing the connection's
    /// session trace id); an abandoned traversal's trace completes here.
    ///
    /// # Errors
    ///
    /// Any engine failure while advancing the fresh traversal.
    pub fn restart(&mut self) -> Result<Vec<SessionIo>> {
        self.close_root();
        self.reset_traversal();
        self.root_span = self.open_span("session");
        self.emit(&TraceEvent::SessionStarted);
        let mut ios = Vec::new();
        self.advance(&mut ios)?;
        Ok(ios)
    }

    /// Feeds one event and returns the instructions it unlocks.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnexpectedEvent`] when the event does not match what
    /// the core asked for; otherwise any engine failure.
    pub fn step(&mut self, event: SessionEvent) -> Result<Vec<SessionIo>> {
        if !self.started {
            return Err(CoreError::UnexpectedEvent {
                detail: "step() before start()".to_owned(),
            });
        }
        match event {
            SessionEvent::WireReceived { color, bytes } => {
                if self.finished {
                    return Err(CoreError::UnexpectedEvent {
                        detail: "wire bytes after the traversal finished".to_owned(),
                    });
                }
                match self.awaiting {
                    Some(expected) if expected == color => {}
                    Some(expected) => {
                        return Err(CoreError::UnexpectedEvent {
                            detail: format!(
                                "wire bytes on color {color} while waiting on color {expected}"
                            ),
                        })
                    }
                    None => {
                        return Err(CoreError::UnexpectedEvent {
                            detail: format!("unsolicited wire bytes on color {color}"),
                        })
                    }
                }
                self.awaiting = None;
                self.stall_flagged = false;
                let mut ios = Vec::new();
                let span = self.open_span("receive");
                let received = self.consume_wire(color, &bytes);
                self.close_span(span);
                received?;
                self.advance(&mut ios)?;
                Ok(ios)
            }
            SessionEvent::Tick => self.restart(),
        }
    }

    /// Whether the current traversal reached an accepting state.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// The state the traversal is currently at.
    pub fn current_state(&self) -> &str {
        &self.current
    }

    /// Hands back the connection-scoped persistent state.
    pub fn into_persist(self) -> SessionPersist {
        self.persist
    }

    /// The session's trace id, when tracing is active.
    pub fn trace_id(&self) -> Option<starlink_telemetry::SessionTraceId> {
        self.persist.tracer.as_ref().map(SessionTracer::session)
    }

    /// Records one event — through the tracer (stamping session id,
    /// timestamp and span) when tracing is active, plainly otherwise.
    fn emit(&self, event: &TraceEvent<'_>) {
        match &self.persist.tracer {
            Some(tracer) => tracer.record(self.spec.telemetry.as_ref(), event),
            None => self.spec.telemetry.record(event),
        }
    }

    fn open_span(&self, name: &'static str) -> Option<SpanGuard> {
        self.persist
            .tracer
            .as_ref()
            .filter(|_| self.spec.telemetry.wants_spans())
            .map(|t| t.open(self.spec.telemetry.as_ref(), name))
    }

    fn close_span(&self, guard: Option<SpanGuard>) {
        if let (Some(tracer), Some(guard)) = (&self.persist.tracer, guard) {
            tracer.close(self.spec.telemetry.as_ref(), guard);
        }
    }

    /// Closes the traversal's root span, completing its trace in any
    /// span-retaining sink.
    fn close_root(&mut self) {
        let guard = self.root_span.take();
        self.close_span(guard);
    }

    /// Reports a traversal failure and completes the trace. Filters the
    /// outcomes that are part of normal operation: receive timeouts
    /// restart the traversal, a closed connection is how clients hang
    /// up, and [`CoreError::HostStopped`] is orderly shutdown.
    pub(crate) fn record_failure(&mut self, err: &CoreError) {
        if !err.is_orderly_end() {
            self.emit(&TraceEvent::SessionFailed {
                stage: err.stage_label(),
            });
        }
        self.close_root();
    }

    /// Ends tracing for a session being dropped without a result (e.g.
    /// its connection died while parked), so its partial trace completes
    /// instead of lingering as an active session.
    pub(crate) fn abandon(&mut self) {
        self.close_root();
    }

    /// Captures an abstract message crossing the mediator as a
    /// [`TraceEvent::MessageSnapshot`]. Callers gate on
    /// [`TelemetrySink::wants_messages`] — rendering fields is the most
    /// expensive instrumentation the engine performs.
    fn snapshot_message(&self, stage: &'static str, msg: &AbstractMessage) {
        let Some(tracer) = &self.persist.tracer else {
            return;
        };
        let mut fields = String::new();
        for field in msg.fields() {
            let value = field.value().to_string();
            let _ = writeln!(
                fields,
                "{}={}",
                field.label(),
                // One `label=value` pair per line; keep embedded
                // newlines from forging extra pairs.
                value.replace('\n', "\\n")
            );
        }
        tracer.record(
            self.spec.telemetry.as_ref(),
            &TraceEvent::MessageSnapshot {
                stage,
                message: msg.name(),
                fields: &fields,
            },
        );
    }

    /// Returns a cleared wire buffer from the session's recycle pool, or
    /// a fresh one when the pool is empty.
    fn take_wire_buf(&mut self) -> Vec<u8> {
        match self.persist.wire_pool.pop() {
            Some(buf) => {
                self.emit(&TraceEvent::WireBufReused);
                buf
            }
            None => {
                self.emit(&TraceEvent::WireBufAllocated);
                Vec::new()
            }
        }
    }

    /// Returns a [`SessionIo::SendWire`] buffer to the recycle pool once
    /// the driver has written it, so the next compose reuses its
    /// capacity. The pool is bounded; surplus buffers are dropped.
    pub fn recycle_wire_buf(&mut self, mut buf: Vec<u8>) {
        const MAX_POOLED: usize = 4;
        if self.persist.wire_pool.len() < MAX_POOLED {
            buf.clear();
            self.persist.wire_pool.push(buf);
        }
    }

    fn reset_traversal(&mut self) {
        self.current = self
            .spec
            .automaton
            .initial()
            .expect("validated at construction")
            .to_owned();
        self.awaiting = None;
        self.started = true;
        self.finished = false;
        self.history = History::new();
        self.pending.clear();
        self.last_request_proto.clear();
        self.pending_op.clear();
        self.exchanges = 0;
        self.state_entered = self.spec.telemetry.enabled().then(Instant::now);
        self.stall_flagged = false;
    }

    /// Emits the dwell time of the state being exited and restamps the
    /// entry clock. No-op unless a sink stamped `state_entered`.
    fn note_dwell(&mut self) {
        if let Some(entered) = self.state_entered {
            self.emit(&TraceEvent::StateDwell {
                state: &self.current,
                nanos: entered.elapsed().as_nanos() as u64,
            });
            self.state_entered = Some(Instant::now());
        }
    }

    /// Called by a stall watchdog: flags the current await as stalled
    /// and emits [`TraceEvent::SessionStalled`] — once per stall episode
    /// (the flag clears when bytes arrive or the traversal restarts).
    /// Returns whether this call newly flagged the session, so callers
    /// can maintain a stalled-session count.
    pub(crate) fn note_stalled(&mut self, waited_ms: u64) -> bool {
        if self.stall_flagged {
            return false;
        }
        self.stall_flagged = true;
        let state = self.current.clone();
        self.emit(&TraceEvent::SessionStalled {
            state: &state,
            waited_ms,
        });
        true
    }

    /// Whether a watchdog has flagged the current await as stalled.
    pub(crate) fn stall_flagged(&self) -> bool {
        self.stall_flagged
    }

    /// Parses + unbinds an incoming wire message, matches it against the
    /// expected receive transitions, and records it in the history.
    fn consume_wire(&mut self, color: u8, wire: &[u8]) -> Result<()> {
        // Local handle so borrows of the spec don't pin `self`.
        let spec = Arc::clone(&self.spec);
        let cfg = color_config(&spec, color)?;
        let traced = spec.telemetry.enabled();
        if traced {
            self.emit(&TraceEvent::WireIn {
                color,
                bytes: wire.len(),
            });
        }
        let parse_start = traced.then(Instant::now);
        let proto = match &self.persist.tracer {
            // Through a span-scoped sink so dispatch-probe events carry
            // the session's causal metadata.
            Some(tracer) => {
                let scoped = SpanScopedSink::new(tracer, spec.telemetry.as_ref());
                cfg.codec.parse_with_sink(wire, &scoped)?
            }
            None => cfg.codec.parse(wire)?,
        };
        if let Some(start) = parse_start {
            self.emit(&TraceEvent::Parse {
                variant: proto.name(),
                wire_bytes: wire.len(),
                nanos: start.elapsed().as_nanos() as u64,
            });
        }
        let app = if color == spec.client_color {
            let app = cfg
                .binding
                .unbind_request(&proto, |action| spec.templates.get(action))?;
            self.last_request_proto.insert(color, proto);
            app
        } else {
            let op = self.pending_op.get(&color).cloned().unwrap_or_default();
            let template = spec.templates.get(&format!("{op}.reply"));
            cfg.binding.unbind_reply(&proto, &op, template)?
        };
        if traced && spec.telemetry.wants_messages() {
            self.snapshot_message("received", &app);
        }
        let outgoing: Vec<&Transition> = spec.automaton.transitions_from(&self.current).collect();
        let matching = outgoing.iter().find(|t| {
            t.action
                .message()
                .map(|m| m.name() == app.name())
                .unwrap_or(false)
        });
        let t = matching.ok_or_else(|| CoreError::UnexpectedMessage {
            state: self.current.clone(),
            received: app.name().to_owned(),
            expected: outgoing.iter().map(|t| t.action.label()).collect(),
        })?;
        let to = t.to.clone();
        if traced {
            self.emit(&TraceEvent::Transition {
                from: &self.current,
                to: &to,
                kind: TransitionKind::Receive,
                color,
            });
        }
        self.history.record(to.clone(), Direction::Received, app);
        self.exchanges += 1;
        self.note_dwell();
        self.current = to;
        Ok(())
    }

    /// Advances through sending and no-action states until input is
    /// needed or the traversal ends, appending instructions to `ios`.
    fn advance(&mut self, ios: &mut Vec<SessionIo>) -> Result<()> {
        // Local handle so borrows of the spec don't pin `self`.
        let spec = Arc::clone(&self.spec);
        let traced = spec.telemetry.enabled();
        loop {
            let outgoing: Vec<&Transition> =
                spec.automaton.transitions_from(&self.current).collect();
            if outgoing.is_empty() {
                if spec.automaton.is_final(&self.current) {
                    self.finished = true;
                    // Emitted before the driver executes any sends still
                    // in `ios`, so the completion counter is ahead of the
                    // final reply reaching the wire (docs/engine.md).
                    self.emit(&TraceEvent::SessionFinished {
                        final_state: &self.current,
                        exchanges: self.exchanges,
                    });
                    self.close_root();
                    ios.push(SessionIo::Finished(SessionOutcome {
                        final_state: self.current.clone(),
                        exchanges: self.exchanges,
                    }));
                    return Ok(());
                }
                return Err(CoreError::Stuck {
                    state: self.current.clone(),
                });
            }
            match &outgoing[0].action {
                Action::Receive(_) => {
                    let color = state_color(&spec.automaton, &self.current)?;
                    if color != spec.client_color && !self.persist.connected.contains(&color) {
                        return Err(CoreError::Aborted {
                            reason: format!("receive on color {color} before any request was sent"),
                        });
                    }
                    self.awaiting = Some(color);
                    ios.push(SessionIo::NeedRecv { color });
                    return Ok(());
                }
                Action::Gamma { .. } => {
                    let t = outgoing[0];
                    let to = t.to.clone();
                    let from = t.from.clone();
                    let span = self.open_span("gamma");
                    let executed = self.gamma_step(&spec, &from, &to, traced);
                    self.close_span(span);
                    executed?;
                    self.note_dwell();
                    self.current = to;
                }
                Action::Send(_) => {
                    let t = outgoing[0];
                    let span = self.open_span("send");
                    let sent = self.send_step(&spec, t, traced, ios);
                    self.close_span(span);
                    let next = sent?;
                    self.note_dwell();
                    self.current = next;
                }
            }
        }
    }

    /// Runs one γ-transition `from → to`: executes its MTL program over
    /// the session history, honouring `sethost` overrides and parking
    /// the produced message for the next send. The caller advances
    /// `self.current` on success.
    fn gamma_step(
        &mut self,
        spec: &Arc<SessionSpec>,
        from: &str,
        to: &str,
        traced: bool,
    ) -> Result<()> {
        let snapshot_messages = traced && spec.telemetry.wants_messages();
        if snapshot_messages {
            // The message the γ translates *from* is the most recently
            // observed one.
            if let Some(entry) = self.history.last() {
                self.snapshot_message("pre-gamma", &entry.message);
            }
        }
        let program = spec
            .gammas
            .get(&(from.to_owned(), to.to_owned()))
            .cloned()
            .unwrap_or_else(MtlProgram::empty);
        let gamma_start = traced.then(Instant::now);
        let (executed, host, output) = {
            let mut ctx = MtlContext::new(&self.history, &mut self.persist.cache);
            // Pre-register the message the next send will need, composed
            // at the γ's target state.
            if let Some(send_template) = next_send_template(&spec.automaton, to) {
                ctx.add_output(to.to_owned(), AbstractMessage::new(send_template.name()));
            }
            let executed = match &self.persist.tracer {
                // Through a span-scoped sink so the interpreter's
                // `Translate` events land inside the gamma span.
                Some(tracer) => {
                    let scoped = SpanScopedSink::new(tracer, spec.telemetry.as_ref());
                    program.execute_traced(&mut ctx, &scoped)
                }
                None => program.execute_traced(&mut ctx, spec.telemetry.as_ref()),
            };
            let host = ctx.host_override().map(str::to_owned);
            let output = ctx.take_output(to);
            (executed, host, output)
        };
        executed?;
        if let Some(start) = gamma_start {
            self.emit(&TraceEvent::GammaExecuted {
                from,
                to,
                statements: program.statements.len(),
                nanos: start.elapsed().as_nanos() as u64,
            });
            self.emit(&TraceEvent::Transition {
                from,
                to,
                kind: TransitionKind::Gamma,
                color: state_color(&spec.automaton, from).unwrap_or(0),
            });
        }
        if let Some(host) = host {
            self.persist.host_override = Some(host);
        }
        if let Some(msg) = output {
            if snapshot_messages {
                self.snapshot_message("post-gamma", &msg);
            }
            self.pending.insert(to.to_owned(), msg);
        }
        Ok(())
    }

    /// Executes one send transition out of `self.current`, appending the
    /// connect/send instructions to `ios`. Returns the target state; the
    /// caller advances `self.current` on success.
    fn send_step(
        &mut self,
        spec: &Arc<SessionSpec>,
        t: &Transition,
        traced: bool,
        ios: &mut Vec<SessionIo>,
    ) -> Result<String> {
        let template = t.action.message().expect("send actions carry a message");
        let mut app = self
            .pending
            .remove(&self.current)
            .unwrap_or_else(|| AbstractMessage::new(template.name()));
        app.set_name(template.name());
        if traced && spec.telemetry.wants_messages() {
            self.snapshot_message("sent", &app);
        }
        let color = state_color(&spec.automaton, &self.current)?;
        let cfg = color_config(spec, color)?;
        if color == spec.client_color {
            // Reply to the client.
            let proto = cfg
                .binding
                .bind_reply(&app, self.last_request_proto.get(&color))?;
            let mut bytes = self.take_wire_buf();
            let compose_start = traced.then(Instant::now);
            cfg.codec.compose_into(&proto, &mut bytes)?;
            if let Some(start) = compose_start {
                self.emit(&TraceEvent::Compose {
                    variant: proto.name(),
                    wire_bytes: bytes.len(),
                    nanos: start.elapsed().as_nanos() as u64,
                });
                self.emit(&TraceEvent::WireOut {
                    color,
                    bytes: bytes.len(),
                });
            }
            ios.push(SessionIo::SendWire { color, bytes });
        } else {
            // Request to a service.
            let mut proto = cfg.binding.bind_request(&app)?;
            if let Some(corr) = &cfg.binding.correlation {
                if proto.get_path(corr).is_err() {
                    proto.set_path(corr, Value::UInt(self.exchanges as u64 + 1))?;
                }
            }
            let mut bytes = self.take_wire_buf();
            let compose_start = traced.then(Instant::now);
            cfg.codec.compose_into(&proto, &mut bytes)?;
            if let Some(start) = compose_start {
                self.emit(&TraceEvent::Compose {
                    variant: proto.name(),
                    wire_bytes: bytes.len(),
                    nanos: start.elapsed().as_nanos() as u64,
                });
                self.emit(&TraceEvent::WireOut {
                    color,
                    bytes: bytes.len(),
                });
            }
            if !self.persist.connected.contains(&color) {
                let endpoint = service_endpoint(spec, &self.persist, color)?;
                self.persist.connected.insert(color);
                if traced {
                    self.emit(&TraceEvent::ServiceConnected { color });
                }
                ios.push(SessionIo::ConnectService { color, endpoint });
            }
            ios.push(SessionIo::SendWire { color, bytes });
            self.last_request_proto.insert(color, proto);
            self.pending_op.insert(color, app.name().to_owned());
        }
        if traced {
            self.emit(&TraceEvent::Transition {
                from: &self.current,
                to: &t.to,
                kind: TransitionKind::Send,
                color,
            });
        }
        self.history
            .record(self.current.clone(), Direction::Sent, app);
        self.exchanges += 1;
        Ok(t.to.clone())
    }
}

/// The endpoint the driver should connect `color`'s service at,
/// honouring a `sethost` override issued earlier in the session.
fn service_endpoint(spec: &SessionSpec, persist: &SessionPersist, color: u8) -> Result<String> {
    if let Some(host) = &persist.host_override {
        return Ok(host.clone());
    }
    match &color_config(spec, color)?.endpoint {
        Some(ep) => Ok(ep.clone()),
        None => Err(CoreError::Binding {
            message: format!("color {color} has no service endpoint"),
        }),
    }
}

fn color_config(spec: &SessionSpec, color: u8) -> Result<&ColorConfig> {
    spec.colors
        .get(&color)
        .ok_or_else(|| CoreError::NotRegistered {
            kind: "color runtime",
            name: color.to_string(),
        })
}

/// The color that drives network activity at a state (single-colored
/// states only; bi-colored states carry γ-transitions, which touch no
/// network).
fn state_color(automaton: &Automaton, state_id: &str) -> Result<u8> {
    let state = automaton.state(state_id).ok_or_else(|| {
        CoreError::Automaton(starlink_automata::AutomatonError::UnknownState {
            automaton: automaton.name().to_owned(),
            state: state_id.to_owned(),
        })
    })?;
    Ok(state.colors[0])
}

/// The message template of the send transition leaving `state`, if the
/// state is a sending state.
fn next_send_template<'a>(automaton: &'a Automaton, state: &str) -> Option<&'a AbstractMessage> {
    automaton
        .transitions_from(state)
        .find_map(|t| match &t.action {
            Action::Send(m) => Some(m),
            _ => None,
        })
}
