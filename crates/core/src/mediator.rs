//! Mediator construction and deployment.
//!
//! A [`Mediator`] packages a merged k-colored automaton with per-color
//! runtime configurations into a shared [`SessionSpec`]; a
//! [`MediatorHost`] deploys it "in the network" (paper §5.1): it listens
//! at the client-facing endpoint and runs one engine session per client
//! automaton traversal. Combined with a redirect proxy (see the apps
//! crate) this reproduces the paper's deployment, where unmodified
//! Flickr clients were pointed at the local Starlink mediator.
//!
//! Two deployment shapes share the same sans-I/O [`SessionCore`]:
//!
//! * [`MediatorHost::deploy`] — thread per client connection, blocking
//!   I/O (the original engine's shape);
//! * [`MediatorHost::deploy_multiplexed`] — one coordinator polling
//!   connection readiness plus a bounded worker pool stepping session
//!   cores, so many idle clients cost no threads.

use crate::driver::{self, ConnectionState};
use crate::engine::ColorRuntime;
use crate::error::CoreError;
use crate::session_core::{
    ColorConfig, SessionCore, SessionEvent, SessionIo, SessionOutcome, SessionPersist, SessionSpec,
};
use crate::Result;
use starlink_automata::{Action, Automaton};
use starlink_mtl::MtlProgram;
use starlink_net::channel::{self, Receiver, Sender};
use starlink_net::{Connection, Endpoint, NetError, NetworkEngine};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the accept/coordinator loops sleep when nothing is ready.
const IDLE_POLL: Duration = Duration::from_millis(1);

/// How long the accept loop backs off after a transient accept error.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(5);

/// A deployable mediator: merged automaton + per-color runtimes.
pub struct Mediator {
    spec: Arc<SessionSpec>,
    net: NetworkEngine,
    /// Per-exchange receive timeout.
    pub timeout: Duration,
}

impl Mediator {
    /// Builds a mediator, pre-parsing every γ-transition's MTL program
    /// and collecting the application message templates the binding
    /// rules need.
    ///
    /// # Errors
    ///
    /// Automaton validation failures (including mixed-kind states, which
    /// the engine cannot execute) and MTL syntax errors (reported at
    /// deployment time, not mid-session).
    pub fn new(
        automaton: Automaton,
        client_color: u8,
        runtimes: Vec<ColorRuntime>,
        net: NetworkEngine,
    ) -> Result<Mediator> {
        automaton.validate()?;
        let mut gammas = HashMap::new();
        let mut templates = HashMap::new();
        for t in automaton.transitions() {
            match &t.action {
                Action::Gamma { mtl } => {
                    let program = MtlProgram::parse(mtl)?;
                    gammas.insert((t.from.clone(), t.to.clone()), program);
                }
                Action::Send(m) | Action::Receive(m) => {
                    templates.insert(m.name().to_owned(), m.clone());
                }
            }
        }
        let colors = runtimes
            .into_iter()
            .map(|r| {
                (
                    r.color,
                    ColorConfig {
                        binding: r.binding,
                        codec: r.codec,
                        endpoint: r.endpoint.map(|e| e.to_string()),
                    },
                )
            })
            .collect();
        Ok(Mediator {
            spec: Arc::new(SessionSpec {
                automaton: Arc::new(automaton),
                client_color,
                colors,
                gammas,
                templates,
            }),
            net,
            timeout: Duration::from_secs(10),
        })
    }

    /// The merged automaton this mediator executes.
    pub fn automaton(&self) -> &Automaton {
        &self.spec.automaton
    }

    /// The shared session specification, for driving [`SessionCore`]
    /// directly (deterministic replay tests, custom drivers).
    pub fn session_spec(&self) -> Arc<SessionSpec> {
        self.spec.clone()
    }

    /// Runs one full automaton traversal against an already-accepted
    /// client connection (testing / embedded use).
    ///
    /// # Errors
    ///
    /// Any engine failure; the connection should be dropped afterwards.
    pub fn run_session(&self, client_conn: &mut dyn Connection) -> Result<SessionOutcome> {
        let mut state = ConnectionState::new();
        driver::run_blocking(
            &self.spec,
            &self.net,
            self.timeout,
            client_conn,
            &mut state,
            None,
        )
    }
}

/// A deployed mediator: listening at the client-facing endpoint, running
/// one engine session per client automaton traversal — either on a
/// thread per connection ([`MediatorHost::deploy`]) or multiplexed over
/// a bounded worker pool ([`MediatorHost::deploy_multiplexed`]).
pub struct MediatorHost {
    endpoint: Endpoint,
    stop: Arc<AtomicBool>,
    sessions: Arc<AtomicUsize>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl MediatorHost {
    /// Deploys the mediator at `listen`, thread-per-connection.
    ///
    /// The accept loop polls so that [`MediatorHost::shutdown`] takes
    /// effect promptly, tolerates transient accept errors (backing off
    /// briefly instead of dying), and exits only on shutdown or when the
    /// listener itself closes.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn deploy(mediator: Mediator, listen: &Endpoint) -> Result<MediatorHost> {
        let listener = mediator.net.listen(listen)?;
        let endpoint = listener.local_endpoint();
        let stop = Arc::new(AtomicBool::new(false));
        let sessions = Arc::new(AtomicUsize::new(0));
        let accept_stop = stop.clone();
        let session_count = sessions.clone();
        let mediator = Arc::new(mediator);
        let accept_thread = std::thread::spawn(move || {
            let mut session_threads: Vec<JoinHandle<()>> = Vec::new();
            while !accept_stop.load(Ordering::SeqCst) {
                let mut conn = match listener.try_accept() {
                    Ok(Some(c)) => c,
                    Ok(None) => {
                        std::thread::sleep(IDLE_POLL);
                        continue;
                    }
                    Err(NetError::Closed) => break,
                    Err(_) => {
                        // Transient (e.g. EMFILE, aborted handshake):
                        // keep serving.
                        std::thread::sleep(ACCEPT_BACKOFF);
                        continue;
                    }
                };
                let mediator = mediator.clone();
                let stop = accept_stop.clone();
                let session_count = session_count.clone();
                session_threads.push(std::thread::spawn(move || {
                    // The translation cache persists across traversals on
                    // the same connection (getInfo after search).
                    let mut state = ConnectionState::new();
                    while !stop.load(Ordering::SeqCst) {
                        let run = driver::run_blocking(
                            &mediator.spec,
                            &mediator.net,
                            mediator.timeout,
                            conn.as_mut(),
                            &mut state,
                            Some(&stop),
                        );
                        match run {
                            Ok(_) => {
                                session_count.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(CoreError::Net(NetError::Closed)) => return,
                            Err(CoreError::Net(NetError::Timeout)) => continue,
                            Err(_) => return,
                        }
                    }
                }));
            }
            for t in session_threads {
                let _ = t.join();
            }
        });
        Ok(MediatorHost {
            endpoint,
            stop,
            sessions,
            threads: Mutex::new(vec![accept_thread]),
        })
    }

    /// Deploys the mediator at `listen`, multiplexing all client
    /// connections over a pool of at most `max_workers` worker threads.
    ///
    /// A coordinator thread polls the listener and parked connections
    /// for readiness; sessions with input ready are handed to workers
    /// over a bounded channel (blocking the coordinator when all workers
    /// are busy — natural backpressure). Idle connections cost no
    /// threads, so the host serves far more concurrent clients than
    /// workers.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn deploy_multiplexed(
        mediator: Mediator,
        listen: &Endpoint,
        max_workers: usize,
    ) -> Result<MediatorHost> {
        let listener = mediator.net.listen(listen)?;
        let endpoint = listener.local_endpoint();
        let stop = Arc::new(AtomicBool::new(false));
        let sessions = Arc::new(AtomicUsize::new(0));
        let max_workers = max_workers.max(1);
        // Bounded: when every worker is busy and the buffer is full, the
        // coordinator's send blocks until a slot frees up.
        let (jobs_tx, jobs_rx) = channel::bounded::<Job>(max_workers * 2);
        let (done_tx, done_rx) = channel::unbounded::<MuxSession>();
        let mediator = Arc::new(mediator);
        let mut threads = Vec::with_capacity(max_workers + 1);
        for _ in 0..max_workers {
            let jobs_rx = jobs_rx.clone();
            let done_tx = done_tx.clone();
            let mediator = mediator.clone();
            let stop = stop.clone();
            let session_count = sessions.clone();
            threads.push(std::thread::spawn(move || {
                worker_loop(&jobs_rx, &done_tx, &mediator, &stop, &session_count);
            }));
        }
        drop(jobs_rx);
        drop(done_tx);
        let coord_stop = stop.clone();
        let coord_mediator = mediator;
        threads.push(std::thread::spawn(move || {
            coordinator_loop(
                listener.as_ref(),
                &jobs_tx,
                &done_rx,
                &coord_mediator,
                &coord_stop,
            );
        }));
        Ok(MediatorHost {
            endpoint,
            stop,
            sessions,
            threads: Mutex::new(threads),
        })
    }

    /// The endpoint the mediator is reachable at.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Number of completed sessions (traversals) so far.
    pub fn completed_sessions(&self) -> usize {
        self.sessions.load(Ordering::SeqCst)
    }

    /// Shuts the host down and waits for its threads: no new sessions
    /// start, in-flight sessions are interrupted at their next receive
    /// slice, and the accept/coordinator/worker threads are joined.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let handles: Vec<JoinHandle<()>> = {
            let mut guard = self.threads.lock().unwrap();
            guard.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for MediatorHost {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One client connection multiplexed over the worker pool: its session
/// core plus the sockets the core's instructions refer to.
struct MuxSession {
    core: SessionCore,
    client: Box<dyn Connection>,
    services: HashMap<u8, Box<dyn Connection>>,
    /// Color the session is parked waiting to receive on.
    awaiting: Option<u8>,
    /// When the parked receive times out (triggering [`SessionEvent::Tick`]).
    deadline: Instant,
}

/// A unit of work for the pool: step this session with this event
/// (`None` = start the session's first traversal).
struct Job {
    session: MuxSession,
    event: Option<SessionEvent>,
}

fn worker_loop(
    jobs: &Receiver<Job>,
    done: &Sender<MuxSession>,
    mediator: &Arc<Mediator>,
    stop: &AtomicBool,
    session_count: &AtomicUsize,
) {
    while let Ok(job) = jobs.recv() {
        let Job { mut session, event } = job;
        let stepped = match event {
            None => session.core.start(),
            Some(event) => session.core.step(event),
        };
        // On engine or I/O failure the session (and its connections) is
        // dropped, mirroring the thread-per-connection host; otherwise it
        // parked awaiting input — hand it back for polling.
        if stepped
            .and_then(|ios| pump(&mut session, ios, mediator, stop, session_count))
            .is_ok()
            && done.send(session).is_err()
        {
            return;
        }
    }
}

/// Executes a batch of core instructions with quick blocking I/O,
/// restarting the traversal whenever one finishes, until the session
/// parks on a receive.
fn pump(
    session: &mut MuxSession,
    mut ios: Vec<SessionIo>,
    mediator: &Arc<Mediator>,
    stop: &AtomicBool,
    session_count: &AtomicUsize,
) -> Result<()> {
    loop {
        // Count completions before executing the batch's sends: once the
        // final reply is on the wire the client may observe the session
        // as done, and the counter must already agree.
        let mut finished = false;
        for io in &ios {
            if matches!(io, SessionIo::Finished(_)) {
                session_count.fetch_add(1, Ordering::SeqCst);
                finished = true;
            }
        }
        for io in ios {
            match io {
                SessionIo::Finished(_) => {}
                SessionIo::NeedRecv { color } => {
                    session.awaiting = Some(color);
                    session.deadline = Instant::now() + mediator.timeout;
                }
                SessionIo::SendWire { color, bytes } => {
                    if color == mediator.spec.client_color {
                        session.client.send(&bytes)?;
                    } else {
                        let conn =
                            session
                                .services
                                .get_mut(&color)
                                .ok_or_else(|| CoreError::Aborted {
                                    reason: format!("send on color {color} with no connection"),
                                })?;
                        conn.send(&bytes)?;
                    }
                    session.core.recycle_wire_buf(bytes);
                }
                SessionIo::ConnectService { color, endpoint } => {
                    let endpoint: Endpoint = endpoint.parse()?;
                    let conn = mediator.net.connect(&endpoint)?;
                    session.services.insert(color, conn);
                }
            }
        }
        if !finished {
            // Advance stopped at a NeedRecv: park.
            return Ok(());
        }
        if stop.load(Ordering::SeqCst) {
            return Err(CoreError::HostStopped);
        }
        // Traversal done; begin the next one on the same connection
        // (persistent translation cache survives inside the core).
        ios = session.core.restart()?;
    }
}

fn coordinator_loop(
    listener: &dyn starlink_net::Listener,
    jobs: &Sender<Job>,
    done: &Receiver<MuxSession>,
    mediator: &Arc<Mediator>,
    stop: &AtomicBool,
) {
    let mut parked: HashMap<u64, MuxSession> = HashMap::new();
    let mut next_id: u64 = 0;
    while !stop.load(Ordering::SeqCst) {
        let mut progressed = false;
        // 1. Workers hand back sessions parked on a receive.
        while let Ok(session) = done.try_recv() {
            next_id += 1;
            parked.insert(next_id, session);
            progressed = true;
        }
        // 2. New client connections start fresh sessions.
        match listener.try_accept() {
            Ok(Some(client)) => {
                if let Ok(core) = SessionCore::new(mediator.spec.clone(), SessionPersist::new()) {
                    let session = MuxSession {
                        core,
                        client,
                        services: HashMap::new(),
                        awaiting: None,
                        deadline: Instant::now() + mediator.timeout,
                    };
                    if jobs
                        .send(Job {
                            session,
                            event: None,
                        })
                        .is_err()
                    {
                        return;
                    }
                    progressed = true;
                }
            }
            Ok(None) => {}
            Err(NetError::Closed) => break,
            Err(_) => std::thread::sleep(ACCEPT_BACKOFF),
        }
        // 3. Poll parked sessions for readiness (or timeout).
        let now = Instant::now();
        let mut ready: Vec<(u64, Option<SessionEvent>)> = Vec::new();
        for (&id, session) in parked.iter_mut() {
            let Some(color) = session.awaiting else {
                ready.push((id, None));
                continue;
            };
            let conn = if color == mediator.spec.client_color {
                Some(session.client.as_mut())
            } else {
                session.services.get_mut(&color).map(|c| c.as_mut())
            };
            let Some(conn) = conn else {
                ready.push((id, None));
                continue;
            };
            match conn.try_receive() {
                Ok(Some(bytes)) => {
                    ready.push((id, Some(SessionEvent::WireReceived { color, bytes })));
                }
                Ok(None) => {
                    if now >= session.deadline {
                        ready.push((id, Some(SessionEvent::Tick)));
                    }
                }
                // Closed or failed connection: drop the session.
                Err(_) => ready.push((id, None)),
            }
        }
        for (id, event) in ready {
            let mut session = parked.remove(&id).expect("session is parked");
            progressed = true;
            let Some(event) = event else {
                continue; // dropped
            };
            session.awaiting = None;
            if jobs
                .send(Job {
                    session,
                    event: Some(event),
                })
                .is_err()
            {
                return;
            }
        }
        if !progressed {
            std::thread::sleep(IDLE_POLL);
        }
    }
    // Dropping `jobs` (by returning) lets workers drain and exit; the
    // host joins them after the coordinator.
}
