//! Mediator construction and deployment.
//!
//! A [`Mediator`] packages a merged k-colored automaton with per-color
//! runtime configurations into a shared [`SessionSpec`]; a
//! [`MediatorHost`] deploys it "in the network" (paper §5.1): it listens
//! at the client-facing endpoint and runs one engine session per client
//! automaton traversal. Combined with a redirect proxy (see the apps
//! crate) this reproduces the paper's deployment, where unmodified
//! Flickr clients were pointed at the local Starlink mediator.
//!
//! Two deployment shapes share the same sans-I/O [`SessionCore`]:
//!
//! * [`MediatorHost::deploy`] — thread per client connection, blocking
//!   I/O (the original engine's shape);
//! * [`MediatorHost::deploy_multiplexed`] — one coordinator polling
//!   connection readiness plus a bounded worker pool stepping session
//!   cores, so many idle clients cost no threads.

use crate::driver::{self, ConnectionState, SessionWatch};
use crate::engine::ColorRuntime;
use crate::error::CoreError;
use crate::ops::{OpsConfig, OpsRuntime, SessionEntry, StallPolicy};
use crate::session_core::{
    ColorConfig, SessionCore, SessionEvent, SessionIo, SessionOutcome, SessionPersist, SessionSpec,
};
use crate::Result;
use starlink_automata::{Action, Automaton};
use starlink_mtl::MtlProgram;
use starlink_net::channel::{self, Receiver, Sender};
use starlink_net::{Connection, Endpoint, NetError, NetworkEngine};
use starlink_telemetry::{
    chrome_events, evaluate_pair, render_chrome_json, FanoutSink, FlightRecorder, HealthInputs,
    HealthReport, Recorder, SessionTracer, Snapshot, TelemetrySink, TraceBuffer, TraceEvent,
    WindowAggregator, WindowCounts,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the accept/coordinator loops sleep when nothing is ready.
const IDLE_POLL: Duration = Duration::from_millis(1);

/// How long the accept loop backs off after a transient accept error.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(5);

/// How long the diagnostics endpoint waits for an optional selector
/// frame before answering with the default selector (back-compat with
/// clients that connect and only read, as `starlink stats` always has).
const REQUEST_WAIT: Duration = Duration::from_millis(200);

/// A deployable mediator: merged automaton + per-color runtimes.
pub struct Mediator {
    spec: Arc<SessionSpec>,
    net: NetworkEngine,
    /// Per-exchange receive timeout.
    pub timeout: Duration,
    /// Installed by [`Mediator::enable_tracing`]; handed to the host at
    /// deployment so callers can read traces back.
    trace_buffer: Option<Arc<TraceBuffer>>,
    flight: Option<Arc<FlightRecorder>>,
    /// Installed by [`Mediator::enable_ops`]; handed to the host at
    /// deployment, which builds the watchdog/health runtime from it.
    ops: Option<OpsConfig>,
    window: Option<Arc<WindowAggregator>>,
}

impl Mediator {
    /// Builds a mediator, pre-parsing every γ-transition's MTL program
    /// and collecting the application message templates the binding
    /// rules need.
    ///
    /// # Errors
    ///
    /// Automaton validation failures (including mixed-kind states, which
    /// the engine cannot execute) and MTL syntax errors (reported at
    /// deployment time, not mid-session).
    pub fn new(
        automaton: Automaton,
        client_color: u8,
        runtimes: Vec<ColorRuntime>,
        net: NetworkEngine,
    ) -> Result<Mediator> {
        automaton.validate()?;
        let mut gammas = HashMap::new();
        let mut templates = HashMap::new();
        for t in automaton.transitions() {
            match &t.action {
                Action::Gamma { mtl } => {
                    let program = MtlProgram::parse(mtl)?;
                    gammas.insert((t.from.clone(), t.to.clone()), program);
                }
                Action::Send(m) | Action::Receive(m) => {
                    templates.insert(m.name().to_owned(), m.clone());
                }
            }
        }
        let colors = runtimes
            .into_iter()
            .map(|r| {
                (
                    r.color,
                    ColorConfig {
                        binding: r.binding,
                        codec: r.codec,
                        endpoint: r.endpoint.map(|e| e.to_string()),
                    },
                )
            })
            .collect();
        Ok(Mediator {
            spec: Arc::new(SessionSpec {
                automaton: Arc::new(automaton),
                client_color,
                colors,
                gammas,
                templates,
                telemetry: starlink_telemetry::noop_sink(),
            }),
            net,
            timeout: Duration::from_secs(10),
            trace_buffer: None,
            flight: None,
            ops: None,
            window: None,
        })
    }

    /// Switches on the operations plane: installs a sliding-window
    /// aggregator (labelled with the merged automaton's name) next to
    /// whatever sink is already injected, and records the watchdog
    /// policy and health thresholds for the host to pick up at
    /// deployment. Returns the window; after deployment the host serves
    /// its rates, the stall watchdog, the live session directory and the
    /// [`HealthReport`] through [`MediatorHost::expose_diagnostics`].
    /// Idempotent — calling twice returns the already-installed window
    /// (the first config wins).
    pub fn enable_ops(&mut self, config: OpsConfig) -> Arc<WindowAggregator> {
        if let Some(window) = &self.window {
            return window.clone();
        }
        let window = Arc::new(WindowAggregator::new(
            self.spec.automaton.name(),
            config.window,
        ));
        let existing = self.telemetry();
        let mut sinks: Vec<Arc<dyn TelemetrySink>> = Vec::with_capacity(2);
        if existing.enabled() {
            sinks.push(existing);
        }
        sinks.push(window.clone() as Arc<dyn TelemetrySink>);
        self.set_telemetry(Arc::new(FanoutSink::new(sinks)));
        self.ops = Some(config);
        self.window = Some(window.clone());
        window
    }

    /// Switches on per-session causal tracing: installs a
    /// [`TraceBuffer`] (span trees of the last N completed sessions) and
    /// a [`FlightRecorder`] (bounded per-session message captures pre-
    /// and post-γ), fanned out with whatever sink is already injected.
    /// Returns both stores; after deployment they are also reachable via
    /// [`MediatorHost::trace_buffer`] and
    /// [`MediatorHost::flight_recorder`]. Idempotent — calling twice
    /// returns the already-installed pair.
    pub fn enable_tracing(&mut self) -> (Arc<TraceBuffer>, Arc<FlightRecorder>) {
        if let (Some(buffer), Some(flight)) = (&self.trace_buffer, &self.flight) {
            return (buffer.clone(), flight.clone());
        }
        let buffer = Arc::new(TraceBuffer::new());
        let flight = Arc::new(FlightRecorder::new());
        let existing = self.telemetry();
        let mut sinks: Vec<Arc<dyn TelemetrySink>> = Vec::with_capacity(3);
        if existing.enabled() {
            sinks.push(existing);
        }
        sinks.push(buffer.clone() as Arc<dyn TelemetrySink>);
        sinks.push(flight.clone() as Arc<dyn TelemetrySink>);
        self.set_telemetry(Arc::new(FanoutSink::new(sinks)));
        self.trace_buffer = Some(buffer.clone());
        self.flight = Some(flight.clone());
        (buffer, flight)
    }

    /// The merged automaton this mediator executes.
    pub fn automaton(&self) -> &Automaton {
        &self.spec.automaton
    }

    /// The sink sessions report into (the no-op sink unless one was
    /// injected).
    pub fn telemetry(&self) -> Arc<dyn TelemetrySink> {
        self.spec.telemetry.clone()
    }

    /// Injects the telemetry sink every session driven from this mediator
    /// reports into. Rebuilds the shared [`SessionSpec`]; call before
    /// deploying (sessions already running keep the old sink).
    pub fn set_telemetry(&mut self, sink: Arc<dyn TelemetrySink>) {
        self.spec = Arc::new(SessionSpec {
            automaton: self.spec.automaton.clone(),
            client_color: self.spec.client_color,
            colors: self.spec.colors.clone(),
            gammas: self.spec.gammas.clone(),
            templates: self.spec.templates.clone(),
            telemetry: sink,
        });
    }

    /// Builder-style [`Mediator::set_telemetry`].
    #[must_use]
    pub fn with_telemetry(mut self, sink: Arc<dyn TelemetrySink>) -> Mediator {
        self.set_telemetry(sink);
        self
    }

    /// The shared session specification, for driving [`SessionCore`]
    /// directly (deterministic replay tests, custom drivers).
    pub fn session_spec(&self) -> Arc<SessionSpec> {
        self.spec.clone()
    }

    /// Runs one full automaton traversal against an already-accepted
    /// client connection (testing / embedded use).
    ///
    /// # Errors
    ///
    /// Any engine failure; the connection should be dropped afterwards.
    pub fn run_session(&self, client_conn: &mut dyn Connection) -> Result<SessionOutcome> {
        let mut state = ConnectionState::new();
        driver::run_blocking(
            &self.spec,
            &self.net,
            self.timeout,
            client_conn,
            &mut state,
            None,
            None,
        )
    }
}

/// A deployed mediator: listening at the client-facing endpoint, running
/// one engine session per client automaton traversal — either on a
/// thread per connection ([`MediatorHost::deploy`]) or multiplexed over
/// a bounded worker pool ([`MediatorHost::deploy_multiplexed`]).
pub struct MediatorHost {
    endpoint: Endpoint,
    stop: Arc<AtomicBool>,
    /// The sink sessions report into. Deployment guarantees it
    /// aggregates (a [`Recorder`] is installed when the injected sink
    /// does not snapshot), so [`MediatorHost::telemetry_snapshot`] and
    /// [`MediatorHost::completed_sessions`] always have data.
    telemetry: Arc<dyn TelemetrySink>,
    /// Present when [`Mediator::enable_tracing`] ran before deployment.
    trace_buffer: Option<Arc<TraceBuffer>>,
    flight: Option<Arc<FlightRecorder>>,
    /// Everything the diagnostics endpoint needs, cloneable into its
    /// serving thread.
    diag: DiagState,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

/// Ensures the mediator's sink can snapshot: keeps an
/// already-aggregating sink as-is, otherwise installs a fresh
/// [`Recorder`] (fanned out with the caller's sink when one is present).
fn install_recorder(mediator: &mut Mediator) -> Arc<dyn TelemetrySink> {
    let existing = mediator.telemetry();
    if existing.snapshot().is_some() {
        return existing;
    }
    let recorder: Arc<dyn TelemetrySink> = Arc::new(Recorder::new());
    let sink: Arc<dyn TelemetrySink> = if existing.enabled() {
        Arc::new(FanoutSink::new(vec![existing, recorder]))
    } else {
        recorder
    };
    mediator.set_telemetry(sink.clone());
    sink
}

/// Builds the deployment's operations runtime from the mediator's
/// [`OpsConfig`], clamping the watchdog's stall deadline inside the
/// receive timeout so a stall is flagged before the timeout restarts the
/// traversal (which would reset the wait unobserved).
fn build_ops(mediator: &Mediator, telemetry: &Arc<dyn TelemetrySink>) -> Option<Arc<OpsRuntime>> {
    let config = mediator.ops?;
    let window = mediator.window.clone()?;
    let watchdog = config.watchdog.map(|mut wd| {
        if wd.stall_after >= mediator.timeout {
            wd.stall_after = (mediator.timeout / 2).max(Duration::from_millis(1));
        }
        wd
    });
    Some(Arc::new(OpsRuntime::new(
        window,
        config.thresholds,
        watchdog,
        telemetry.clone(),
    )))
}

/// The diagnostics endpoint's view of a deployed host: enough shared
/// state to answer every selector without touching the host itself (the
/// serving thread outlives borrows of [`MediatorHost`]).
#[derive(Clone)]
struct DiagState {
    telemetry: Arc<dyn TelemetrySink>,
    trace_buffer: Option<Arc<TraceBuffer>>,
    /// The merged-automaton pair this host serves, labelling health and
    /// window families.
    pair: String,
    /// Jobs handed to the worker pool and not yet handed back (always 0
    /// for the thread-per-connection host).
    queue_depth: Arc<AtomicUsize>,
    /// Bounded job-channel capacity (0 = no bounded queue: threaded host).
    queue_capacity: usize,
    ops: Option<Arc<OpsRuntime>>,
}

impl DiagState {
    /// Lifecycle counts feeding the health model: the sliding window
    /// when ops are enabled, else lifetime counters recast as a window
    /// of unspecified length (`window_secs` 0 — absolute thresholds
    /// still grade, rate-denominated ones see totals).
    fn window_counts(&self) -> WindowCounts {
        match &self.ops {
            Some(ops) => ops.window.counts(),
            None => {
                let snap = self.telemetry.snapshot().unwrap_or_default();
                WindowCounts {
                    window_secs: 0,
                    started: snap.counter("starlink_sessions_started_total"),
                    finished: snap.counter("starlink_sessions_finished_total"),
                    failed: snap.counter("starlink_sessions_failed_total"),
                    accepted: snap.counter("starlink_sessions_accepted_total"),
                    accept_errors: snap.counter("starlink_accept_errors_total"),
                    stalled: snap.counter("starlink_sessions_stalled_total"),
                    failures_by_stage: Vec::new(),
                }
            }
        }
    }

    fn health_report(&self) -> HealthReport {
        let thresholds = self.ops.as_ref().map(|o| o.thresholds).unwrap_or_default();
        let stalled_now = self
            .ops
            .as_ref()
            .map(|o| o.stalled_now() as u64)
            .unwrap_or(0);
        let inputs = HealthInputs {
            pair: self.pair.clone(),
            window: self.window_counts(),
            queue_depth: self.queue_depth.load(Ordering::SeqCst) as u64,
            queue_capacity: self.queue_capacity as u64,
            stalled_now,
        };
        HealthReport::single(evaluate_pair(&inputs, &thresholds))
    }

    /// The recorder's lifetime families plus windowed rates and health
    /// gauges — the `stats` selector's payload.
    fn diagnostics_snapshot(&self) -> Snapshot {
        let mut snap = self.telemetry.snapshot().unwrap_or_default();
        if let Some(ops) = &self.ops {
            snap.families.extend(ops.window.families());
        }
        snap.families.extend(self.health_report().families());
        snap
    }

    /// Answers one diagnostics request frame.
    fn respond(&self, selector: &str) -> Vec<u8> {
        match selector {
            "" | "stats" => self.diagnostics_snapshot().render_text().into_bytes(),
            "health" => self.health_report().render_text().into_bytes(),
            "sessions" => match &self.ops {
                Some(ops) => ops.directory.render_text().into_bytes(),
                None => {
                    b"error: session directory not enabled (call Mediator::enable_ops before deploying)\n"
                        .to_vec()
                }
            },
            "traces" => match &self.trace_buffer {
                Some(buffer) => {
                    let events: Vec<_> = buffer.traces().iter().flat_map(chrome_events).collect();
                    render_chrome_json(&events).into_bytes()
                }
                None => {
                    b"error: tracing not enabled (call Mediator::enable_tracing before deploying)\n"
                        .to_vec()
                }
            },
            other => format!(
                "error: unknown diagnostics selector `{other}` (expected stats, traces, health or sessions)\n"
            )
            .into_bytes(),
        }
    }
}

/// Waits briefly for the optional one-line request frame; clients that
/// connect and only read (the pre-diagnostics `starlink stats`/`trace`
/// protocol) get the endpoint's default selector.
fn read_selector(conn: &mut dyn Connection, default_selector: &str) -> String {
    let deadline = Instant::now() + REQUEST_WAIT;
    loop {
        match conn.try_receive() {
            Ok(Some(bytes)) => return String::from_utf8_lossy(&bytes).trim().to_owned(),
            Ok(None) => {
                if Instant::now() >= deadline {
                    return default_selector.to_owned();
                }
                std::thread::sleep(IDLE_POLL);
            }
            Err(_) => return default_selector.to_owned(),
        }
    }
}

impl MediatorHost {
    /// Deploys the mediator at `listen`, thread-per-connection.
    ///
    /// The accept loop polls so that [`MediatorHost::shutdown`] takes
    /// effect promptly, tolerates transient accept errors (backing off
    /// briefly instead of dying), and exits only on shutdown or when the
    /// listener itself closes.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn deploy(mut mediator: Mediator, listen: &Endpoint) -> Result<MediatorHost> {
        let listener = mediator.net.listen(listen)?;
        let endpoint = listener.local_endpoint();
        let telemetry = install_recorder(&mut mediator);
        let trace_buffer = mediator.trace_buffer.clone();
        let flight = mediator.flight.clone();
        let ops = build_ops(&mediator, &telemetry);
        let pair = mediator.spec.automaton.name().to_owned();
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = stop.clone();
        let accept_ops = ops.clone();
        let mediator = Arc::new(mediator);
        let accept_thread = std::thread::spawn(move || {
            let sink = mediator.spec.telemetry.clone();
            let mut session_threads: Vec<JoinHandle<()>> = Vec::new();
            let mut next_session_id: u64 = 0;
            while !accept_stop.load(Ordering::SeqCst) {
                let mut conn = match listener.try_accept() {
                    Ok(Some(c)) => c,
                    Ok(None) => {
                        std::thread::sleep(IDLE_POLL);
                        continue;
                    }
                    Err(NetError::Closed) => break,
                    Err(_) => {
                        // Transient (e.g. EMFILE, aborted handshake):
                        // keep serving.
                        sink.record(&TraceEvent::AcceptError);
                        std::thread::sleep(ACCEPT_BACKOFF);
                        continue;
                    }
                };
                // The session trace id is minted here, at accept time, so
                // the accept event itself lands in the session's trace.
                let tracer = SessionTracer::for_sink(sink.as_ref());
                match &tracer {
                    Some(t) => t.record(sink.as_ref(), &TraceEvent::SessionAccepted),
                    None => sink.record(&TraceEvent::SessionAccepted),
                }
                let watch = accept_ops.as_ref().map(|ops| {
                    next_session_id += 1;
                    ops.directory.upsert(SessionEntry {
                        id: next_session_id,
                        state: "accepted".to_owned(),
                        awaiting: None,
                        since: Instant::now(),
                        stalled: false,
                    });
                    SessionWatch {
                        ops: ops.clone(),
                        id: next_session_id,
                    }
                });
                let mediator = mediator.clone();
                let stop = accept_stop.clone();
                session_threads.push(std::thread::spawn(move || {
                    // The translation cache persists across traversals on
                    // the same connection (getInfo after search).
                    let mut state = ConnectionState::new();
                    state.tracer = tracer;
                    while !stop.load(Ordering::SeqCst) {
                        let run = driver::run_blocking(
                            &mediator.spec,
                            &mediator.net,
                            mediator.timeout,
                            conn.as_mut(),
                            &mut state,
                            Some(&stop),
                            watch.as_ref(),
                        );
                        // Completions are counted by the session core
                        // itself (`SessionFinished` fires before the
                        // final reply hits the wire); failures by the
                        // driver.
                        match run {
                            Ok(_) => {}
                            Err(CoreError::Net(NetError::Timeout)) => continue,
                            Err(_) => break,
                        }
                    }
                    if let Some(w) = &watch {
                        w.ops.directory.remove(w.id);
                    }
                }));
            }
            for t in session_threads {
                let _ = t.join();
            }
        });
        let diag = DiagState {
            telemetry: telemetry.clone(),
            trace_buffer: trace_buffer.clone(),
            pair,
            queue_depth: Arc::new(AtomicUsize::new(0)),
            queue_capacity: 0,
            ops,
        };
        Ok(MediatorHost {
            endpoint,
            stop,
            telemetry,
            trace_buffer,
            flight,
            diag,
            threads: Mutex::new(vec![accept_thread]),
        })
    }

    /// Deploys the mediator at `listen`, multiplexing all client
    /// connections over a pool of at most `max_workers` worker threads.
    ///
    /// A coordinator thread polls the listener and parked connections
    /// for readiness; sessions with input ready are handed to workers
    /// over a bounded channel (blocking the coordinator when all workers
    /// are busy — natural backpressure). Idle connections cost no
    /// threads, so the host serves far more concurrent clients than
    /// workers.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn deploy_multiplexed(
        mut mediator: Mediator,
        listen: &Endpoint,
        max_workers: usize,
    ) -> Result<MediatorHost> {
        let listener = mediator.net.listen(listen)?;
        let endpoint = listener.local_endpoint();
        let telemetry = install_recorder(&mut mediator);
        let trace_buffer = mediator.trace_buffer.clone();
        let flight = mediator.flight.clone();
        let ops = build_ops(&mediator, &telemetry);
        let pair = mediator.spec.automaton.name().to_owned();
        let stop = Arc::new(AtomicBool::new(false));
        let max_workers = max_workers.max(1);
        // Bounded: when every worker is busy and the buffer is full, the
        // coordinator's send blocks until a slot frees up.
        let queue_capacity = max_workers * 2;
        let (jobs_tx, jobs_rx) = channel::bounded::<Job>(queue_capacity);
        let (done_tx, done_rx) = channel::unbounded::<MuxSession>();
        // Jobs handed to the pool and not yet handed back; shared so the
        // coordinator and workers keep the queue-depth gauge honest.
        let queue_depth = Arc::new(AtomicUsize::new(0));
        let mediator = Arc::new(mediator);
        let mut threads = Vec::with_capacity(max_workers + 1);
        for _ in 0..max_workers {
            let jobs_rx = jobs_rx.clone();
            let done_tx = done_tx.clone();
            let mediator = mediator.clone();
            let stop = stop.clone();
            let queue_depth = queue_depth.clone();
            let ops = ops.clone();
            threads.push(std::thread::spawn(move || {
                worker_loop(&jobs_rx, &done_tx, &mediator, &stop, &queue_depth, &ops);
            }));
        }
        drop(jobs_rx);
        drop(done_tx);
        let coord_stop = stop.clone();
        let coord_mediator = mediator;
        let coord_queue_depth = queue_depth.clone();
        let coord_ops = ops.clone();
        threads.push(std::thread::spawn(move || {
            coordinator_loop(
                listener.as_ref(),
                &jobs_tx,
                &done_rx,
                &coord_mediator,
                &coord_stop,
                &coord_queue_depth,
                &coord_ops,
            );
        }));
        let diag = DiagState {
            telemetry: telemetry.clone(),
            trace_buffer: trace_buffer.clone(),
            pair,
            queue_depth,
            queue_capacity,
            ops,
        };
        Ok(MediatorHost {
            endpoint,
            stop,
            telemetry,
            trace_buffer,
            flight,
            diag,
            threads: Mutex::new(threads),
        })
    }

    /// The endpoint the mediator is reachable at.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Number of completed sessions (traversals) so far.
    ///
    /// Thin shim over the telemetry counter
    /// `starlink_sessions_finished_total`: the session core emits
    /// `SessionFinished` *before* the final reply reaches the wire, so —
    /// as before the counter moved into telemetry — a client that has
    /// observed its session complete can rely on this count already
    /// agreeing (see `docs/engine.md`).
    pub fn completed_sessions(&self) -> usize {
        self.telemetry
            .snapshot()
            .map(|s| s.counter("starlink_sessions_finished_total") as usize)
            .unwrap_or(0)
    }

    /// The sink this host's sessions report into (always able to
    /// snapshot; see [`MediatorHost::telemetry_snapshot`]).
    pub fn telemetry(&self) -> Arc<dyn TelemetrySink> {
        self.telemetry.clone()
    }

    /// Span trees of the last N completed sessions, when
    /// [`Mediator::enable_tracing`] ran before deployment.
    pub fn trace_buffer(&self) -> Option<Arc<TraceBuffer>> {
        self.trace_buffer.clone()
    }

    /// Per-session message captures (pre-/post-γ), when
    /// [`Mediator::enable_tracing`] ran before deployment.
    pub fn flight_recorder(&self) -> Option<Arc<FlightRecorder>> {
        self.flight.clone()
    }

    /// A point-in-time aggregate of everything the host's sessions have
    /// reported: session lifecycle counts, transition and γ-translation
    /// rates, parse/compose latency histograms, wire volume, pool reuse,
    /// and host-level accept/queue gauges. Render with
    /// [`Snapshot::render_text`] for the Prometheus-style exposition the
    /// `starlink stats` CLI command consumes.
    pub fn telemetry_snapshot(&self) -> Snapshot {
        self.telemetry.snapshot().unwrap_or_default()
    }

    /// The host's health report: the sliding window's failure and
    /// accept-error rates, queue saturation and the stall watchdog's
    /// live count graded against the configured [`crate::OpsConfig`]
    /// thresholds (defaults when ops were not enabled), rolled up per
    /// merged-automaton pair. Also served by the `health` diagnostics
    /// selector and consumed by `starlink health`.
    pub fn health_report(&self) -> HealthReport {
        self.diag.health_report()
    }

    /// [`MediatorHost::telemetry_snapshot`] plus the operations plane's
    /// families: windowed rates (when ops are enabled) and health-status
    /// gauges. This is what the `stats` diagnostics selector serves.
    pub fn diagnostics_snapshot(&self) -> Snapshot {
        self.diag.diagnostics_snapshot()
    }

    /// Serves the unified diagnostics endpoint at `listen`: every
    /// accepted connection may send one request frame naming a selector
    /// — `stats` (diagnostics snapshot text), `traces` (Chrome
    /// `trace_event` JSON), `health` (the rendered [`HealthReport`]) or
    /// `sessions` (the live session directory) — and receives one reply
    /// frame. Clients that send nothing get `stats` after a short grace
    /// period, so the endpoint is a drop-in replacement for
    /// [`MediatorHost::expose_stats`]. Returns the bound endpoint; the
    /// serving thread is joined at [`MediatorHost::shutdown`].
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn expose_diagnostics(&self, net: &NetworkEngine, listen: &Endpoint) -> Result<Endpoint> {
        self.serve_one_shot(net, listen, "stats")
    }

    /// Serves [`MediatorHost::diagnostics_snapshot`] at `listen`: every
    /// accepted connection receives one frame containing the rendered
    /// text exposition and is then dropped. Poll with
    /// `starlink stats <endpoint>`. A thin wrapper over the diagnostics
    /// endpoint (defaulting to the `stats` selector), so the other
    /// selectors work here too. Returns the bound endpoint; the serving
    /// thread is joined at [`MediatorHost::shutdown`].
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn expose_stats(&self, net: &NetworkEngine, listen: &Endpoint) -> Result<Endpoint> {
        self.serve_one_shot(net, listen, "stats")
    }

    /// Serves the trace buffer at `listen` in Chrome `trace_event` JSON:
    /// every accepted connection receives one frame holding all
    /// completed session traces (one track per session) and is then
    /// dropped. Poll with `starlink trace <endpoint>` or load the saved
    /// frame in `chrome://tracing` / Perfetto. A thin wrapper over the
    /// diagnostics endpoint (defaulting to the `traces` selector).
    /// Returns the bound endpoint; the serving thread is joined at
    /// [`MediatorHost::shutdown`].
    ///
    /// # Errors
    ///
    /// [`CoreError::Aborted`] when tracing was not enabled on the
    /// mediator before deployment; bind failures.
    pub fn expose_traces(&self, net: &NetworkEngine, listen: &Endpoint) -> Result<Endpoint> {
        if self.trace_buffer.is_none() {
            return Err(CoreError::Aborted {
                reason: "tracing not enabled: call Mediator::enable_tracing before deploying"
                    .to_owned(),
            });
        }
        self.serve_one_shot(net, listen, "traces")
    }

    /// The one-shot request/reply accept loop every exposure endpoint
    /// shares: accept, wait briefly for an optional selector frame
    /// (defaulting when none arrives), answer with one frame, drop the
    /// connection. Polls so shutdown takes effect promptly and tolerates
    /// transient accept errors.
    fn serve_one_shot(
        &self,
        net: &NetworkEngine,
        listen: &Endpoint,
        default_selector: &'static str,
    ) -> Result<Endpoint> {
        let listener = net.listen(listen)?;
        let endpoint = listener.local_endpoint();
        let stop = self.stop.clone();
        let diag = self.diag.clone();
        let handle = std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                match listener.try_accept() {
                    Ok(Some(mut conn)) => {
                        let selector = read_selector(conn.as_mut(), default_selector);
                        let reply = diag.respond(&selector);
                        let _ = conn.send(&reply);
                    }
                    Ok(None) => std::thread::sleep(IDLE_POLL),
                    Err(NetError::Closed) => break,
                    Err(_) => std::thread::sleep(ACCEPT_BACKOFF),
                }
            }
        });
        self.threads
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(handle);
        Ok(endpoint)
    }

    /// Shuts the host down and waits for its threads: no new sessions
    /// start, in-flight sessions are interrupted at their next receive
    /// slice, and the accept/coordinator/worker threads are joined.
    ///
    /// Robust against worker panics: a poisoned thread-list lock is
    /// recovered (the panicking thread only ever pushed complete
    /// handles), and each panic is recorded as a `WorkerPanic` telemetry
    /// event instead of propagating out of shutdown.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let handles: Vec<JoinHandle<()>> = {
            let mut guard = match self.threads.lock() {
                Ok(guard) => guard,
                Err(poisoned) => {
                    self.telemetry.record(&TraceEvent::WorkerPanic);
                    poisoned.into_inner()
                }
            };
            guard.drain(..).collect()
        };
        for h in handles {
            if h.join().is_err() {
                self.telemetry.record(&TraceEvent::WorkerPanic);
            }
        }
    }
}

impl Drop for MediatorHost {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One client connection multiplexed over the worker pool: its session
/// core plus the sockets the core's instructions refer to.
struct MuxSession {
    core: SessionCore,
    client: Box<dyn Connection>,
    services: HashMap<u8, Box<dyn Connection>>,
    /// Color the session is parked waiting to receive on.
    awaiting: Option<u8>,
    /// When the parked receive times out (triggering [`SessionEvent::Tick`]).
    deadline: Instant,
    /// When the current receive wait began (the stall watchdog measures
    /// from here; unlike `deadline` it is not pushed out by config).
    awaiting_since: Instant,
    /// Stable directory id (accept order), distinct from the coordinator's
    /// per-park keys.
    ops_id: u64,
}

/// A unit of work for the pool: step this session with this event
/// (`None` = start the session's first traversal).
struct Job {
    session: MuxSession,
    event: Option<SessionEvent>,
}

fn worker_loop(
    jobs: &Receiver<Job>,
    done: &Sender<MuxSession>,
    mediator: &Arc<Mediator>,
    stop: &AtomicBool,
    queue_depth: &AtomicUsize,
    ops: &Option<Arc<OpsRuntime>>,
) {
    while let Ok(job) = jobs.recv() {
        let Job { mut session, event } = job;
        let stepped = match event {
            None => session.core.start(),
            Some(event) => session.core.step(event),
        };
        // On engine or I/O failure the session (and its connections) is
        // dropped, mirroring the thread-per-connection host; otherwise it
        // parked awaiting input — hand it back for polling.
        let parked = match stepped.and_then(|ios| pump(&mut session, ios, mediator, stop)) {
            Ok(()) => true,
            Err(err) => {
                session.core.record_failure(&err);
                if let Some(ops) = ops {
                    ops.directory.remove(session.ops_id);
                }
                false
            }
        };
        let depth = queue_depth.fetch_sub(1, Ordering::SeqCst).saturating_sub(1);
        mediator
            .spec
            .telemetry
            .record(&TraceEvent::QueueDepth { depth });
        if parked && done.send(session).is_err() {
            return;
        }
    }
}

/// Executes a batch of core instructions with quick blocking I/O,
/// restarting the traversal whenever one finishes, until the session
/// parks on a receive.
fn pump(
    session: &mut MuxSession,
    mut ios: Vec<SessionIo>,
    mediator: &Arc<Mediator>,
    stop: &AtomicBool,
) -> Result<()> {
    loop {
        // Completions are counted by the core's `SessionFinished` event,
        // emitted during `advance()` — i.e. before this loop executes the
        // batch's sends, so once the final reply is on the wire the
        // counter already agrees.
        let finished = ios.iter().any(|io| matches!(io, SessionIo::Finished(_)));
        for io in ios {
            match io {
                SessionIo::Finished(_) => {}
                SessionIo::NeedRecv { color } => {
                    session.awaiting = Some(color);
                    let now = Instant::now();
                    session.deadline = now + mediator.timeout;
                    session.awaiting_since = now;
                }
                SessionIo::SendWire { color, bytes } => {
                    if color == mediator.spec.client_color {
                        session.client.send(&bytes)?;
                    } else {
                        let conn =
                            session
                                .services
                                .get_mut(&color)
                                .ok_or_else(|| CoreError::Aborted {
                                    reason: format!("send on color {color} with no connection"),
                                })?;
                        conn.send(&bytes)?;
                    }
                    session.core.recycle_wire_buf(bytes);
                }
                SessionIo::ConnectService { color, endpoint } => {
                    let endpoint: Endpoint = endpoint.parse()?;
                    let conn = mediator.net.connect(&endpoint)?;
                    session.services.insert(color, conn);
                }
            }
        }
        if !finished {
            // Advance stopped at a NeedRecv: park.
            return Ok(());
        }
        if stop.load(Ordering::SeqCst) {
            return Err(CoreError::HostStopped);
        }
        // Traversal done; begin the next one on the same connection
        // (persistent translation cache survives inside the core).
        ios = session.core.restart()?;
    }
}

/// What the coordinator decided to do with a parked session this poll.
enum Ready {
    /// Connection closed or failed: drop the session.
    Drop,
    /// The stall watchdog's abort policy fired after waiting this long.
    Abort(u64),
    /// Input (or a timeout tick) is ready: hand to the pool.
    Step(SessionEvent),
}

#[allow(clippy::too_many_arguments)]
fn coordinator_loop(
    listener: &dyn starlink_net::Listener,
    jobs: &Sender<Job>,
    done: &Receiver<MuxSession>,
    mediator: &Arc<Mediator>,
    stop: &AtomicBool,
    queue_depth: &AtomicUsize,
    ops: &Option<Arc<OpsRuntime>>,
) {
    let sink = mediator.spec.telemetry.clone();
    let mut parked: HashMap<u64, MuxSession> = HashMap::new();
    let mut next_id: u64 = 0;
    let mut next_ops_id: u64 = 0;
    let mut last_active = usize::MAX;
    // Submitting a job before `jobs.send` keeps the gauge an upper bound
    // even while the send blocks on a full channel.
    let submit = |session: MuxSession, event: Option<SessionEvent>| {
        let depth = queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
        sink.record(&TraceEvent::QueueDepth { depth });
        jobs.send(Job { session, event }).is_ok()
    };
    while !stop.load(Ordering::SeqCst) {
        let mut progressed = false;
        // 1. Workers hand back sessions parked on a receive.
        while let Ok(session) = done.try_recv() {
            next_id += 1;
            if let Some(ops) = ops {
                ops.directory.upsert(SessionEntry {
                    id: session.ops_id,
                    state: session.core.current_state().to_owned(),
                    awaiting: session.awaiting,
                    since: Instant::now(),
                    stalled: false,
                });
            }
            parked.insert(next_id, session);
            progressed = true;
        }
        // 2. New client connections start fresh sessions.
        match listener.try_accept() {
            Ok(Some(client)) => {
                // Minting the tracer here attributes the accept event to
                // the session's own trace (as in the threaded host).
                let tracer = SessionTracer::for_sink(sink.as_ref());
                match &tracer {
                    Some(t) => t.record(sink.as_ref(), &TraceEvent::SessionAccepted),
                    None => sink.record(&TraceEvent::SessionAccepted),
                }
                let mut persist = SessionPersist::new();
                persist.tracer = tracer;
                if let Ok(core) = SessionCore::new(mediator.spec.clone(), persist) {
                    next_ops_id += 1;
                    if let Some(ops) = ops {
                        ops.directory.upsert(SessionEntry {
                            id: next_ops_id,
                            state: core.current_state().to_owned(),
                            awaiting: None,
                            since: Instant::now(),
                            stalled: false,
                        });
                    }
                    let session = MuxSession {
                        core,
                        client,
                        services: HashMap::new(),
                        awaiting: None,
                        deadline: Instant::now() + mediator.timeout,
                        awaiting_since: Instant::now(),
                        ops_id: next_ops_id,
                    };
                    if !submit(session, None) {
                        return;
                    }
                    progressed = true;
                }
            }
            Ok(None) => {}
            Err(NetError::Closed) => break,
            Err(_) => {
                sink.record(&TraceEvent::AcceptError);
                std::thread::sleep(ACCEPT_BACKOFF);
            }
        }
        // 3. Poll parked sessions for readiness (or timeout), running
        //    the stall watchdog over sessions still waiting.
        let now = Instant::now();
        let watchdog = ops.as_ref().and_then(|o| o.watchdog);
        let mut ready: Vec<(u64, Ready)> = Vec::new();
        for (&id, session) in parked.iter_mut() {
            let Some(color) = session.awaiting else {
                ready.push((id, Ready::Drop));
                continue;
            };
            let conn = if color == mediator.spec.client_color {
                Some(session.client.as_mut())
            } else {
                session.services.get_mut(&color).map(|c| c.as_mut())
            };
            let Some(conn) = conn else {
                ready.push((id, Ready::Drop));
                continue;
            };
            match conn.try_receive() {
                Ok(Some(bytes)) => {
                    ready.push((id, Ready::Step(SessionEvent::WireReceived { color, bytes })));
                }
                Ok(None) => {
                    if let (Some(ops), Some(wd)) = (ops, watchdog) {
                        let waited = now.saturating_duration_since(session.awaiting_since);
                        if waited >= wd.stall_after && !session.core.stall_flagged() {
                            let waited_ms = waited.as_millis() as u64;
                            if session.core.note_stalled(waited_ms) {
                                ops.directory.mark_stalled(session.ops_id);
                                ops.stall_raised();
                            }
                            if wd.policy == StallPolicy::Abort {
                                ready.push((id, Ready::Abort(waited_ms)));
                                continue;
                            }
                        }
                    }
                    if now >= session.deadline {
                        ready.push((id, Ready::Step(SessionEvent::Tick)));
                    }
                }
                // Closed or failed connection: drop the session.
                Err(_) => ready.push((id, Ready::Drop)),
            }
        }
        for (id, action) in ready {
            let mut session = parked.remove(&id).expect("session is parked");
            progressed = true;
            // However the session leaves the parked set, a flagged stall
            // episode is over: bytes arrived, the traversal timed out,
            // the connection died, or the abort below reclaims the slot.
            if session.core.stall_flagged() {
                if let Some(ops) = ops {
                    ops.stall_lowered();
                }
            }
            match action {
                Ready::Drop => {
                    // Connection closed or failed: the session is dropped
                    // here, so close its trace instead of leaking an
                    // open-ended span tree.
                    if let Some(ops) = ops {
                        ops.directory.remove(session.ops_id);
                    }
                    session.core.abandon();
                }
                Ready::Abort(waited_ms) => {
                    // Stall abort: count the failure under stage
                    // "stalled", close the root span, and drop the
                    // session so its connections and pool slot free up.
                    if let Some(ops) = ops {
                        ops.directory.remove(session.ops_id);
                    }
                    let err = CoreError::Stalled {
                        state: session.core.current_state().to_owned(),
                        waited_ms,
                    };
                    session.core.record_failure(&err);
                }
                Ready::Step(event) => {
                    session.awaiting = None;
                    if !submit(session, Some(event)) {
                        return;
                    }
                }
            }
        }
        // Sessions this host is responsible for right now: parked here
        // plus handed to the pool; sampled whenever it moves.
        let active = parked.len() + queue_depth.load(Ordering::SeqCst);
        if active != last_active {
            last_active = active;
            sink.record(&TraceEvent::ActiveSessions { count: active });
        }
        if !progressed {
            std::thread::sleep(IDLE_POLL);
        }
    }
    // Dropping `jobs` (by returning) lets workers drain and exit; the
    // host joins them after the coordinator.
}
