//! Mediator construction and deployment.
//!
//! A [`Mediator`] packages a merged k-colored automaton with per-color
//! runtime configurations; a [`MediatorHost`] deploys it "in the
//! network" (paper §5.1): it listens at the client-facing endpoint and
//! runs one engine session per client automaton traversal. Combined with
//! a redirect proxy (see the apps crate) this reproduces the paper's
//! deployment, where unmodified Flickr clients were pointed at the local
//! Starlink mediator.

use crate::engine::{ColorRuntime, ConnectionState, Session, SessionOutcome};
use crate::error::CoreError;
use crate::Result;
use starlink_automata::{Action, Automaton};
use starlink_message::AbstractMessage;
use starlink_mtl::MtlProgram;
use starlink_net::{Connection, Endpoint, NetworkEngine};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A deployable mediator: merged automaton + per-color runtimes.
pub struct Mediator {
    automaton: Arc<Automaton>,
    client_color: u8,
    runtimes: HashMap<u8, ColorRuntime>,
    gammas: HashMap<(String, String), MtlProgram>,
    templates: HashMap<String, AbstractMessage>,
    net: NetworkEngine,
    /// Per-exchange receive timeout.
    pub timeout: Duration,
}

impl Mediator {
    /// Builds a mediator, pre-parsing every γ-transition's MTL program
    /// and collecting the application message templates the binding
    /// rules need.
    ///
    /// # Errors
    ///
    /// Automaton validation failures and MTL syntax errors (reported at
    /// deployment time, not mid-session).
    pub fn new(
        automaton: Automaton,
        client_color: u8,
        runtimes: Vec<ColorRuntime>,
        net: NetworkEngine,
    ) -> Result<Mediator> {
        automaton.validate()?;
        let mut gammas = HashMap::new();
        let mut templates = HashMap::new();
        for t in automaton.transitions() {
            match &t.action {
                Action::Gamma { mtl } => {
                    let program = MtlProgram::parse(mtl)?;
                    gammas.insert((t.from.clone(), t.to.clone()), program);
                }
                Action::Send(m) | Action::Receive(m) => {
                    templates.insert(m.name().to_owned(), m.clone());
                }
            }
        }
        Ok(Mediator {
            automaton: Arc::new(automaton),
            client_color,
            runtimes: runtimes.into_iter().map(|r| (r.color, r)).collect(),
            gammas,
            templates,
            net,
            timeout: Duration::from_secs(10),
        })
    }

    /// The merged automaton this mediator executes.
    pub fn automaton(&self) -> &Automaton {
        &self.automaton
    }

    /// Runs one full automaton traversal against an already-accepted
    /// client connection (testing / embedded use).
    ///
    /// # Errors
    ///
    /// Any engine failure; the connection should be dropped afterwards.
    pub fn run_session(&self, client_conn: &mut dyn Connection) -> Result<SessionOutcome> {
        let mut state = ConnectionState::new();
        self.session().run(client_conn, &mut state)
    }

    fn session(&self) -> Session<'_> {
        Session {
            automaton: &self.automaton,
            client_color: self.client_color,
            runtimes: &self.runtimes,
            gammas: &self.gammas,
            templates: &self.templates,
            net: &self.net,
            timeout: self.timeout,
        }
    }
}

/// A deployed mediator: listening at the client-facing endpoint,
/// spawning a session loop per client connection.
pub struct MediatorHost {
    endpoint: Endpoint,
    stop: Arc<AtomicBool>,
    sessions: Arc<AtomicUsize>,
}

impl MediatorHost {
    /// Deploys the mediator at `listen`.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn deploy(mediator: Mediator, listen: &Endpoint) -> Result<MediatorHost> {
        let listener = mediator.net.listen(listen)?;
        let endpoint = listener.local_endpoint();
        let stop = Arc::new(AtomicBool::new(false));
        let sessions = Arc::new(AtomicUsize::new(0));
        let accept_stop = stop.clone();
        let session_count = sessions.clone();
        let mediator = Arc::new(mediator);
        std::thread::spawn(move || {
            while !accept_stop.load(Ordering::SeqCst) {
                let mut conn = match listener.accept() {
                    Ok(c) => c,
                    Err(_) => return,
                };
                let mediator = mediator.clone();
                let stop = accept_stop.clone();
                let session_count = session_count.clone();
                std::thread::spawn(move || {
                    // The translation cache persists across traversals on
                    // the same connection (getInfo after search).
                    let mut state = ConnectionState::new();
                    while !stop.load(Ordering::SeqCst) {
                        match mediator.session().run(conn.as_mut(), &mut state) {
                            Ok(_) => {
                                session_count.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(CoreError::Net(starlink_net::NetError::Closed)) => return,
                            Err(CoreError::Net(starlink_net::NetError::Timeout)) => {
                                continue;
                            }
                            Err(_) => return,
                        }
                    }
                });
            }
        });
        Ok(MediatorHost {
            endpoint,
            stop,
            sessions,
        })
    }

    /// The endpoint the mediator is reachable at.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Number of completed sessions (traversals) so far.
    pub fn completed_sessions(&self) -> usize {
        self.sessions.load(Ordering::SeqCst)
    }

    /// Requests shutdown: no new sessions start; in-flight sessions end
    /// at their next timeout check.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

impl Drop for MediatorHost {
    fn drop(&mut self) {
        self.shutdown();
    }
}
