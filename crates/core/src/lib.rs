//! The Starlink runtime: binding models to protocols, generating
//! mediators, and executing k-colored automata against the network.
//!
//! This crate is the paper's primary contribution (Fig. 6): a "runtime
//! middleware framework which provides an engine to dynamically interpret
//! and execute middleware models".
//!
//! * [`ProtocolBinding`] — the action/data rules of §4.3 (Fig. 7) that
//!   bind an abstract API-usage automaton to a concrete protocol: where
//!   the action label lives in the protocol message, and how application
//!   parameters map onto protocol fields,
//! * [`ModelRegistry`] — named MDL codecs and automata, the deployable
//!   model bundle,
//! * [`concretize`] — produces the concrete application-middleware
//!   automaton of Fig. 7/8 (protocol message templates on transitions,
//!   MTL rewritten onto protocol field paths) for inspection and export,
//! * [`RpcClient`] / [`RpcServer`] — application endpoints executing
//!   their side of an application-middleware automaton (used to build
//!   the case study's heterogeneous clients and services),
//! * [`SessionCore`] — the automata engine of §4.2 as a pure, I/O-free
//!   state machine: receiving states park on a [`SessionIo::NeedRecv`]
//!   instruction, no-action (γ) states run MTL translations, sending
//!   states compose and emit [`SessionIo::SendWire`] instructions,
//! * [`Mediator`] / [`MediatorHost`] — deployment: a mediator packages
//!   the merged automaton with per-color runtimes into a shared
//!   [`SessionSpec`]; a host drives sessions either on a thread per
//!   client connection or multiplexed over a bounded worker pool
//!   (see `docs/engine.md`).
//!
//! Execution note: the engine applies binding rules *at the network
//! edges* (parse→unbind on receive, bind→compose on send) and runs MTL on
//! application-level messages. This is semantically the concrete merged
//! automaton of Fig. 8 — `concretize` materialises that view — but keeps
//! translation programs independent of protocol field layouts, which is
//! exactly the property §5.2 claims for the approach.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binding;
mod concrete;
mod driver;
mod engine;
mod error;
mod mediator;
mod monitor;
mod ops;
mod registry;
mod rpc;
mod session_core;

pub use binding::{percent_decode, percent_encode};
pub use binding::{ActionRule, ParamRule, ProtocolBinding, ReplyAction, RestRoute};
pub use concrete::concretize;
pub use engine::ColorRuntime;
pub use error::CoreError;
pub use mediator::{Mediator, MediatorHost};
pub use monitor::ProtocolMonitor;
pub use ops::{OpsConfig, SessionDirectory, SessionEntry, StallPolicy, WatchdogConfig};
pub use registry::ModelRegistry;
pub use rpc::{RpcClient, RpcServer, ServiceHandler, ServiceInterface};
pub use session_core::{
    ColorConfig, SessionCore, SessionEvent, SessionIo, SessionOutcome, SessionPersist, SessionSpec,
};
// Telemetry types appearing in this crate's public API (sinks are
// injected through `SessionSpec` / `Mediator::with_telemetry`; snapshots
// come back out of `MediatorHost::telemetry_snapshot`; traces come back
// out of `MediatorHost::trace_buffer` / `flight_recorder` after
// `Mediator::enable_tracing`).
pub use starlink_telemetry::{
    noop_sink, FanoutSink, FlightRecorder, HealthCheck, HealthReport, HealthStatus,
    HealthThresholds, MessageCapture, NoopSink, PairHealth, Recorder, SessionTrace, SessionTraceId,
    SessionTracer, Snapshot, TelemetrySink, TraceBuffer, TraceEvent, TraceRecord, TraceRecordKind,
    WindowAggregator, WindowConfig, WindowCounts,
};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
