//! The Starlink runtime: binding models to protocols, generating
//! mediators, and executing k-colored automata against the network.
//!
//! This crate is the paper's primary contribution (Fig. 6): a "runtime
//! middleware framework which provides an engine to dynamically interpret
//! and execute middleware models".
//!
//! * [`ProtocolBinding`] — the action/data rules of §4.3 (Fig. 7) that
//!   bind an abstract API-usage automaton to a concrete protocol: where
//!   the action label lives in the protocol message, and how application
//!   parameters map onto protocol fields,
//! * [`ModelRegistry`] — named MDL codecs and automata, the deployable
//!   model bundle,
//! * [`concretize`] — produces the concrete application-middleware
//!   automaton of Fig. 7/8 (protocol message templates on transitions,
//!   MTL rewritten onto protocol field paths) for inspection and export,
//! * [`RpcClient`] / [`RpcServer`] — application endpoints executing
//!   their side of an application-middleware automaton (used to build
//!   the case study's heterogeneous clients and services),
//! * [`Mediator`] / [`MediatorHost`] — the automata engine of §4.2:
//!   receiving states block on parsed messages, no-action (γ) states run
//!   MTL translations, sending states compose and transmit; sessions are
//!   spawned per client connection.
//!
//! Execution note: the engine applies binding rules *at the network
//! edges* (parse→unbind on receive, bind→compose on send) and runs MTL on
//! application-level messages. This is semantically the concrete merged
//! automaton of Fig. 8 — `concretize` materialises that view — but keeps
//! translation programs independent of protocol field layouts, which is
//! exactly the property §5.2 claims for the approach.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binding;
mod concrete;
mod engine;
mod error;
mod mediator;
mod monitor;
mod registry;
mod rpc;

pub use binding::{ActionRule, ParamRule, ProtocolBinding, ReplyAction, RestRoute};
pub use binding::{percent_decode, percent_encode};
pub use concrete::concretize;
pub use engine::{ColorRuntime, SessionOutcome};
pub use error::CoreError;
pub use mediator::{Mediator, MediatorHost};
pub use monitor::ProtocolMonitor;
pub use registry::ModelRegistry;
pub use rpc::{RpcClient, RpcServer, ServiceHandler, ServiceInterface};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
