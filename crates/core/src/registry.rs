use crate::error::CoreError;
use crate::Result;
use starlink_automata::{dsl, Automaton};
use starlink_mdl::{MdlCodec, MessageCodec};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// The deployable model bundle: named MDL codecs and automata.
///
/// A Starlink node is configured by loading models into a registry:
/// k-colored automata reference their MDL by name (`mdl="GIOP.mdl"`),
/// and the engine resolves those references here at execution time —
/// this is what makes deploying a new mediator a data operation rather
/// than a code change (§5.2's evolution claim).
#[derive(Clone, Default)]
pub struct ModelRegistry {
    codecs: HashMap<String, Arc<dyn MessageCodec>>,
    automata: HashMap<String, Arc<Automaton>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// Registers a codec under a name (typically `<Protocol>.mdl`).
    pub fn register_codec(&mut self, name: impl Into<String>, codec: Arc<dyn MessageCodec>) {
        self.codecs.insert(name.into(), codec);
    }

    /// Registers an automaton under its own name.
    pub fn register_automaton(&mut self, automaton: Automaton) {
        self.automata
            .insert(automaton.name().to_owned(), Arc::new(automaton));
    }

    /// Resolves a codec.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotRegistered`] when absent.
    pub fn codec(&self, name: &str) -> Result<Arc<dyn MessageCodec>> {
        self.codecs
            .get(name)
            .cloned()
            .ok_or_else(|| CoreError::NotRegistered {
                kind: "mdl",
                name: name.to_owned(),
            })
    }

    /// Resolves an automaton.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotRegistered`] when absent.
    pub fn automaton(&self, name: &str) -> Result<Arc<Automaton>> {
        self.automata
            .get(name)
            .cloned()
            .ok_or_else(|| CoreError::NotRegistered {
                kind: "automaton",
                name: name.to_owned(),
            })
    }

    /// Names of all registered codecs, sorted.
    pub fn codec_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.codecs.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Names of all registered automata, sorted.
    pub fn automaton_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.automata.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Loads a model bundle from a directory: every `*.mdl` file is
    /// compiled into a codec registered under its file name
    /// (`GIOP.mdl`), every `*.atm` file is parsed with the automaton DSL
    /// and registered under the automaton's own name.
    ///
    /// This is the deployment story of §5.2: shipping a new mediator (or
    /// evolving an API) is a matter of dropping model files, not
    /// rebuilding code.
    ///
    /// # Errors
    ///
    /// I/O failures (wrapped as [`CoreError::NotRegistered`] context-free
    /// reads are not useful, so the underlying message is preserved),
    /// MDL compilation and DSL parse errors.
    pub fn load_dir(&mut self, dir: &Path) -> Result<usize> {
        let mut loaded = 0usize;
        let entries = std::fs::read_dir(dir).map_err(|e| CoreError::Aborted {
            reason: format!("cannot read model directory {}: {e}", dir.display()),
        })?;
        let mut paths: Vec<std::path::PathBuf> =
            entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        paths.sort();
        for path in paths {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let read = |p: &Path| {
                std::fs::read_to_string(p).map_err(|e| CoreError::Aborted {
                    reason: format!("cannot read model file {}: {e}", p.display()),
                })
            };
            if name.ends_with(".mdl") {
                let text = read(&path)?;
                let codec = MdlCodec::from_text(&text)?;
                self.register_codec(name, Arc::new(codec));
                loaded += 1;
            } else if name.ends_with(".atm") {
                let text = read(&path)?;
                let automaton = dsl::parse(&text)?;
                self.register_automaton(automaton);
                loaded += 1;
            }
        }
        Ok(loaded)
    }

    /// Writes a model bundle to a directory: MDL specs and automata
    /// (DSL form). The inverse of [`ModelRegistry::load_dir`].
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn save_models(
        dir: &Path,
        mdl_specs: &[(&str, &str)],
        automata: &[&Automaton],
    ) -> Result<()> {
        std::fs::create_dir_all(dir).map_err(|e| CoreError::Aborted {
            reason: format!("cannot create {}: {e}", dir.display()),
        })?;
        for (name, text) in mdl_specs {
            std::fs::write(dir.join(name), text).map_err(|e| CoreError::Aborted {
                reason: format!("cannot write {name}: {e}"),
            })?;
        }
        for automaton in automata {
            let file = format!("{}.atm", automaton.name());
            std::fs::write(dir.join(&file), dsl::print(automaton)).map_err(|e| {
                CoreError::Aborted {
                    reason: format!("cannot write {file}: {e}"),
                }
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_mdl::MdlCodec;

    #[test]
    fn codec_registration_and_lookup() {
        let mut reg = ModelRegistry::new();
        let codec = MdlCodec::from_text("<Message:M><F:8><End:Message>").expect("valid spec");
        reg.register_codec("Test.mdl", Arc::new(codec));
        assert!(reg.codec("Test.mdl").is_ok());
        assert!(matches!(
            reg.codec("Ghost.mdl"),
            Err(CoreError::NotRegistered { .. })
        ));
        assert_eq!(reg.codec_names(), vec!["Test.mdl"]);
    }

    #[test]
    fn automaton_registration_and_lookup() {
        let mut reg = ModelRegistry::new();
        let mut a = Automaton::new("A", 1);
        a.add_state("s0");
        a.set_initial("s0").unwrap();
        a.add_final("s0").unwrap();
        reg.register_automaton(a);
        assert!(reg.automaton("A").is_ok());
        assert!(reg.automaton("B").is_err());
        assert_eq!(reg.automaton_names(), vec!["A"]);
    }
}
