//! Operations-plane configuration and the live session directory.
//!
//! The telemetry crate owns the *mechanisms* — sliding windows
//! ([`starlink_telemetry::WindowAggregator`]), the health model
//! ([`starlink_telemetry::HealthReport`]) — while this module owns the
//! *policy* a deployment opts into: how long an awaiting session may sit
//! silent before the watchdog flags it ([`WatchdogConfig`]), whether a
//! flagged session is merely observed or aborted so its worker slot is
//! reclaimed ([`StallPolicy`]), which thresholds grade the health report,
//! and the [`SessionDirectory`] the diagnostics endpoint renders for the
//! `sessions` selector.
//!
//! Everything here is opt-in via `Mediator::enable_ops`; a mediator that
//! never calls it pays nothing (the engine's no-op-sink gate stays one
//! branch per instrumentation site).

use starlink_telemetry::{
    HealthThresholds, TelemetrySink, TraceEvent, WindowAggregator, WindowConfig,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// What a watchdog does with a session it has flagged as stalled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StallPolicy {
    /// Flag only: emit `TraceEvent::SessionStalled`, raise the gauge,
    /// degrade health — but leave the session alone (it may still
    /// recover, and the mediator's receive timeout will eventually
    /// restart it).
    #[default]
    Observe,
    /// Flag, then abort the session with [`crate::CoreError::Stalled`]
    /// so its worker slot (and parked-connection entry) is reclaimed.
    /// The root span closes, completing the trace; the failure counts
    /// under stage `"stalled"`.
    Abort,
}

/// Stall-watchdog configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// How long a session may sit awaiting a receive before it is
    /// flagged. Must be shorter than the mediator's receive timeout to
    /// fire before the timeout restarts the traversal (the watchdog
    /// clamps itself to that invariant at deploy time).
    pub stall_after: Duration,
    /// What to do with a flagged session.
    pub policy: StallPolicy,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stall_after: Duration::from_secs(10),
            policy: StallPolicy::Observe,
        }
    }
}

/// Everything `Mediator::enable_ops` installs: window shape, watchdog
/// policy, and health thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpsConfig {
    /// Sliding-window shape for rate aggregation.
    pub window: WindowConfig,
    /// Stall watchdog; `None` disables the sweep (windows and health
    /// still work, minus the stalled-session signal).
    pub watchdog: Option<WatchdogConfig>,
    /// Health-check thresholds.
    pub thresholds: HealthThresholds,
}

impl OpsConfig {
    /// Observe-only ops plane with default window and thresholds and a
    /// watchdog flagging sessions silent for `stall_after`.
    pub fn watching(stall_after: Duration) -> OpsConfig {
        OpsConfig {
            watchdog: Some(WatchdogConfig {
                stall_after,
                policy: StallPolicy::Observe,
            }),
            ..OpsConfig::default()
        }
    }

    /// Like [`OpsConfig::watching`], but stalled sessions are aborted so
    /// their worker slots are reclaimed.
    pub fn aborting(stall_after: Duration) -> OpsConfig {
        OpsConfig {
            watchdog: Some(WatchdogConfig {
                stall_after,
                policy: StallPolicy::Abort,
            }),
            ..OpsConfig::default()
        }
    }
}

/// The operations plane a deployed host threads through to its drivers:
/// the shared window aggregator, the stall watchdog's policy and live
/// gauge, the session directory, and the sink the watchdog emits gauge
/// updates through. Built once per deployment from the mediator's
/// [`OpsConfig`]; hosts and drivers share it behind an `Arc`.
pub(crate) struct OpsRuntime {
    pub window: Arc<WindowAggregator>,
    pub thresholds: HealthThresholds,
    pub watchdog: Option<WatchdogConfig>,
    pub directory: SessionDirectory,
    pub sink: Arc<dyn TelemetrySink>,
    stalled_now: AtomicUsize,
}

impl OpsRuntime {
    pub(crate) fn new(
        window: Arc<WindowAggregator>,
        thresholds: HealthThresholds,
        watchdog: Option<WatchdogConfig>,
        sink: Arc<dyn TelemetrySink>,
    ) -> OpsRuntime {
        OpsRuntime {
            window,
            thresholds,
            watchdog,
            directory: SessionDirectory::new(),
            sink,
            stalled_now: AtomicUsize::new(0),
        }
    }

    /// Sessions flagged stalled right now.
    pub(crate) fn stalled_now(&self) -> usize {
        self.stalled_now.load(Ordering::SeqCst)
    }

    /// Raises the stalled gauge by one (a stall episode began) and emits
    /// the new count so recorder gauges track it.
    pub(crate) fn stall_raised(&self) {
        let count = self.stalled_now.fetch_add(1, Ordering::SeqCst) + 1;
        self.sink.record(&TraceEvent::StalledSessions { count });
    }

    /// Lowers the stalled gauge by one (the episode ended: bytes arrived,
    /// the traversal timed out and restarted, or the session was
    /// aborted). Calls are balanced against [`OpsRuntime::stall_raised`].
    pub(crate) fn stall_lowered(&self) {
        let count = self
            .stalled_now
            .fetch_sub(1, Ordering::SeqCst)
            .saturating_sub(1);
        self.sink.record(&TraceEvent::StalledSessions { count });
    }
}

/// What one live session is doing right now, as shown by the `sessions`
/// diagnostics selector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionEntry {
    /// Host-assigned session number (accept order).
    pub id: u64,
    /// The automaton state the session is currently at.
    pub state: String,
    /// The color the session is awaiting a receive on, if any.
    pub awaiting: Option<u8>,
    /// When the entry last changed (entered its current state /
    /// started awaiting).
    pub since: Instant,
    /// Whether the stall watchdog has flagged it.
    pub stalled: bool,
}

/// A live registry of in-flight sessions, maintained by the hosts and
/// rendered by the diagnostics endpoint. Lock scope is a handful of map
/// operations; only coordinator/driver threads touch it.
#[derive(Debug, Default)]
pub struct SessionDirectory {
    entries: Mutex<HashMap<u64, SessionEntry>>,
}

impl SessionDirectory {
    /// An empty directory.
    pub fn new() -> SessionDirectory {
        SessionDirectory::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, SessionEntry>> {
        self.entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Registers or updates a session's entry.
    pub fn upsert(&self, entry: SessionEntry) {
        self.lock().insert(entry.id, entry);
    }

    /// Marks a session stalled (no-op if it is not registered).
    pub fn mark_stalled(&self, id: u64) {
        if let Some(entry) = self.lock().get_mut(&id) {
            entry.stalled = true;
        }
    }

    /// Removes a session (finished, failed, or aborted).
    pub fn remove(&self, id: u64) {
        self.lock().remove(&id);
    }

    /// Sessions currently flagged stalled.
    pub fn stalled_count(&self) -> u64 {
        self.lock().values().filter(|e| e.stalled).count() as u64
    }

    /// Live session count.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Renders the directory for the `sessions` diagnostics selector:
    /// one `session <id> state <state> [awaiting <color>] age <secs>s
    /// [stalled]` line per live session (sorted by id), bracketed by a
    /// count header and `end`.
    pub fn render_text(&self) -> String {
        let mut entries: Vec<SessionEntry> = self.lock().values().cloned().collect();
        entries.sort_by_key(|e| e.id);
        let mut out = format!("starlink-sessions {}\n", entries.len());
        let now = Instant::now();
        for e in &entries {
            out.push_str(&format!("session {} state {}", e.id, e.state));
            if let Some(color) = e.awaiting {
                out.push_str(&format!(" awaiting {color}"));
            }
            let age = now.saturating_duration_since(e.since);
            out.push_str(&format!(" age {:.1}s", age.as_secs_f64()));
            if e.stalled {
                out.push_str(" stalled");
            }
            out.push('\n');
        }
        out.push_str("end\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, stalled: bool) -> SessionEntry {
        SessionEntry {
            id,
            state: format!("s{id}"),
            awaiting: Some(1),
            since: Instant::now(),
            stalled,
        }
    }

    #[test]
    fn directory_tracks_upsert_mark_remove() {
        let dir = SessionDirectory::new();
        assert!(dir.is_empty());
        dir.upsert(entry(1, false));
        dir.upsert(entry(2, false));
        assert_eq!(dir.len(), 2);
        assert_eq!(dir.stalled_count(), 0);
        dir.mark_stalled(2);
        dir.mark_stalled(99); // unknown: no-op
        assert_eq!(dir.stalled_count(), 1);
        dir.remove(2);
        assert_eq!(dir.len(), 1);
        assert_eq!(dir.stalled_count(), 0);
    }

    #[test]
    fn render_lists_sessions_in_id_order() {
        let dir = SessionDirectory::new();
        dir.upsert(entry(7, true));
        dir.upsert(entry(3, false));
        let text = dir.render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "starlink-sessions 2");
        assert!(lines[1].starts_with("session 3 state s3 awaiting 1 age "));
        assert!(lines[2].starts_with("session 7 state s7 awaiting 1 age "));
        assert!(lines[2].ends_with(" stalled"));
        assert_eq!(lines[3], "end");
    }

    #[test]
    fn ops_config_presets_set_policy() {
        let observe = OpsConfig::watching(Duration::from_millis(100));
        assert_eq!(observe.watchdog.unwrap().policy, StallPolicy::Observe);
        let abort = OpsConfig::aborting(Duration::from_millis(100));
        assert_eq!(abort.watchdog.unwrap().policy, StallPolicy::Abort);
        assert_eq!(OpsConfig::default().watchdog, None);
    }
}
