//! Protocol binding rules (paper §4.3, Fig. 7).
//!
//! An API-usage automaton is abstract: its transitions carry application
//! actions (`Add(x, y)`). To execute it, each color is bound to a
//! protocol via rules stating (i) where the **action label** lives in the
//! protocol message (`?Action = GIOPRequest → operation`) and (ii) where
//! **parameters** live (`ParameterN = GIOPRequest → ParameterArray →
//! ParameterN`). This module implements those rules bidirectionally:
//! `bind_*` turns application messages into protocol messages,
//! `unbind_*` recovers application messages from parsed protocol
//! messages.
//!
//! Application-level convention: an operation's reply message is named
//! `<operation>.reply`.

use crate::error::CoreError;
use crate::Result;
use starlink_message::{AbstractMessage, Field, FieldPath, Value};

/// Where a request's action label is encoded.
#[derive(Debug, Clone, PartialEq)]
pub enum ActionRule {
    /// A field of the protocol message holds the label verbatim
    /// (GIOP `Operation`, XML-RPC `MethodName`, SOAP operation element).
    Field(FieldPath),
    /// REST: the label maps to an HTTP method + path route.
    Rest {
        /// Field holding the HTTP method (`Method`).
        method_field: FieldPath,
        /// Field holding the request target (`RequestURI`).
        uri_field: FieldPath,
        /// Route table, matched in order (first prefix match wins on
        /// unbind).
        routes: Vec<RestRoute>,
    },
}

/// One REST route: an application action ↔ method + path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestRoute {
    /// The application action label.
    pub action: String,
    /// HTTP method (`GET`, `POST`, …).
    pub method: String,
    /// Path (no query string), e.g. `/data/feed/api/all`.
    pub path: String,
}

/// How a reply is associated with its action.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplyAction {
    /// A field holds the action label (SOAP reply's method name).
    Field(FieldPath),
    /// A field holds the action label decorated with a suffix — the
    /// WSDL-style `<op>Response` convention. On compose the suffix is
    /// appended; on parse it is stripped.
    FieldWithSuffix {
        /// The field holding the decorated label.
        path: FieldPath,
        /// The decoration (`"Response"`).
        suffix: String,
    },
    /// The reply is correlated with the pending request (GIOP's
    /// `RequestID`, HTTP's request/response pairing): its application
    /// name is `<pending-op>.reply`.
    Correlated,
}

/// How application parameters map onto protocol fields.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamRule {
    /// Parameters in order into an array field (GIOP `ParameterArray`,
    /// SOAP `Params`).
    PositionalArray(FieldPath),
    /// Positional, but each item wrapped in a one-field struct
    /// (XML-RPC's `<param><value>…</value></param>`: `array="Params"`,
    /// `item="value"`).
    Wrapped {
        /// The array field.
        array: FieldPath,
        /// The wrapper sub-field name.
        item: String,
    },
    /// Parameters by name, optionally under a struct prefix; `None`
    /// prefix = top-level protocol fields (layered REST bodies).
    NamedFields(Option<FieldPath>),
    /// REST request parameters as a query string appended to the URI.
    Query {
        /// The URI field to append `?k=v&…` to.
        uri_field: FieldPath,
    },
    /// The operation carries no parameters at this direction.
    None,
    /// Different rules per application action (REST APIs mix query-string
    /// GETs with XML-body POSTs). Matched on the action label (reply
    /// rules match with the `.reply` suffix stripped); unmatched actions
    /// use the default rule.
    PerAction {
        /// `(action label, rule)` pairs, first match wins.
        rules: Vec<(String, ParamRule)>,
        /// Fallback rule.
        default: Box<ParamRule>,
    },
}

/// A complete binding of application actions onto one protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolBinding {
    /// Human-readable protocol name (`IIOP`, `SOAP`, `XML-RPC`, `REST`).
    pub name: String,
    /// Registry name of the MDL codec for this protocol.
    pub mdl: String,
    /// Protocol message variant used for requests.
    pub request_message: String,
    /// Protocol message variant used for replies.
    pub reply_message: String,
    /// Where the request action label goes.
    pub request_action: ActionRule,
    /// How replies relate to actions.
    pub reply_action: ReplyAction,
    /// Parameter mapping for requests.
    pub request_params: ParamRule,
    /// Parameter mapping for replies.
    pub reply_params: ParamRule,
    /// Correlation field echoed from request to reply (GIOP
    /// `RequestID`), applied on both messages.
    pub correlation: Option<FieldPath>,
    /// Constant protocol fields set on requests when absent (HTTP
    /// `Version`, `Headers`, a fixed GIOP `ObjectKey`, …).
    pub request_defaults: Vec<(FieldPath, Value)>,
    /// Constant protocol fields set on replies when absent (HTTP status
    /// line parts).
    pub reply_defaults: Vec<(FieldPath, Value)>,
    /// Per-action request message variant overrides (a REST `addComment`
    /// composes an XML-body variant while searches compose plain GETs).
    pub request_message_overrides: Vec<(String, String)>,
    /// Per-application-reply-name protocol variant overrides.
    pub reply_message_overrides: Vec<(String, String)>,
}

impl ProtocolBinding {
    /// Creates a binding with the common RPC defaults: action label in an
    /// `Operation` field, correlated replies, no parameters. Configure
    /// with the `with_*` builder methods.
    pub fn new(
        name: impl Into<String>,
        mdl: impl Into<String>,
        request_message: impl Into<String>,
        reply_message: impl Into<String>,
    ) -> ProtocolBinding {
        ProtocolBinding {
            name: name.into(),
            mdl: mdl.into(),
            request_message: request_message.into(),
            reply_message: reply_message.into(),
            request_action: ActionRule::Field(FieldPath::name("Operation")),
            reply_action: ReplyAction::Correlated,
            request_params: ParamRule::None,
            reply_params: ParamRule::None,
            correlation: None,
            request_defaults: Vec::new(),
            reply_defaults: Vec::new(),
            request_message_overrides: Vec::new(),
            reply_message_overrides: Vec::new(),
        }
    }

    /// Builder-style: sets the request action rule.
    #[must_use]
    pub fn with_request_action(mut self, rule: ActionRule) -> ProtocolBinding {
        self.request_action = rule;
        self
    }

    /// Builder-style: sets the reply action rule.
    #[must_use]
    pub fn with_reply_action(mut self, rule: ReplyAction) -> ProtocolBinding {
        self.reply_action = rule;
        self
    }

    /// Builder-style: sets both parameter rules.
    #[must_use]
    pub fn with_params(mut self, request: ParamRule, reply: ParamRule) -> ProtocolBinding {
        self.request_params = request;
        self.reply_params = reply;
        self
    }

    /// Builder-style: sets the correlation field.
    #[must_use]
    pub fn with_correlation(mut self, path: FieldPath) -> ProtocolBinding {
        self.correlation = Some(path);
        self
    }

    /// Builder-style: adds a request default.
    #[must_use]
    pub fn with_request_default(mut self, path: FieldPath, value: Value) -> ProtocolBinding {
        self.request_defaults.push((path, value));
        self
    }

    /// Builder-style: adds a reply default.
    #[must_use]
    pub fn with_reply_default(mut self, path: FieldPath, value: Value) -> ProtocolBinding {
        self.reply_defaults.push((path, value));
        self
    }

    /// Builder-style: overrides the request message variant for one
    /// action.
    #[must_use]
    pub fn with_request_message_override(
        mut self,
        action: impl Into<String>,
        message: impl Into<String>,
    ) -> ProtocolBinding {
        self.request_message_overrides
            .push((action.into(), message.into()));
        self
    }

    /// Builder-style: overrides the reply message variant for one
    /// application reply name.
    #[must_use]
    pub fn with_reply_message_override(
        mut self,
        reply_name: impl Into<String>,
        message: impl Into<String>,
    ) -> ProtocolBinding {
        self.reply_message_overrides
            .push((reply_name.into(), message.into()));
        self
    }

    fn request_variant(&self, action: &str) -> &str {
        self.request_message_overrides
            .iter()
            .find(|(a, _)| a == action)
            .map(|(_, m)| m.as_str())
            .unwrap_or(&self.request_message)
    }

    fn reply_variant(&self, reply_name: &str) -> &str {
        self.reply_message_overrides
            .iter()
            .find(|(a, _)| a == reply_name)
            .map(|(_, m)| m.as_str())
            .unwrap_or(&self.reply_message)
    }

    fn resolve_rule<'r>(rule: &'r ParamRule, action: &str) -> &'r ParamRule {
        match rule {
            ParamRule::PerAction { rules, default } => {
                let op = action.strip_suffix(".reply").unwrap_or(action);
                rules
                    .iter()
                    .find(|(a, _)| a == op || a == action)
                    .map(|(_, r)| r)
                    .unwrap_or(default)
            }
            other => other,
        }
    }

    /// Binds an application request to a protocol message.
    ///
    /// # Errors
    ///
    /// [`CoreError::Binding`] when the action has no route or values
    /// cannot be placed.
    pub fn bind_request(&self, app: &AbstractMessage) -> Result<AbstractMessage> {
        let mut proto = AbstractMessage::new(self.request_variant(app.name()));
        match &self.request_action {
            ActionRule::Field(path) => {
                proto.set_path(path, Value::Str(app.name().to_owned()))?;
            }
            ActionRule::Rest {
                method_field,
                uri_field,
                routes,
            } => {
                let route = routes
                    .iter()
                    .find(|r| r.action == app.name())
                    .ok_or_else(|| CoreError::Binding {
                        message: format!("no REST route for action `{}`", app.name()),
                    })?;
                proto.set_path(method_field, Value::Str(route.method.clone()))?;
                proto.set_path(uri_field, Value::Str(route.path.clone()))?;
            }
        }
        let rule = Self::resolve_rule(&self.request_params, app.name());
        self.place_params(&mut proto, app, rule)?;
        self.apply_defaults(&mut proto, &self.request_defaults)?;
        Ok(proto)
    }

    /// Recovers the application request from a parsed protocol message.
    /// `templates` supplies parameter names for positional rules: it maps
    /// action labels to application request templates.
    ///
    /// # Errors
    ///
    /// [`CoreError::Binding`] when the action cannot be identified.
    pub fn unbind_request<'t>(
        &self,
        proto: &AbstractMessage,
        templates: impl Fn(&str) -> Option<&'t AbstractMessage>,
    ) -> Result<AbstractMessage> {
        let action = match &self.request_action {
            ActionRule::Field(path) => proto.get_path(path).map_err(CoreError::from)?.to_text(),
            ActionRule::Rest {
                method_field,
                uri_field,
                routes,
            } => {
                let method = proto.get_path(method_field)?.to_text();
                let uri = proto.get_path(uri_field)?.to_text();
                let path_only = uri.split('?').next().unwrap_or("");
                routes
                    .iter()
                    .find(|r| r.method == method && path_only.starts_with(&r.path))
                    .map(|r| r.action.clone())
                    .ok_or_else(|| CoreError::Binding {
                        message: format!("no REST route matches {method} {uri}"),
                    })?
            }
        };
        let template = templates(&action);
        let mut app = AbstractMessage::new(&action);
        let rule = Self::resolve_rule(&self.request_params, &action);
        self.extract_params(&mut app, proto, rule, template)?;
        Ok(app)
    }

    /// Binds an application reply to a protocol message. `request_proto`
    /// is the protocol request being answered (for correlation echo).
    ///
    /// # Errors
    ///
    /// [`CoreError::Binding`] on placement failures.
    pub fn bind_reply(
        &self,
        app: &AbstractMessage,
        request_proto: Option<&AbstractMessage>,
    ) -> Result<AbstractMessage> {
        let mut proto = AbstractMessage::new(self.reply_variant(app.name()));
        match &self.reply_action {
            ReplyAction::Field(path) => {
                // Strip the `.reply` suffix for the wire label.
                let label = app.name().strip_suffix(".reply").unwrap_or(app.name());
                proto.set_path(path, Value::Str(label.to_owned()))?;
            }
            ReplyAction::FieldWithSuffix { path, suffix } => {
                let label = app.name().strip_suffix(".reply").unwrap_or(app.name());
                proto.set_path(path, Value::Str(format!("{label}{suffix}")))?;
            }
            ReplyAction::Correlated => {}
        }
        if let (Some(corr), Some(req)) = (&self.correlation, request_proto) {
            if let Ok(v) = req.get_path(corr) {
                proto.set_path(corr, v.clone())?;
            }
        }
        let rule = Self::resolve_rule(&self.reply_params, app.name());
        self.place_params(&mut proto, app, rule)?;
        self.apply_defaults(&mut proto, &self.reply_defaults)?;
        Ok(proto)
    }

    /// Recovers the application reply from a parsed protocol message.
    /// `pending_op` names the operation being answered (correlated
    /// replies); `template` supplies positional parameter names.
    ///
    /// # Errors
    ///
    /// [`CoreError::Binding`] when the reply cannot be attributed.
    pub fn unbind_reply(
        &self,
        proto: &AbstractMessage,
        pending_op: &str,
        template: Option<&AbstractMessage>,
    ) -> Result<AbstractMessage> {
        let name = match &self.reply_action {
            ReplyAction::Field(path) => {
                let label = proto.get_path(path)?.to_text();
                format!("{label}.reply")
            }
            ReplyAction::FieldWithSuffix { path, suffix } => {
                let label = proto.get_path(path)?.to_text();
                let label = label.strip_suffix(suffix.as_str()).unwrap_or(&label);
                format!("{label}.reply")
            }
            ReplyAction::Correlated => format!("{pending_op}.reply"),
        };
        let mut app = AbstractMessage::new(&name);
        let rule = Self::resolve_rule(&self.reply_params, &name);
        self.extract_params(&mut app, proto, rule, template)?;
        Ok(app)
    }

    fn apply_defaults(
        &self,
        proto: &mut AbstractMessage,
        defaults: &[(FieldPath, Value)],
    ) -> Result<()> {
        for (path, value) in defaults {
            if proto.get_path(path).is_err() {
                proto.set_path(path, value.clone())?;
            }
        }
        Ok(())
    }

    fn place_params(
        &self,
        proto: &mut AbstractMessage,
        app: &AbstractMessage,
        rule: &ParamRule,
    ) -> Result<()> {
        match rule {
            ParamRule::PerAction { .. } => {
                let rule = Self::resolve_rule(rule, app.name());
                self.place_params(proto, app, rule)
            }
            ParamRule::None => Ok(()),
            ParamRule::PositionalArray(path) => {
                let items: Vec<Value> = app.fields().iter().map(|f| f.value().clone()).collect();
                proto.set_path(path, Value::Array(items))?;
                Ok(())
            }
            ParamRule::Wrapped { array, item } => {
                let items: Vec<Value> = app
                    .fields()
                    .iter()
                    .map(|f| Value::Struct(vec![Field::new(item.clone(), f.value().clone())]))
                    .collect();
                proto.set_path(array, Value::Array(items))?;
                Ok(())
            }
            ParamRule::NamedFields(prefix) => {
                for f in app.fields() {
                    match prefix {
                        None => proto.set_field(f.label(), f.value().clone()),
                        Some(p) => {
                            proto.set_path(&p.child(f.label()), f.value().clone())?;
                        }
                    }
                }
                Ok(())
            }
            ParamRule::Query { uri_field } => {
                let base = proto.get_path(uri_field)?.to_text();
                let mut uri = base;
                let mut first = !uri.contains('?');
                for f in app.fields() {
                    if f.value().is_null() {
                        continue;
                    }
                    uri.push(if first { '?' } else { '&' });
                    first = false;
                    uri.push_str(&percent_encode(f.label()));
                    uri.push('=');
                    uri.push_str(&percent_encode(&f.value().to_text()));
                }
                proto.set_path(uri_field, Value::Str(uri))?;
                Ok(())
            }
        }
    }

    fn extract_params(
        &self,
        app: &mut AbstractMessage,
        proto: &AbstractMessage,
        rule: &ParamRule,
        template: Option<&AbstractMessage>,
    ) -> Result<()> {
        match rule {
            ParamRule::PerAction { .. } => {
                let rule = Self::resolve_rule(rule, app.name());
                self.extract_params(app, proto, rule, template)
            }
            ParamRule::None => Ok(()),
            ParamRule::PositionalArray(path) | ParamRule::Wrapped { array: path, .. } => {
                let items = match proto.get_path(path) {
                    Ok(Value::Array(items)) => items.clone(),
                    Ok(other) => vec![other.clone()],
                    Err(_) => Vec::new(),
                };
                let unwrap_item = |v: &Value| -> Value {
                    if let ParamRule::Wrapped { item, .. } = rule {
                        if let Value::Struct(fields) = v {
                            if let Some(f) = fields.iter().find(|f| f.label() == item.as_str()) {
                                return f.value().clone();
                            }
                        }
                    }
                    v.clone()
                };
                match template {
                    Some(t) => {
                        for (i, tf) in t.fields().iter().enumerate() {
                            match items.get(i) {
                                Some(v) => app.set_field(tf.label(), unwrap_item(v)),
                                None if !tf.is_mandatory() => {}
                                None => {
                                    return Err(CoreError::Binding {
                                        message: format!(
                                            "missing positional parameter {} (`{}`)",
                                            i,
                                            tf.label()
                                        ),
                                    })
                                }
                            }
                        }
                    }
                    None => {
                        // No template: synthesize param1..paramN.
                        for (i, v) in items.iter().enumerate() {
                            app.set_field(&format!("param{}", i + 1), unwrap_item(v));
                        }
                    }
                }
                Ok(())
            }
            ParamRule::NamedFields(prefix) => {
                let source_fields: Vec<Field> = match prefix {
                    None => proto.fields().to_vec(),
                    Some(p) => match proto.get_path(p) {
                        Ok(Value::Struct(fields)) => fields.clone(),
                        _ => Vec::new(),
                    },
                };
                match template {
                    Some(t) => {
                        for tf in t.fields() {
                            if let Some(f) = source_fields.iter().find(|f| f.label() == tf.label())
                            {
                                app.set_field(tf.label(), f.value().clone());
                            } else if tf.is_mandatory() {
                                return Err(CoreError::Binding {
                                    message: format!("missing named parameter `{}`", tf.label()),
                                });
                            }
                        }
                    }
                    None => {
                        for f in source_fields {
                            app.set_field(f.label(), f.value().clone());
                        }
                    }
                }
                Ok(())
            }
            ParamRule::Query { uri_field } => {
                let uri = proto.get_path(uri_field)?.to_text();
                if let Some(q) = uri.split_once('?').map(|(_, q)| q) {
                    for pair in q.split('&').filter(|s| !s.is_empty()) {
                        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                        app.set_field(&percent_decode(k), Value::Str(percent_decode(v)));
                    }
                }
                Ok(())
            }
        }
    }
}

/// Percent-encodes a query-string component (RFC 3986 unreserved set
/// passes through).
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char)
            }
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

/// Decodes percent-escapes (and `+` as space, tolerating form encoding).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).unwrap_or("");
                match u8::from_str_radix(hex, 16) {
                    Ok(v) => {
                        out.push(v);
                        i += 3;
                    }
                    Err(_) => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn giop_binding() -> ProtocolBinding {
        // Fig. 7's IIOP binding: action = GIOPRequest→Operation,
        // ParameterN = ParameterArray→ParameterN, replies correlated by
        // RequestID.
        ProtocolBinding {
            name: "IIOP".into(),
            mdl: "GIOP.mdl".into(),
            request_message: "GIOPRequest".into(),
            reply_message: "GIOPReply".into(),
            request_action: ActionRule::Field("Operation".parse().unwrap()),
            reply_action: ReplyAction::Correlated,
            request_params: ParamRule::PositionalArray("ParameterArray".parse().unwrap()),
            reply_params: ParamRule::PositionalArray("ParameterArray".parse().unwrap()),
            correlation: Some("RequestID".parse().unwrap()),
            request_defaults: Vec::new(),
            reply_defaults: Vec::new(),
            request_message_overrides: Vec::new(),
            reply_message_overrides: Vec::new(),
        }
    }

    fn add_app() -> AbstractMessage {
        let mut m = AbstractMessage::new("Add");
        m.set_field("x", Value::Int(3));
        m.set_field("y", Value::Int(4));
        m
    }

    #[test]
    fn fig7_bind_request_to_giop() {
        let b = giop_binding();
        let proto = b.bind_request(&add_app()).unwrap();
        assert_eq!(proto.name(), "GIOPRequest");
        assert_eq!(proto.get("Operation").unwrap().as_str(), Some("Add"));
        assert_eq!(
            proto.get("ParameterArray").unwrap().as_array().unwrap(),
            &[Value::Int(3), Value::Int(4)]
        );
    }

    #[test]
    fn fig7_unbind_request_with_template() {
        let b = giop_binding();
        let proto = b.bind_request(&add_app()).unwrap();
        let template = add_app();
        let app = b
            .unbind_request(&proto, |action| (action == "Add").then_some(&template))
            .unwrap();
        assert_eq!(app.name(), "Add");
        assert_eq!(app.get("x").unwrap().as_int(), Some(3));
        assert_eq!(app.get("y").unwrap().as_int(), Some(4));
    }

    #[test]
    fn correlated_reply_roundtrip() {
        let b = giop_binding();
        let mut req_proto = b.bind_request(&add_app()).unwrap();
        req_proto.set_field("RequestID", Value::UInt(77));
        let mut app_reply = AbstractMessage::new("Add.reply");
        app_reply.set_field("z", Value::Int(7));
        let proto_reply = b.bind_reply(&app_reply, Some(&req_proto)).unwrap();
        assert_eq!(proto_reply.get("RequestID").unwrap().as_uint(), Some(77));
        let mut template = AbstractMessage::new("Add.reply");
        template.set_field("z", Value::Null);
        let back = b
            .unbind_reply(&proto_reply, "Add", Some(&template))
            .unwrap();
        assert_eq!(back.name(), "Add.reply");
        assert_eq!(back.get("z").unwrap().as_int(), Some(7));
    }

    #[test]
    fn wrapped_params_for_xmlrpc() {
        let b = ProtocolBinding {
            name: "XML-RPC".into(),
            mdl: "XMLRPC.mdl".into(),
            request_message: "MethodCall".into(),
            reply_message: "MethodResponse".into(),
            request_action: ActionRule::Field("MethodName".parse().unwrap()),
            reply_action: ReplyAction::Correlated,
            request_params: ParamRule::Wrapped {
                array: "Params".parse().unwrap(),
                item: "value".into(),
            },
            reply_params: ParamRule::Wrapped {
                array: "Params".parse().unwrap(),
                item: "value".into(),
            },
            correlation: None,
            request_defaults: Vec::new(),
            reply_defaults: Vec::new(),
            request_message_overrides: Vec::new(),
            reply_message_overrides: Vec::new(),
        };
        let mut app = AbstractMessage::new("flickr.photos.search");
        app.set_field("text", Value::from("tree"));
        let proto = b.bind_request(&app).unwrap();
        let params = proto.get("Params").unwrap().as_array().unwrap();
        match &params[0] {
            Value::Struct(fields) => {
                assert_eq!(fields[0].label(), "value");
                assert_eq!(fields[0].value().as_str(), Some("tree"));
            }
            other => panic!("unexpected {other:?}"),
        }
        let mut template = AbstractMessage::new("flickr.photos.search");
        template.set_field("text", Value::Null);
        let back = b
            .unbind_request(&proto, |a| {
                (a == "flickr.photos.search").then_some(&template)
            })
            .unwrap();
        assert_eq!(back.get("text").unwrap().as_str(), Some("tree"));
    }

    #[test]
    fn rest_route_and_query_binding() {
        let b = ProtocolBinding {
            name: "REST".into(),
            mdl: "HTTP.mdl".into(),
            request_message: "HTTPRequest".into(),
            reply_message: "HTTPResponse".into(),
            request_action: ActionRule::Rest {
                method_field: "Method".parse().unwrap(),
                uri_field: "RequestURI".parse().unwrap(),
                routes: vec![RestRoute {
                    action: "picasa.photos.search".into(),
                    method: "GET".into(),
                    path: "/data/feed/api/all".into(),
                }],
            },
            reply_action: ReplyAction::Correlated,
            request_params: ParamRule::Query {
                uri_field: "RequestURI".parse().unwrap(),
            },
            reply_params: ParamRule::NamedFields(None),
            correlation: None,
            request_defaults: Vec::new(),
            reply_defaults: Vec::new(),
            request_message_overrides: Vec::new(),
            reply_message_overrides: Vec::new(),
        };
        let mut app = AbstractMessage::new("picasa.photos.search");
        app.set_field("q", Value::from("tall tree"));
        app.set_field("max-results", Value::Int(3));
        let proto = b.bind_request(&app).unwrap();
        assert_eq!(proto.get("Method").unwrap().as_str(), Some("GET"));
        assert_eq!(
            proto.get("RequestURI").unwrap().as_str(),
            Some("/data/feed/api/all?q=tall%20tree&max-results=3")
        );
        let back = b.unbind_request(&proto, |_| None).unwrap();
        assert_eq!(back.name(), "picasa.photos.search");
        assert_eq!(back.get("q").unwrap().as_str(), Some("tall tree"));
        assert_eq!(back.get("max-results").unwrap().as_str(), Some("3"));
    }

    #[test]
    fn rest_unknown_route_is_an_error() {
        let b = ProtocolBinding {
            name: "REST".into(),
            mdl: "HTTP.mdl".into(),
            request_message: "HTTPRequest".into(),
            reply_message: "HTTPResponse".into(),
            request_action: ActionRule::Rest {
                method_field: "Method".parse().unwrap(),
                uri_field: "RequestURI".parse().unwrap(),
                routes: vec![],
            },
            reply_action: ReplyAction::Correlated,
            request_params: ParamRule::None,
            reply_params: ParamRule::None,
            correlation: None,
            request_defaults: Vec::new(),
            reply_defaults: Vec::new(),
            request_message_overrides: Vec::new(),
            reply_message_overrides: Vec::new(),
        };
        assert!(matches!(
            b.bind_request(&AbstractMessage::new("nope")),
            Err(CoreError::Binding { .. })
        ));
    }

    #[test]
    fn named_fields_with_prefix() {
        let b = ProtocolBinding {
            name: "T".into(),
            mdl: "t".into(),
            request_message: "Req".into(),
            reply_message: "Rep".into(),
            request_action: ActionRule::Field("op".parse().unwrap()),
            reply_action: ReplyAction::Correlated,
            request_params: ParamRule::NamedFields(Some("body".parse().unwrap())),
            reply_params: ParamRule::None,
            correlation: None,
            request_defaults: Vec::new(),
            reply_defaults: Vec::new(),
            request_message_overrides: Vec::new(),
            reply_message_overrides: Vec::new(),
        };
        let mut app = AbstractMessage::new("do");
        app.set_field("k", Value::from("v"));
        let proto = b.bind_request(&app).unwrap();
        assert_eq!(
            proto.get_path(&"body.k".parse().unwrap()).unwrap().as_str(),
            Some("v")
        );
        let mut template = AbstractMessage::new("do");
        template.set_field("k", Value::Null);
        let back = b
            .unbind_request(&proto, |a| (a == "do").then_some(&template))
            .unwrap();
        assert_eq!(back.get("k").unwrap().as_str(), Some("v"));
    }

    #[test]
    fn missing_mandatory_named_param_detected() {
        let b = ProtocolBinding {
            name: "T".into(),
            mdl: "t".into(),
            request_message: "Req".into(),
            reply_message: "Rep".into(),
            request_action: ActionRule::Field("op".parse().unwrap()),
            reply_action: ReplyAction::Correlated,
            request_params: ParamRule::NamedFields(None),
            reply_params: ParamRule::None,
            correlation: None,
            request_defaults: Vec::new(),
            reply_defaults: Vec::new(),
            request_message_overrides: Vec::new(),
            reply_message_overrides: Vec::new(),
        };
        let mut proto = AbstractMessage::new("Req");
        proto.set_field("op", Value::from("do"));
        let mut template = AbstractMessage::new("do");
        template.set_field("needed", Value::Null);
        assert!(matches!(
            b.unbind_request(&proto, |a| (a == "do").then_some(&template)),
            Err(CoreError::Binding { .. })
        ));
    }

    #[test]
    fn percent_coding_roundtrip() {
        for s in ["plain", "with space", "a&b=c", "naïve café", "100%"] {
            assert_eq!(percent_decode(&percent_encode(s)), s);
        }
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn optional_positional_params_may_be_absent() {
        let b = giop_binding();
        let mut proto = AbstractMessage::new("GIOPRequest");
        proto.set_field("Operation", Value::from("op"));
        proto.set_field("ParameterArray", Value::Array(vec![Value::Int(1)]));
        let mut template = AbstractMessage::new("op");
        template.set_field("a", Value::Null);
        template.push_field(Field::optional("b", Value::Null));
        let app = b
            .unbind_request(&proto, |a| (a == "op").then_some(&template))
            .unwrap();
        assert_eq!(app.get("a").unwrap().as_int(), Some(1));
        assert!(app.get("b").is_none());
    }
}
