//! Property-based tests for message framing: frames survive arbitrary
//! stream fragmentation and concatenation.

use proptest::prelude::*;
use starlink_net::{Framing, HttpFraming, LengthPrefixFraming};

/// Extracts all frames from a buffer fed in arbitrary chunks, simulating
/// TCP segmentation: bytes arrive `chunk_len` at a time.
fn extract_chunked(framing: &dyn Framing, wire: &[u8], chunk_len: usize) -> Vec<Vec<u8>> {
    let mut buffer: Vec<u8> = Vec::new();
    let mut frames = Vec::new();
    for chunk in wire.chunks(chunk_len.max(1)) {
        buffer.extend_from_slice(chunk);
        while let Some((consumed, frame)) = framing.extract(&buffer).unwrap() {
            buffer.drain(..consumed);
            frames.push(frame);
        }
    }
    assert!(buffer.is_empty(), "no partial frame may remain");
    frames
}

proptest! {
    #[test]
    fn length_prefix_survives_fragmentation(
        frames in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..6),
        chunk_len in 1usize..32,
    ) {
        let framing = LengthPrefixFraming::default();
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend(framing.wrap(f));
        }
        let extracted = extract_chunked(&framing, &wire, chunk_len);
        prop_assert_eq!(extracted, frames);
    }

    #[test]
    fn http_framing_survives_fragmentation(
        bodies in proptest::collection::vec("[a-zA-Z0-9 ]{0,48}", 1..5),
        chunk_len in 1usize..24,
    ) {
        let framing = HttpFraming::default();
        let mut wire = Vec::new();
        let mut expected = Vec::new();
        for body in &bodies {
            let msg = format!(
                "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            );
            wire.extend_from_slice(msg.as_bytes());
            expected.push(msg.into_bytes());
        }
        let extracted = extract_chunked(&framing, &wire, chunk_len);
        prop_assert_eq!(extracted, expected);
    }

    #[test]
    fn length_prefix_never_yields_bogus_frames(junk in proptest::collection::vec(any::<u8>(), 0..32)) {
        // Arbitrary bytes either produce an error (frame-too-large) or
        // wait for more input — never a frame larger than the buffer.
        let framing = LengthPrefixFraming { max_frame: 1024 };
        if let Ok(Some((consumed, frame))) = framing.extract(&junk) {
            prop_assert!(consumed <= junk.len());
            prop_assert_eq!(frame.len() + 4, consumed);
        }
    }
}
