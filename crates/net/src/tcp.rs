use crate::connection::{Connection, Listener, Transport};
use crate::endpoint::Endpoint;
use crate::framing::{Framing, LengthPrefixFraming};
use crate::{NetError, Result};
use starlink_telemetry::{TelemetrySink, TraceEvent};
use std::io::{Read, Write};
use std::net::{TcpListener as StdListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// TCP transport with pluggable framing.
///
/// The default framing is the 4-byte length prefix; construct with
/// [`TcpTransport::with_framing`] (e.g. HTTP framing) to carry
/// self-delimiting protocols verbatim. Attach a telemetry sink with
/// [`TcpTransport::with_telemetry`] to count raw transport bytes
/// (framing overhead included) and extracted frames on every connection
/// the transport creates or accepts.
pub struct TcpTransport {
    framing: Arc<dyn Framing>,
    telemetry: Arc<dyn TelemetrySink>,
}

impl Default for TcpTransport {
    fn default() -> Self {
        TcpTransport::new()
    }
}

impl TcpTransport {
    /// Length-prefix framed TCP.
    pub fn new() -> TcpTransport {
        TcpTransport {
            framing: Arc::new(LengthPrefixFraming::default()),
            telemetry: starlink_telemetry::noop_sink(),
        }
    }

    /// TCP with custom framing.
    pub fn with_framing(framing: Arc<dyn Framing>) -> TcpTransport {
        TcpTransport {
            framing,
            telemetry: starlink_telemetry::noop_sink(),
        }
    }

    /// Reports `TransportBytesIn`/`TransportBytesOut`/`TransportFrameIn`
    /// events for every connection this transport creates or accepts.
    #[must_use]
    pub fn with_telemetry(mut self, sink: Arc<dyn TelemetrySink>) -> TcpTransport {
        self.telemetry = sink;
        self
    }
}

struct TcpConnection {
    stream: TcpStream,
    framing: Arc<dyn Framing>,
    telemetry: Arc<dyn TelemetrySink>,
    buffer: Vec<u8>,
    /// Scratch buffer for wrapping outgoing frames; its capacity is
    /// reused across `send` calls so steady-state sends don't allocate.
    write_buf: Vec<u8>,
    peer: String,
}

impl TcpConnection {
    fn new(
        stream: TcpStream,
        framing: Arc<dyn Framing>,
        telemetry: Arc<dyn TelemetrySink>,
    ) -> TcpConnection {
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".to_owned());
        TcpConnection {
            stream,
            framing,
            telemetry,
            buffer: Vec::new(),
            write_buf: Vec::new(),
            peer,
        }
    }

    fn read_frame(&mut self) -> Result<Vec<u8>> {
        loop {
            if let Some(frame) = self.extract_buffered()? {
                return Ok(frame);
            }
            let mut chunk = [0u8; 8192];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(NetError::Closed);
            }
            self.telemetry
                .record(&TraceEvent::TransportBytesIn { bytes: n });
            self.buffer.extend_from_slice(&chunk[..n]);
        }
    }

    fn extract_buffered(&mut self) -> Result<Option<Vec<u8>>> {
        let frame = self.framing.extract_from(&mut self.buffer)?;
        if let Some(frame) = &frame {
            self.telemetry
                .record(&TraceEvent::TransportFrameIn { bytes: frame.len() });
        }
        Ok(frame)
    }
}

impl Connection for TcpConnection {
    fn send(&mut self, data: &[u8]) -> Result<()> {
        let mut wire = std::mem::take(&mut self.write_buf);
        self.framing.wrap_into(data, &mut wire);
        let r = self
            .stream
            .write_all(&wire)
            .and_then(|()| self.stream.flush());
        if r.is_ok() {
            self.telemetry
                .record(&TraceEvent::TransportBytesOut { bytes: wire.len() });
        }
        self.write_buf = wire;
        r?;
        Ok(())
    }

    fn receive(&mut self) -> Result<Vec<u8>> {
        self.stream.set_read_timeout(None)?;
        self.read_frame()
    }

    fn receive_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>> {
        self.stream.set_read_timeout(Some(timeout))?;
        let r = self.read_frame();
        let _ = self.stream.set_read_timeout(None);
        r
    }

    fn try_receive(&mut self) -> Result<Option<Vec<u8>>> {
        if let Some(frame) = self.extract_buffered()? {
            return Ok(Some(frame));
        }
        // Drain whatever the kernel has without blocking, then re-try
        // the framer. A peer close only counts once buffered frames are
        // exhausted.
        self.stream.set_nonblocking(true)?;
        let drained = loop {
            let mut chunk = [0u8; 8192];
            match self.stream.read(&mut chunk) {
                Ok(0) => break Err(NetError::Closed),
                Ok(n) => {
                    self.telemetry
                        .record(&TraceEvent::TransportBytesIn { bytes: n });
                    self.buffer.extend_from_slice(&chunk[..n]);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => break Err(e.into()),
            }
        };
        let _ = self.stream.set_nonblocking(false);
        if let Some(frame) = self.extract_buffered()? {
            return Ok(Some(frame));
        }
        drained.map(|()| None)
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

struct TcpListenerWrapper {
    listener: StdListener,
    framing: Arc<dyn Framing>,
    telemetry: Arc<dyn TelemetrySink>,
    endpoint: Endpoint,
}

impl Listener for TcpListenerWrapper {
    fn accept(&self) -> Result<Box<dyn Connection>> {
        let (stream, _) = self.listener.accept()?;
        stream.set_nodelay(true).ok();
        stream.set_nonblocking(false).ok();
        Ok(Box::new(TcpConnection::new(
            stream,
            self.framing.clone(),
            self.telemetry.clone(),
        )))
    }

    fn try_accept(&self) -> Result<Option<Box<dyn Connection>>> {
        self.listener.set_nonblocking(true)?;
        let r = self.listener.accept();
        let _ = self.listener.set_nonblocking(false);
        match r {
            Ok((stream, _)) => {
                stream.set_nodelay(true).ok();
                // Accepted sockets inherit the listener's non-blocking
                // flag on some platforms; force blocking mode.
                stream.set_nonblocking(false)?;
                Ok(Some(Box::new(TcpConnection::new(
                    stream,
                    self.framing.clone(),
                    self.telemetry.clone(),
                ))))
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn local_endpoint(&self) -> Endpoint {
        self.endpoint.clone()
    }
}

impl Transport for TcpTransport {
    fn scheme(&self) -> &str {
        "tcp"
    }

    fn listen(&self, endpoint: &Endpoint) -> Result<Box<dyn Listener>> {
        let listener = StdListener::bind(endpoint.authority())?;
        let actual = listener.local_addr()?;
        Ok(Box::new(TcpListenerWrapper {
            listener,
            framing: self.framing.clone(),
            telemetry: self.telemetry.clone(),
            endpoint: Endpoint::tcp(actual.ip().to_string(), actual.port()),
        }))
    }

    fn connect(&self, endpoint: &Endpoint) -> Result<Box<dyn Connection>> {
        let stream = TcpStream::connect(endpoint.authority())?;
        stream.set_nodelay(true).ok();
        Ok(Box::new(TcpConnection::new(
            stream,
            self.framing.clone(),
            self.telemetry.clone(),
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framing::HttpFraming;

    #[test]
    fn loopback_roundtrip() {
        let t = TcpTransport::new();
        let listener = t.listen(&Endpoint::tcp("127.0.0.1", 0)).unwrap();
        let ep = listener.local_endpoint();
        let handle = std::thread::spawn(move || {
            let mut server = listener.accept().unwrap();
            let req = server.receive().unwrap();
            server.send(&[req.as_slice(), b" world"].concat()).unwrap();
        });
        let mut client = t.connect(&ep).unwrap();
        client.send(b"hello").unwrap();
        assert_eq!(client.receive().unwrap(), b"hello world");
        handle.join().unwrap();
    }

    #[test]
    fn http_framing_over_tcp() {
        let t = TcpTransport::with_framing(Arc::new(HttpFraming::default()));
        let listener = t.listen(&Endpoint::tcp("127.0.0.1", 0)).unwrap();
        let ep = listener.local_endpoint();
        let handle = std::thread::spawn(move || {
            let mut server = listener.accept().unwrap();
            let req = server.receive().unwrap();
            assert!(req.starts_with(b"POST /x HTTP/1.1"));
            server
                .send(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
                .unwrap();
        });
        let mut client = t.connect(&ep).unwrap();
        client
            .send(b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap();
        let resp = client.receive().unwrap();
        assert!(resp.ends_with(b"ok"));
        handle.join().unwrap();
    }

    #[test]
    fn timeout_reported() {
        let t = TcpTransport::new();
        let listener = t.listen(&Endpoint::tcp("127.0.0.1", 0)).unwrap();
        let ep = listener.local_endpoint();
        let mut client = t.connect(&ep).unwrap();
        assert!(matches!(
            client.receive_timeout(Duration::from_millis(20)),
            Err(NetError::Timeout)
        ));
    }

    #[test]
    fn connect_refused() {
        let t = TcpTransport::new();
        // Port 1 is essentially never open.
        assert!(t.connect(&Endpoint::tcp("127.0.0.1", 1)).is_err());
    }

    #[test]
    fn try_receive_polls_without_blocking() {
        let t = TcpTransport::new();
        let listener = t.listen(&Endpoint::tcp("127.0.0.1", 0)).unwrap();
        let ep = listener.local_endpoint();
        let mut client = t.connect(&ep).unwrap();
        let mut server = listener.accept().unwrap();
        assert!(server.try_receive().unwrap().is_none());
        client.send(b"one").unwrap();
        client.send(b"two").unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut got = Vec::new();
        while got.len() < 2 && std::time::Instant::now() < deadline {
            if let Some(frame) = server.try_receive().unwrap() {
                got.push(frame);
            } else {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        assert_eq!(got, vec![b"one".to_vec(), b"two".to_vec()]);
        // Blocking receive still works after polling.
        client.send(b"three").unwrap();
        assert_eq!(server.receive().unwrap(), b"three");
    }

    #[test]
    fn try_accept_polls_without_blocking() {
        let t = TcpTransport::new();
        let listener = t.listen(&Endpoint::tcp("127.0.0.1", 0)).unwrap();
        let ep = listener.local_endpoint();
        assert!(listener.try_accept().unwrap().is_none());
        let _client = t.connect(&ep).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut accepted = None;
        while accepted.is_none() && std::time::Instant::now() < deadline {
            accepted = listener.try_accept().unwrap();
            if accepted.is_none() {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        assert!(accepted.is_some());
    }

    #[test]
    fn transport_bytes_and_frames_are_counted() {
        let recorder = Arc::new(starlink_telemetry::Recorder::new());
        let t = TcpTransport::new().with_telemetry(recorder.clone());
        let listener = t.listen(&Endpoint::tcp("127.0.0.1", 0)).unwrap();
        let ep = listener.local_endpoint();
        let handle = std::thread::spawn(move || {
            let mut server = listener.accept().unwrap();
            let req = server.receive().unwrap();
            server.send(&req).unwrap();
        });
        let mut client = t.connect(&ep).unwrap();
        client.send(b"hello").unwrap();
        assert_eq!(client.receive().unwrap(), b"hello");
        handle.join().unwrap();

        let snap = TelemetrySink::snapshot(recorder.as_ref()).unwrap();
        // Client + server each sent one 5-byte payload + 4-byte length
        // prefix, and each read the peer's 9 wire bytes.
        assert_eq!(snap.counter("starlink_transport_bytes_out_total"), 18);
        assert_eq!(snap.counter("starlink_transport_bytes_in_total"), 18);
        assert_eq!(snap.counter("starlink_transport_frames_in_total"), 2);
    }

    #[test]
    fn peer_closed_detected() {
        let t = TcpTransport::new();
        let listener = t.listen(&Endpoint::tcp("127.0.0.1", 0)).unwrap();
        let ep = listener.local_endpoint();
        let mut client = t.connect(&ep).unwrap();
        let server = listener.accept().unwrap();
        drop(server);
        assert!(matches!(client.receive(), Err(NetError::Closed)));
    }
}
