use crate::connection::{Connection, Listener, Transport};
use crate::endpoint::Endpoint;
use crate::framing::{Framing, LengthPrefixFraming};
use crate::{NetError, Result};
use std::io::{Read, Write};
use std::net::{TcpListener as StdListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// TCP transport with pluggable framing.
///
/// The default framing is the 4-byte length prefix; construct with
/// [`TcpTransport::with_framing`] (e.g. HTTP framing) to carry
/// self-delimiting protocols verbatim.
pub struct TcpTransport {
    framing: Arc<dyn Framing>,
}

impl Default for TcpTransport {
    fn default() -> Self {
        TcpTransport::new()
    }
}

impl TcpTransport {
    /// Length-prefix framed TCP.
    pub fn new() -> TcpTransport {
        TcpTransport {
            framing: Arc::new(LengthPrefixFraming::default()),
        }
    }

    /// TCP with custom framing.
    pub fn with_framing(framing: Arc<dyn Framing>) -> TcpTransport {
        TcpTransport { framing }
    }
}

struct TcpConnection {
    stream: TcpStream,
    framing: Arc<dyn Framing>,
    buffer: Vec<u8>,
    peer: String,
}

impl TcpConnection {
    fn new(stream: TcpStream, framing: Arc<dyn Framing>) -> TcpConnection {
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".to_owned());
        TcpConnection {
            stream,
            framing,
            buffer: Vec::new(),
            peer,
        }
    }

    fn read_frame(&mut self) -> Result<Vec<u8>> {
        loop {
            if let Some((consumed, frame)) = self.framing.extract(&self.buffer)? {
                self.buffer.drain(..consumed);
                return Ok(frame);
            }
            let mut chunk = [0u8; 8192];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(NetError::Closed);
            }
            self.buffer.extend_from_slice(&chunk[..n]);
        }
    }
}

impl Connection for TcpConnection {
    fn send(&mut self, data: &[u8]) -> Result<()> {
        let wire = self.framing.wrap(data);
        self.stream.write_all(&wire)?;
        self.stream.flush()?;
        Ok(())
    }

    fn receive(&mut self) -> Result<Vec<u8>> {
        self.stream.set_read_timeout(None)?;
        self.read_frame()
    }

    fn receive_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>> {
        self.stream.set_read_timeout(Some(timeout))?;
        let r = self.read_frame();
        let _ = self.stream.set_read_timeout(None);
        r
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

struct TcpListenerWrapper {
    listener: StdListener,
    framing: Arc<dyn Framing>,
    endpoint: Endpoint,
}

impl Listener for TcpListenerWrapper {
    fn accept(&self) -> Result<Box<dyn Connection>> {
        let (stream, _) = self.listener.accept()?;
        stream.set_nodelay(true).ok();
        Ok(Box::new(TcpConnection::new(stream, self.framing.clone())))
    }

    fn local_endpoint(&self) -> Endpoint {
        self.endpoint.clone()
    }
}

impl Transport for TcpTransport {
    fn scheme(&self) -> &str {
        "tcp"
    }

    fn listen(&self, endpoint: &Endpoint) -> Result<Box<dyn Listener>> {
        let listener = StdListener::bind(endpoint.authority())?;
        let actual = listener.local_addr()?;
        Ok(Box::new(TcpListenerWrapper {
            listener,
            framing: self.framing.clone(),
            endpoint: Endpoint::tcp(actual.ip().to_string(), actual.port()),
        }))
    }

    fn connect(&self, endpoint: &Endpoint) -> Result<Box<dyn Connection>> {
        let stream = TcpStream::connect(endpoint.authority())?;
        stream.set_nodelay(true).ok();
        Ok(Box::new(TcpConnection::new(stream, self.framing.clone())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framing::HttpFraming;

    #[test]
    fn loopback_roundtrip() {
        let t = TcpTransport::new();
        let listener = t.listen(&Endpoint::tcp("127.0.0.1", 0)).unwrap();
        let ep = listener.local_endpoint();
        let handle = std::thread::spawn(move || {
            let mut server = listener.accept().unwrap();
            let req = server.receive().unwrap();
            server.send(&[req.as_slice(), b" world"].concat()).unwrap();
        });
        let mut client = t.connect(&ep).unwrap();
        client.send(b"hello").unwrap();
        assert_eq!(client.receive().unwrap(), b"hello world");
        handle.join().unwrap();
    }

    #[test]
    fn http_framing_over_tcp() {
        let t = TcpTransport::with_framing(Arc::new(HttpFraming::default()));
        let listener = t.listen(&Endpoint::tcp("127.0.0.1", 0)).unwrap();
        let ep = listener.local_endpoint();
        let handle = std::thread::spawn(move || {
            let mut server = listener.accept().unwrap();
            let req = server.receive().unwrap();
            assert!(req.starts_with(b"POST /x HTTP/1.1"));
            server
                .send(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
                .unwrap();
        });
        let mut client = t.connect(&ep).unwrap();
        client
            .send(b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap();
        let resp = client.receive().unwrap();
        assert!(resp.ends_with(b"ok"));
        handle.join().unwrap();
    }

    #[test]
    fn timeout_reported() {
        let t = TcpTransport::new();
        let listener = t.listen(&Endpoint::tcp("127.0.0.1", 0)).unwrap();
        let ep = listener.local_endpoint();
        let mut client = t.connect(&ep).unwrap();
        assert!(matches!(
            client.receive_timeout(Duration::from_millis(20)),
            Err(NetError::Timeout)
        ));
    }

    #[test]
    fn connect_refused() {
        let t = TcpTransport::new();
        // Port 1 is essentially never open.
        assert!(t.connect(&Endpoint::tcp("127.0.0.1", 1)).is_err());
    }

    #[test]
    fn peer_closed_detected() {
        let t = TcpTransport::new();
        let listener = t.listen(&Endpoint::tcp("127.0.0.1", 0)).unwrap();
        let ep = listener.local_endpoint();
        let mut client = t.connect(&ep).unwrap();
        let server = listener.accept().unwrap();
        drop(server);
        assert!(matches!(client.receive(), Err(NetError::Closed)));
    }
}
