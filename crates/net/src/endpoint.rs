use crate::NetError;
use std::fmt;
use std::str::FromStr;

/// A network endpoint: `scheme://host[:port][/path]`.
///
/// The scheme selects the transport (`tcp`, `udp`, `memory`); the
/// host/port (or a bare name for `memory`) identify the peer. An optional
/// path is carried for HTTP-style protocols whose requests embed it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Endpoint {
    scheme: String,
    host: String,
    port: Option<u16>,
    path: String,
}

impl Endpoint {
    /// Builds an endpoint from parts.
    pub fn new(scheme: impl Into<String>, host: impl Into<String>, port: Option<u16>) -> Endpoint {
        Endpoint {
            scheme: scheme.into(),
            host: host.into(),
            port,
            path: String::new(),
        }
    }

    /// A TCP endpoint.
    pub fn tcp(host: impl Into<String>, port: u16) -> Endpoint {
        Endpoint::new("tcp", host, Some(port))
    }

    /// An in-memory endpoint (name-addressed).
    pub fn memory(name: impl Into<String>) -> Endpoint {
        Endpoint::new("memory", name, None)
    }

    /// The transport scheme.
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// Host name, IP, or in-memory service name.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// Port, when meaningful for the transport.
    pub fn port(&self) -> Option<u16> {
        self.port
    }

    /// Optional request path (HTTP-style endpoints).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Builder-style: sets the path component.
    #[must_use]
    pub fn with_path(mut self, path: impl Into<String>) -> Endpoint {
        self.path = path.into();
        self
    }

    /// `host:port` (or bare host) — the socket-address part.
    pub fn authority(&self) -> String {
        match self.port {
            Some(p) => format!("{}:{p}", self.host),
            None => self.host.clone(),
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}{}", self.scheme, self.authority(), self.path)
    }
}

impl FromStr for Endpoint {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Endpoint, NetError> {
        let (scheme, rest) = s.split_once("://").ok_or_else(|| NetError::BadEndpoint {
            text: s.to_owned(),
            message: "missing `scheme://`".into(),
        })?;
        if scheme.is_empty() {
            return Err(NetError::BadEndpoint {
                text: s.to_owned(),
                message: "empty scheme".into(),
            });
        }
        let (authority, path) = match rest.find('/') {
            Some(i) => (&rest[..i], rest[i..].to_owned()),
            None => (rest, String::new()),
        };
        if authority.is_empty() {
            return Err(NetError::BadEndpoint {
                text: s.to_owned(),
                message: "empty host".into(),
            });
        }
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) => {
                let port: u16 = p.parse().map_err(|_| NetError::BadEndpoint {
                    text: s.to_owned(),
                    message: format!("bad port `{p}`"),
                })?;
                (h.to_owned(), Some(port))
            }
            None => (authority.to_owned(), None),
        };
        Ok(Endpoint {
            scheme: scheme.to_owned(),
            host,
            port,
            path,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_tcp_with_port_and_path() {
        let e: Endpoint = "tcp://127.0.0.1:8080/data/feed".parse().unwrap();
        assert_eq!(e.scheme(), "tcp");
        assert_eq!(e.host(), "127.0.0.1");
        assert_eq!(e.port(), Some(8080));
        assert_eq!(e.path(), "/data/feed");
        assert_eq!(e.to_string(), "tcp://127.0.0.1:8080/data/feed");
    }

    #[test]
    fn parse_memory_name() {
        let e: Endpoint = "memory://picasa-service".parse().unwrap();
        assert_eq!(e.scheme(), "memory");
        assert_eq!(e.host(), "picasa-service");
        assert_eq!(e.port(), None);
        assert_eq!(e.authority(), "picasa-service");
    }

    #[test]
    fn rejects_malformed() {
        assert!("no-scheme".parse::<Endpoint>().is_err());
        assert!("://x".parse::<Endpoint>().is_err());
        assert!("tcp://".parse::<Endpoint>().is_err());
        assert!("tcp://h:notaport".parse::<Endpoint>().is_err());
    }

    #[test]
    fn constructors() {
        assert_eq!(Endpoint::tcp("h", 1).to_string(), "tcp://h:1");
        assert_eq!(Endpoint::memory("svc").to_string(), "memory://svc");
        assert_eq!(
            Endpoint::memory("svc").with_path("/a").to_string(),
            "memory://svc/a"
        );
    }

    #[test]
    fn display_parse_roundtrip() {
        for text in ["tcp://a:1", "memory://b", "udp://239.255.255.250:1900"] {
            let e: Endpoint = text.parse().unwrap();
            assert_eq!(e.to_string(), text);
        }
    }
}
