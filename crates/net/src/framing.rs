use crate::{NetError, Result};

/// Cuts a byte stream into protocol messages, and wraps outgoing messages
/// for the wire.
///
/// TCP delivers a stream; Starlink's automata engine consumes discrete
/// messages. The default framing is a 4-byte big-endian length prefix;
/// the HTTP protocol stack supplies header/`Content-Length` framing so
/// that real, unprefixed HTTP flows over the same transport.
pub trait Framing: Send + Sync {
    /// Attempts to extract one complete frame from the front of `buf`.
    ///
    /// Returns `Ok(Some((consumed, frame)))` when a frame is complete,
    /// `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`NetError::FrameTooLarge`] or other framing violations.
    fn extract(&self, buf: &[u8]) -> Result<Option<(usize, Vec<u8>)>>;

    /// Wraps an outgoing message for the wire.
    fn wrap(&self, frame: &[u8]) -> Vec<u8>;

    /// Wraps an outgoing message into a caller-provided buffer, clearing
    /// it first and reusing its capacity. The default forwards to
    /// [`Framing::wrap`].
    fn wrap_into(&self, frame: &[u8], out: &mut Vec<u8>) {
        let wire = self.wrap(frame);
        out.clear();
        out.extend_from_slice(&wire);
    }

    /// Extracts one complete frame by *consuming* it from the front of
    /// `buf` — the in-place counterpart of [`Framing::extract`], which
    /// avoids a second copy when the buffer holds exactly one frame.
    ///
    /// Returns `Ok(Some(frame))` with the consumed bytes removed from
    /// `buf`, or `Ok(None)` (buffer untouched) when more bytes are needed.
    ///
    /// # Errors
    ///
    /// As [`Framing::extract`]; `buf` is left untouched on error.
    fn extract_from(&self, buf: &mut Vec<u8>) -> Result<Option<Vec<u8>>> {
        match self.extract(buf)? {
            Some((consumed, frame)) => {
                buf.drain(..consumed);
                Ok(Some(frame))
            }
            None => Ok(None),
        }
    }
}

/// 4-byte big-endian length-prefixed framing (the default).
#[derive(Debug, Clone)]
pub struct LengthPrefixFraming {
    /// Maximum accepted frame size in bytes.
    pub max_frame: usize,
}

impl Default for LengthPrefixFraming {
    fn default() -> Self {
        LengthPrefixFraming {
            max_frame: 16 * 1024 * 1024,
        }
    }
}

impl Framing for LengthPrefixFraming {
    fn extract(&self, buf: &[u8]) -> Result<Option<(usize, Vec<u8>)>> {
        if buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if len > self.max_frame {
            return Err(NetError::FrameTooLarge {
                size: len,
                limit: self.max_frame,
            });
        }
        if buf.len() < 4 + len {
            return Ok(None);
        }
        Ok(Some((4 + len, buf[4..4 + len].to_vec())))
    }

    fn wrap(&self, frame: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + frame.len());
        self.wrap_into(frame, &mut out);
        out
    }

    fn wrap_into(&self, frame: &[u8], out: &mut Vec<u8>) {
        out.clear();
        out.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        out.extend_from_slice(frame);
    }

    fn extract_from(&self, buf: &mut Vec<u8>) -> Result<Option<Vec<u8>>> {
        if buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if len > self.max_frame {
            return Err(NetError::FrameTooLarge {
                size: len,
                limit: self.max_frame,
            });
        }
        if buf.len() < 4 + len {
            return Ok(None);
        }
        buf.drain(..4);
        Ok(Some(consume_front(buf, len)))
    }
}

/// HTTP/1.1 message framing: head up to the blank line, body sized by
/// `Content-Length` (defaulting to 0). Lives here rather than in the
/// HTTP protocol crate so any transport can carry raw HTTP.
#[derive(Debug, Clone)]
pub struct HttpFraming {
    /// Maximum accepted message size in bytes.
    pub max_frame: usize,
}

impl Default for HttpFraming {
    fn default() -> Self {
        HttpFraming {
            max_frame: 16 * 1024 * 1024,
        }
    }
}

impl HttpFraming {
    /// Measures one complete message at the front of `buf` without
    /// copying it: `Ok(Some(total))` when head + body are fully buffered.
    fn frame_len(&self, buf: &[u8]) -> Result<Option<usize>> {
        // Find end of head.
        let head_end = match find_subslice(buf, b"\r\n\r\n") {
            Some(i) => i + 4,
            None => {
                if buf.len() > self.max_frame {
                    return Err(NetError::FrameTooLarge {
                        size: buf.len(),
                        limit: self.max_frame,
                    });
                }
                return Ok(None);
            }
        };
        let head = &buf[..head_end];
        let mut content_length = 0usize;
        for line in head.split(|b| *b == b'\n') {
            let line = std::str::from_utf8(line).unwrap_or("");
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().trim_end_matches('\r').parse().unwrap_or(0);
                }
            }
        }
        let total = head_end + content_length;
        if total > self.max_frame {
            return Err(NetError::FrameTooLarge {
                size: total,
                limit: self.max_frame,
            });
        }
        if buf.len() < total {
            return Ok(None);
        }
        Ok(Some(total))
    }
}

impl Framing for HttpFraming {
    fn extract(&self, buf: &[u8]) -> Result<Option<(usize, Vec<u8>)>> {
        match self.frame_len(buf)? {
            Some(total) => Ok(Some((total, buf[..total].to_vec()))),
            None => Ok(None),
        }
    }

    fn wrap(&self, frame: &[u8]) -> Vec<u8> {
        // HTTP messages are self-delimiting (Content-Length composed by
        // the MDL text engine); pass through.
        frame.to_vec()
    }

    fn wrap_into(&self, frame: &[u8], out: &mut Vec<u8>) {
        out.clear();
        out.extend_from_slice(frame);
    }

    fn extract_from(&self, buf: &mut Vec<u8>) -> Result<Option<Vec<u8>>> {
        match self.frame_len(buf)? {
            Some(total) => Ok(Some(consume_front(buf, total))),
            None => Ok(None),
        }
    }
}

/// Removes and returns the first `len` bytes of `buf`. When the buffer
/// holds exactly one frame this moves the whole allocation out instead of
/// copying it.
fn consume_front(buf: &mut Vec<u8>, len: usize) -> Vec<u8> {
    if buf.len() == len {
        std::mem::take(buf)
    } else {
        let rest = buf.split_off(len);
        std::mem::replace(buf, rest)
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_prefix_roundtrip() {
        let f = LengthPrefixFraming::default();
        let wire = f.wrap(b"hello");
        let (consumed, frame) = f.extract(&wire).unwrap().unwrap();
        assert_eq!(consumed, wire.len());
        assert_eq!(frame, b"hello");
    }

    #[test]
    fn length_prefix_partial_needs_more() {
        let f = LengthPrefixFraming::default();
        let wire = f.wrap(b"hello");
        assert!(f.extract(&wire[..2]).unwrap().is_none());
        assert!(f.extract(&wire[..6]).unwrap().is_none());
    }

    #[test]
    fn length_prefix_two_frames() {
        let f = LengthPrefixFraming::default();
        let mut wire = f.wrap(b"one");
        wire.extend(f.wrap(b"two"));
        let (c1, f1) = f.extract(&wire).unwrap().unwrap();
        assert_eq!(f1, b"one");
        let (_, f2) = f.extract(&wire[c1..]).unwrap().unwrap();
        assert_eq!(f2, b"two");
    }

    #[test]
    fn length_prefix_limit_enforced() {
        let f = LengthPrefixFraming { max_frame: 4 };
        let wire = LengthPrefixFraming::default().wrap(b"toolarge");
        assert!(matches!(
            f.extract(&wire),
            Err(NetError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn http_framing_with_body() {
        let f = HttpFraming::default();
        let msg = b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let (consumed, frame) = f.extract(msg).unwrap().unwrap();
        assert_eq!(consumed, msg.len());
        assert_eq!(frame, msg);
        // Partial body: not yet.
        assert!(f.extract(&msg[..msg.len() - 1]).unwrap().is_none());
    }

    #[test]
    fn http_framing_without_body() {
        let f = HttpFraming::default();
        let msg = b"GET /x HTTP/1.1\r\nHost: h\r\n\r\n";
        let (consumed, _) = f.extract(msg).unwrap().unwrap();
        assert_eq!(consumed, msg.len());
    }

    #[test]
    fn length_prefix_extract_from_consumes() {
        let f = LengthPrefixFraming::default();
        let mut buf = f.wrap(b"one");
        buf.extend(f.wrap(b"two"));
        // First frame leaves the second in place.
        let f1 = f.extract_from(&mut buf).unwrap().unwrap();
        assert_eq!(f1, b"one");
        assert_eq!(buf.len(), 4 + 3);
        // Exactly one frame left: the whole allocation moves out.
        let f2 = f.extract_from(&mut buf).unwrap().unwrap();
        assert_eq!(f2, b"two");
        assert!(buf.is_empty());
        // Partial input stays untouched.
        buf.extend_from_slice(&f.wrap(b"three")[..5]);
        assert!(f.extract_from(&mut buf).unwrap().is_none());
        assert_eq!(buf.len(), 5);
    }

    #[test]
    fn length_prefix_wrap_into_reuses_buffer() {
        let f = LengthPrefixFraming::default();
        let mut out = Vec::with_capacity(64);
        let ptr = out.as_ptr();
        f.wrap_into(b"hello", &mut out);
        assert_eq!(out, f.wrap(b"hello"));
        assert_eq!(out.as_ptr(), ptr);
        f.wrap_into(b"bye", &mut out);
        assert_eq!(out, f.wrap(b"bye"));
        assert_eq!(out.as_ptr(), ptr);
    }

    #[test]
    fn http_extract_from_pipelined() {
        let f = HttpFraming::default();
        let one = b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello".to_vec();
        let two = b"GET /y HTTP/1.1\r\n\r\n".to_vec();
        let mut buf = one.clone();
        buf.extend(&two);
        assert_eq!(f.extract_from(&mut buf).unwrap().unwrap(), one);
        assert_eq!(buf, two);
        assert_eq!(f.extract_from(&mut buf).unwrap().unwrap(), two);
        assert!(buf.is_empty());
        assert!(f.extract_from(&mut buf).unwrap().is_none());
    }

    #[test]
    fn extract_from_error_leaves_buffer_intact() {
        let f = LengthPrefixFraming { max_frame: 4 };
        let mut buf = LengthPrefixFraming::default().wrap(b"toolarge");
        let before = buf.clone();
        assert!(matches!(
            f.extract_from(&mut buf),
            Err(NetError::FrameTooLarge { .. })
        ));
        assert_eq!(buf, before);
    }

    #[test]
    fn http_framing_back_to_back() {
        let f = HttpFraming::default();
        let one = b"GET /a HTTP/1.1\r\n\r\n".to_vec();
        let two = b"GET /b HTTP/1.1\r\n\r\n".to_vec();
        let mut wire = one.clone();
        wire.extend(&two);
        let (c1, f1) = f.extract(&wire).unwrap().unwrap();
        assert_eq!(f1, one);
        let (_, f2) = f.extract(&wire[c1..]).unwrap().unwrap();
        assert_eq!(f2, two);
    }
}
