use crate::connection::{Connection, Listener, Transport};
use crate::endpoint::Endpoint;
use crate::memory::MemoryTransport;
use crate::tcp::TcpTransport;
use crate::udp::UdpTransport;
use crate::{NetError, Result};
use std::collections::HashMap;
use std::sync::Arc;

/// The transport registry: dispatches connect/listen calls on the
/// endpoint scheme, so a k-colored transition's
/// `transport_protocol="tcp"` annotation picks the right service
/// (paper §4.2). Configurable: new transports (ad-hoc routing à la
/// MANETKit is the paper's example) register under their scheme.
#[derive(Clone)]
pub struct NetworkEngine {
    transports: HashMap<String, Arc<dyn Transport>>,
}

impl NetworkEngine {
    /// An engine with no transports (register your own).
    pub fn new() -> NetworkEngine {
        NetworkEngine {
            transports: HashMap::new(),
        }
    }

    /// An engine with the standard `tcp`, `udp` and `memory` transports.
    pub fn with_defaults() -> NetworkEngine {
        let mut engine = NetworkEngine::new();
        engine.register(Arc::new(TcpTransport::new()));
        engine.register(Arc::new(UdpTransport::new()));
        engine.register(Arc::new(MemoryTransport::new()));
        engine
    }

    /// Registers (or replaces) a transport under its scheme.
    pub fn register(&mut self, transport: Arc<dyn Transport>) {
        self.transports
            .insert(transport.scheme().to_owned(), transport);
    }

    /// Registers a transport under an explicit scheme alias (e.g. an
    /// HTTP-framed TCP transport as `http`).
    pub fn register_as(&mut self, scheme: impl Into<String>, transport: Arc<dyn Transport>) {
        self.transports.insert(scheme.into(), transport);
    }

    /// The registered schemes.
    pub fn schemes(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.transports.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    fn transport(&self, scheme: &str) -> Result<&Arc<dyn Transport>> {
        self.transports
            .get(scheme)
            .ok_or_else(|| NetError::UnknownScheme {
                scheme: scheme.to_owned(),
            })
    }

    /// Connects to an endpoint via the transport its scheme names.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownScheme`] or the transport's connect error.
    pub fn connect(&self, endpoint: &Endpoint) -> Result<Box<dyn Connection>> {
        self.transport(endpoint.scheme())?.connect(endpoint)
    }

    /// Binds a listener at an endpoint.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownScheme`] or the transport's bind error.
    pub fn listen(&self, endpoint: &Endpoint) -> Result<Box<dyn Listener>> {
        self.transport(endpoint.scheme())?.listen(endpoint)
    }
}

impl Default for NetworkEngine {
    fn default() -> Self {
        NetworkEngine::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_schemes_present() {
        let e = NetworkEngine::with_defaults();
        assert_eq!(e.schemes(), vec!["memory", "tcp", "udp"]);
    }

    #[test]
    fn unknown_scheme_rejected() {
        let e = NetworkEngine::with_defaults();
        let ep: Endpoint = "carrier-pigeon://roof".parse().unwrap();
        assert!(matches!(
            e.connect(&ep),
            Err(NetError::UnknownScheme { .. })
        ));
        assert!(matches!(e.listen(&ep), Err(NetError::UnknownScheme { .. })));
    }

    #[test]
    fn dispatch_to_memory_transport() {
        let e = NetworkEngine::with_defaults();
        let ep = Endpoint::memory("svc");
        let listener = e.listen(&ep).unwrap();
        let mut client = e.connect(&ep).unwrap();
        client.send(b"x").unwrap();
        let mut server = listener.accept().unwrap();
        assert_eq!(server.receive().unwrap(), b"x");
    }

    #[test]
    fn register_alias() {
        let mut e = NetworkEngine::new();
        e.register_as("http", Arc::new(TcpTransport::new()));
        assert_eq!(e.schemes(), vec!["http"]);
    }
}
