use crate::{Endpoint, Result};
use std::time::Duration;

/// A bidirectional, message-oriented connection between two peers.
///
/// Connections carry whole protocol messages (framing already applied);
/// the automata engine's receiving states block on [`Connection::receive`]
/// and its sending states call [`Connection::send`].
pub trait Connection: Send {
    /// Sends one message.
    ///
    /// # Errors
    ///
    /// [`crate::NetError::Closed`] if the peer is gone, or I/O errors.
    fn send(&mut self, data: &[u8]) -> Result<()>;

    /// Blocks until one message arrives.
    ///
    /// # Errors
    ///
    /// [`crate::NetError::Closed`] when the peer closes.
    fn receive(&mut self) -> Result<Vec<u8>>;

    /// Blocks up to `timeout` for a message.
    ///
    /// # Errors
    ///
    /// [`crate::NetError::Timeout`] on expiry, [`crate::NetError::Closed`]
    /// when the peer closes.
    fn receive_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>>;

    /// Polls for a message without blocking: `Ok(Some(frame))` if a
    /// whole message is ready, `Ok(None)` if nothing is available right
    /// now. Readiness primitive for multiplexed drivers that interleave
    /// many connections on one thread.
    ///
    /// # Errors
    ///
    /// [`crate::NetError::Closed`] when the peer closes (and no complete
    /// buffered message remains), or transport I/O errors.
    fn try_receive(&mut self) -> Result<Option<Vec<u8>>>;

    /// A printable description of the remote peer.
    fn peer(&self) -> String;
}

/// A passive endpoint accepting connections.
pub trait Listener: Send {
    /// Blocks until a peer connects.
    ///
    /// # Errors
    ///
    /// Transport-specific accept failures.
    fn accept(&self) -> Result<Box<dyn Connection>>;

    /// Polls for a pending connection without blocking:
    /// `Ok(Some(conn))` if a peer is waiting, `Ok(None)` otherwise.
    /// Readiness primitive letting an accept loop remain responsive to
    /// shutdown instead of parking forever in [`Listener::accept`].
    ///
    /// # Errors
    ///
    /// Transport-specific accept failures.
    fn try_accept(&self) -> Result<Option<Box<dyn Connection>>>;

    /// The endpoint this listener is bound to (with the actual port for
    /// `tcp://host:0` binds).
    fn local_endpoint(&self) -> Endpoint;
}

/// A transport: a way of connecting and listening for a given endpoint
/// scheme. Implementations: TCP, UDP, in-memory.
pub trait Transport: Send + Sync {
    /// The endpoint scheme this transport serves (`"tcp"`, …).
    fn scheme(&self) -> &str;

    /// Binds a listener.
    ///
    /// # Errors
    ///
    /// Bind failures (address in use, …).
    fn listen(&self, endpoint: &Endpoint) -> Result<Box<dyn Listener>>;

    /// Connects to a peer.
    ///
    /// # Errors
    ///
    /// Connection failures (refused, unreachable, nothing listening).
    fn connect(&self, endpoint: &Endpoint) -> Result<Box<dyn Connection>>;
}
