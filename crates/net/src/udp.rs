use crate::connection::{Connection, Listener, Transport};
use crate::endpoint::Endpoint;
use crate::{NetError, Result};
use starlink_telemetry::{TelemetrySink, TraceEvent};
use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;
use std::time::Duration;

/// UDP transport.
///
/// Datagrams are messages — no framing layer is needed. The listener's
/// [`Listener::accept`] waits for the first datagram from a new peer and
/// returns a connection bound to that peer (sharing the server socket),
/// which is the natural shape for the request/response discovery
/// protocols Starlink bridges over UDP. Attach a telemetry sink with
/// [`UdpTransport::with_telemetry`] to count datagram bytes in/out; each
/// received datagram also counts as one extracted frame.
#[derive(Clone)]
pub struct UdpTransport {
    telemetry: Arc<dyn TelemetrySink>,
}

impl Default for UdpTransport {
    fn default() -> Self {
        UdpTransport::new()
    }
}

impl UdpTransport {
    /// Creates the transport.
    pub fn new() -> UdpTransport {
        UdpTransport {
            telemetry: starlink_telemetry::noop_sink(),
        }
    }

    /// Reports `TransportBytesIn`/`TransportBytesOut`/`TransportFrameIn`
    /// events for every connection this transport creates or accepts.
    #[must_use]
    pub fn with_telemetry(mut self, sink: Arc<dyn TelemetrySink>) -> UdpTransport {
        self.telemetry = sink;
        self
    }
}

const MAX_DATAGRAM: usize = 64 * 1024;

/// One datagram landed: a datagram is both raw transport bytes and a
/// complete frame.
fn record_datagram_in(sink: &dyn TelemetrySink, bytes: usize) {
    sink.record(&TraceEvent::TransportBytesIn { bytes });
    sink.record(&TraceEvent::TransportFrameIn { bytes });
}

struct UdpClientConnection {
    socket: UdpSocket,
    peer: SocketAddr,
    telemetry: Arc<dyn TelemetrySink>,
}

impl Connection for UdpClientConnection {
    fn send(&mut self, data: &[u8]) -> Result<()> {
        self.socket.send_to(data, self.peer)?;
        self.telemetry
            .record(&TraceEvent::TransportBytesOut { bytes: data.len() });
        Ok(())
    }

    fn receive(&mut self) -> Result<Vec<u8>> {
        self.socket.set_read_timeout(None)?;
        let mut buf = vec![0u8; MAX_DATAGRAM];
        let (n, _) = self.socket.recv_from(&mut buf)?;
        buf.truncate(n);
        record_datagram_in(self.telemetry.as_ref(), n);
        Ok(buf)
    }

    fn receive_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>> {
        self.socket.set_read_timeout(Some(timeout))?;
        let mut buf = vec![0u8; MAX_DATAGRAM];
        let r = self.socket.recv_from(&mut buf);
        let _ = self.socket.set_read_timeout(None);
        let (n, _) = r?;
        buf.truncate(n);
        record_datagram_in(self.telemetry.as_ref(), n);
        Ok(buf)
    }

    fn try_receive(&mut self) -> Result<Option<Vec<u8>>> {
        match try_recv_from(&self.socket)? {
            Some((data, _)) => {
                record_datagram_in(self.telemetry.as_ref(), data.len());
                Ok(Some(data))
            }
            None => Ok(None),
        }
    }

    fn peer(&self) -> String {
        self.peer.to_string()
    }
}

/// One non-blocking `recv_from`; `Ok(None)` when no datagram is queued.
fn try_recv_from(socket: &UdpSocket) -> Result<Option<(Vec<u8>, SocketAddr)>> {
    socket.set_nonblocking(true)?;
    let mut buf = vec![0u8; MAX_DATAGRAM];
    let r = socket.recv_from(&mut buf);
    let _ = socket.set_nonblocking(false);
    match r {
        Ok((n, from)) => {
            buf.truncate(n);
            Ok(Some((buf, from)))
        }
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
        Err(e) => Err(e.into()),
    }
}

struct UdpServerConnection {
    socket: Arc<UdpSocket>,
    peer: SocketAddr,
    pending: Option<Vec<u8>>,
    telemetry: Arc<dyn TelemetrySink>,
}

impl Connection for UdpServerConnection {
    fn send(&mut self, data: &[u8]) -> Result<()> {
        self.socket.send_to(data, self.peer)?;
        self.telemetry
            .record(&TraceEvent::TransportBytesOut { bytes: data.len() });
        Ok(())
    }

    fn receive(&mut self) -> Result<Vec<u8>> {
        // The accepting datagram was already counted by the listener.
        if let Some(first) = self.pending.take() {
            return Ok(first);
        }
        loop {
            let mut buf = vec![0u8; MAX_DATAGRAM];
            self.socket.set_read_timeout(None)?;
            let (n, from) = self.socket.recv_from(&mut buf)?;
            if from == self.peer {
                buf.truncate(n);
                record_datagram_in(self.telemetry.as_ref(), n);
                return Ok(buf);
            }
            // Datagram from another peer: drop (single-peer connection).
        }
    }

    fn receive_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>> {
        if let Some(first) = self.pending.take() {
            return Ok(first);
        }
        self.socket.set_read_timeout(Some(timeout))?;
        let mut buf = vec![0u8; MAX_DATAGRAM];
        let r = self.socket.recv_from(&mut buf);
        let _ = self.socket.set_read_timeout(None);
        let (n, from) = r?;
        if from != self.peer {
            return Err(NetError::Timeout);
        }
        buf.truncate(n);
        record_datagram_in(self.telemetry.as_ref(), n);
        Ok(buf)
    }

    fn try_receive(&mut self) -> Result<Option<Vec<u8>>> {
        if let Some(first) = self.pending.take() {
            return Ok(Some(first));
        }
        // Datagrams from other peers are dropped, matching the blocking
        // receive path of this single-peer connection.
        while let Some((data, from)) = try_recv_from(&self.socket)? {
            if from == self.peer {
                record_datagram_in(self.telemetry.as_ref(), data.len());
                return Ok(Some(data));
            }
        }
        Ok(None)
    }

    fn peer(&self) -> String {
        self.peer.to_string()
    }
}

struct UdpListenerWrapper {
    socket: Arc<UdpSocket>,
    endpoint: Endpoint,
    telemetry: Arc<dyn TelemetrySink>,
}

impl Listener for UdpListenerWrapper {
    fn accept(&self) -> Result<Box<dyn Connection>> {
        let mut buf = vec![0u8; MAX_DATAGRAM];
        self.socket.set_read_timeout(None)?;
        let (n, from) = self.socket.recv_from(&mut buf)?;
        buf.truncate(n);
        record_datagram_in(self.telemetry.as_ref(), n);
        Ok(Box::new(UdpServerConnection {
            socket: self.socket.clone(),
            peer: from,
            pending: Some(buf),
            telemetry: self.telemetry.clone(),
        }))
    }

    fn try_accept(&self) -> Result<Option<Box<dyn Connection>>> {
        match try_recv_from(&self.socket)? {
            Some((data, from)) => {
                record_datagram_in(self.telemetry.as_ref(), data.len());
                Ok(Some(Box::new(UdpServerConnection {
                    socket: self.socket.clone(),
                    peer: from,
                    pending: Some(data),
                    telemetry: self.telemetry.clone(),
                })))
            }
            None => Ok(None),
        }
    }

    fn local_endpoint(&self) -> Endpoint {
        self.endpoint.clone()
    }
}

impl Transport for UdpTransport {
    fn scheme(&self) -> &str {
        "udp"
    }

    fn listen(&self, endpoint: &Endpoint) -> Result<Box<dyn Listener>> {
        let socket = UdpSocket::bind(endpoint.authority())?;
        let actual = socket.local_addr()?;
        Ok(Box::new(UdpListenerWrapper {
            socket: Arc::new(socket),
            endpoint: Endpoint::new("udp", actual.ip().to_string(), Some(actual.port())),
            telemetry: self.telemetry.clone(),
        }))
    }

    fn connect(&self, endpoint: &Endpoint) -> Result<Box<dyn Connection>> {
        let socket = UdpSocket::bind("0.0.0.0:0")?;
        let peer: SocketAddr = endpoint
            .authority()
            .parse()
            .map_err(|e| NetError::BadEndpoint {
                text: endpoint.to_string(),
                message: format!("{e}"),
            })?;
        Ok(Box::new(UdpClientConnection {
            socket,
            peer,
            telemetry: self.telemetry.clone(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datagram_roundtrip() {
        let t = UdpTransport::new();
        let listener = t.listen(&"udp://127.0.0.1:0".parse().unwrap()).unwrap();
        let ep = listener.local_endpoint();
        let handle = std::thread::spawn(move || {
            let mut server = listener.accept().unwrap();
            let req = server.receive().unwrap();
            assert_eq!(req, b"ping");
            server.send(b"pong").unwrap();
        });
        let mut client = t.connect(&ep).unwrap();
        client.send(b"ping").unwrap();
        assert_eq!(
            client.receive_timeout(Duration::from_secs(5)).unwrap(),
            b"pong"
        );
        handle.join().unwrap();
    }

    #[test]
    fn client_timeout() {
        let t = UdpTransport::new();
        let listener = t.listen(&"udp://127.0.0.1:0".parse().unwrap()).unwrap();
        let ep = listener.local_endpoint();
        let mut client = t.connect(&ep).unwrap();
        assert!(matches!(
            client.receive_timeout(Duration::from_millis(20)),
            Err(NetError::Timeout)
        ));
    }

    #[test]
    fn try_accept_and_try_receive_poll() {
        let t = UdpTransport::new();
        let listener = t.listen(&"udp://127.0.0.1:0".parse().unwrap()).unwrap();
        let ep = listener.local_endpoint();
        assert!(listener.try_accept().unwrap().is_none());
        let mut client = t.connect(&ep).unwrap();
        assert!(client.try_receive().unwrap().is_none());
        client.send(b"ping").unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut server = None;
        while server.is_none() && std::time::Instant::now() < deadline {
            server = listener.try_accept().unwrap();
            if server.is_none() {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let mut server = server.expect("datagram should arrive");
        // The accepting datagram is buffered on the new connection.
        assert_eq!(server.try_receive().unwrap().unwrap(), b"ping");
        assert!(server.try_receive().unwrap().is_none());
        server.send(b"pong").unwrap();
        assert_eq!(
            client.receive_timeout(Duration::from_secs(5)).unwrap(),
            b"pong"
        );
    }

    #[test]
    fn datagram_bytes_and_frames_are_counted() {
        let recorder = Arc::new(starlink_telemetry::Recorder::new());
        let t = UdpTransport::new().with_telemetry(recorder.clone());
        let listener = t.listen(&"udp://127.0.0.1:0".parse().unwrap()).unwrap();
        let ep = listener.local_endpoint();
        let handle = std::thread::spawn(move || {
            let mut server = listener.accept().unwrap();
            let req = server.receive().unwrap();
            server.send(&req).unwrap();
        });
        let mut client = t.connect(&ep).unwrap();
        client.send(b"hello").unwrap();
        assert_eq!(
            client.receive_timeout(Duration::from_secs(5)).unwrap(),
            b"hello"
        );
        handle.join().unwrap();

        let snap = TelemetrySink::snapshot(recorder.as_ref()).unwrap();
        // One 5-byte datagram each way; no framing overhead on UDP, and
        // every datagram counts as one frame.
        assert_eq!(snap.counter("starlink_transport_bytes_out_total"), 10);
        assert_eq!(snap.counter("starlink_transport_bytes_in_total"), 10);
        assert_eq!(snap.counter("starlink_transport_frames_in_total"), 2);
    }

    #[test]
    fn bad_peer_address() {
        let t = UdpTransport::new();
        assert!(t
            .connect(&Endpoint::new("udp", "not-an-ip", Some(1)))
            .is_err());
    }
}
