//! Multi-producer multi-consumer channels built on `Mutex` + `Condvar`.
//!
//! A small, dependency-free replacement for the crossbeam channel API
//! surface Starlink uses: `unbounded()` queues for the in-memory
//! transport and multicast groups, and `bounded(cap)` queues whose
//! blocking `send` provides the backpressure the multiplexed mediator
//! host relies on. Receivers are cloneable, so a pool of workers can
//! drain one job queue.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone.
/// Carries the unsent value back to the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with the channel still empty.
    Timeout,
    /// Every sender is gone and the channel is drained.
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// Every sender is gone and the channel is drained.
    Disconnected,
}

struct Inner<T> {
    queue: VecDeque<T>,
    capacity: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Creates a channel with no capacity bound: `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Creates a channel holding at most `capacity` queued values; `send`
/// blocks until space frees up (capacity 0 is rounded up to 1).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(capacity.max(1)))
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            capacity,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// The sending half; cloneable for multiple producers.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().senders += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.senders -= 1;
        if inner.senders == 0 {
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Enqueues `value`, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// [`SendError`] (returning the value) once every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            match inner.capacity {
                Some(cap) if inner.queue.len() >= cap => {
                    inner = self.shared.not_full.wait(inner).unwrap();
                }
                _ => break,
            }
        }
        inner.queue.push_back(value);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

/// The receiving half; cloneable so a worker pool can share one queue.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().receivers += 1;
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.receivers -= 1;
        if inner.receivers == 0 {
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a value arrives.
    ///
    /// # Errors
    ///
    /// [`RecvError`] once the channel is drained and every sender is
    /// gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.not_empty.wait(inner).unwrap();
        }
    }

    /// Blocks up to `timeout` for a value.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] on expiry,
    /// [`RecvTimeoutError::Disconnected`] once drained with no senders.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap();
            inner = guard;
        }
    }

    /// Dequeues a value without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] if nothing is queued,
    /// [`TryRecvError::Disconnected`] once drained with no senders.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().unwrap();
        if let Some(v) = inner.queue.pop_front() {
            drop(inner);
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if inner.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        self.shared.inner.lock().unwrap().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_then_recv() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_after_all_senders_dropped_drains_then_errors() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_after_all_receivers_dropped_errors() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn try_recv_empty() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(3).unwrap();
        assert_eq!(rx.try_recv(), Ok(3));
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn bounded_send_blocks_until_space() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || {
            tx.send(2).unwrap();
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn cloned_receivers_share_the_queue() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let a = thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx1.recv() {
                got.push(v);
            }
            got
        });
        let mut got = Vec::new();
        while let Ok(v) = rx2.recv() {
            got.push(v);
        }
        let mut all = a.join().unwrap();
        all.extend(got);
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let t = thread::spawn(move || {
            for i in 0..50 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..50 {
            sum += rx.recv().unwrap();
        }
        t.join().unwrap();
        assert_eq!(sum, (0..50).sum::<i32>());
    }
}
