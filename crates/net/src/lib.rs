//! The network engine of the Starlink framework.
//!
//! "The network engine sends and receives physical messages (i.e. data
//! packets) to and from the network. […] The current implementation of
//! the network engine provides traditional TCP and UDP services for
//! infrastructure networks. However, the architecture is configurable"
//! (paper §4.2). This crate reproduces that architecture:
//!
//! * a [`Transport`] trait with three implementations — [`TcpTransport`],
//!   [`UdpTransport`] and the deterministic, fault-injectable
//!   [`MemoryTransport`] used by tests and benchmarks,
//! * pluggable message [`Framing`] so byte streams can be cut into
//!   protocol messages (length-prefixed by default; the HTTP stack plugs
//!   in header/Content-Length framing),
//! * blocking [`Connection`]/[`Listener`] abstractions sized for the
//!   synchronous RPC interactions the paper's protocols use,
//! * a [`NetworkEngine`] registry dispatching on endpoint schemes
//!   (`tcp://`, `udp://`, `memory://`), mirroring how k-colored
//!   transitions name their transport,
//! * simulated multicast groups on the in-memory transport (service
//!   discovery experiments).
//!
//! # Example
//!
//! ```
//! use starlink_net::{Endpoint, NetworkEngine};
//!
//! let engine = NetworkEngine::with_defaults();
//! let ep: Endpoint = "memory://calc".parse()?;
//! let listener = engine.listen(&ep)?;
//!
//! let mut client = engine.connect(&ep)?;
//! client.send(b"ping")?;
//!
//! let mut server_side = listener.accept()?;
//! assert_eq!(server_side.receive()?, b"ping");
//! # Ok::<(), starlink_net::NetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
mod connection;
mod endpoint;
mod engine;
mod framing;
mod memory;
mod tcp;
mod udp;

pub use connection::{Connection, Listener, Transport};
pub use endpoint::Endpoint;
pub use engine::NetworkEngine;
pub use framing::{Framing, HttpFraming, LengthPrefixFraming};
pub use memory::{FaultPlan, MemoryTransport, MulticastGroup};
pub use tcp::TcpTransport;
pub use udp::UdpTransport;

use std::fmt;

/// Errors produced by the network engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// Endpoint string could not be parsed.
    BadEndpoint {
        /// The offending text.
        text: String,
        /// What was wrong with it.
        message: String,
    },
    /// No transport is registered for the endpoint's scheme.
    UnknownScheme {
        /// The scheme.
        scheme: String,
    },
    /// The peer closed the connection.
    Closed,
    /// A receive timed out.
    Timeout,
    /// No service is listening at the endpoint (in-memory transport).
    NotListening {
        /// The endpoint text.
        endpoint: String,
    },
    /// An endpoint is already bound (in-memory transport).
    AlreadyBound {
        /// The endpoint text.
        endpoint: String,
    },
    /// A frame exceeded the configured size limit.
    FrameTooLarge {
        /// Declared/observed size.
        size: usize,
        /// The limit.
        limit: usize,
    },
    /// Underlying OS-level I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::BadEndpoint { text, message } => {
                write!(f, "bad endpoint `{text}`: {message}")
            }
            NetError::UnknownScheme { scheme } => {
                write!(f, "no transport registered for scheme `{scheme}`")
            }
            NetError::Closed => write!(f, "connection closed by peer"),
            NetError::Timeout => write!(f, "receive timed out"),
            NetError::NotListening { endpoint } => {
                write!(f, "nothing is listening at `{endpoint}`")
            }
            NetError::AlreadyBound { endpoint } => {
                write!(f, "endpoint `{endpoint}` is already bound")
            }
            NetError::FrameTooLarge { size, limit } => {
                write!(f, "frame of {size} bytes exceeds limit {limit}")
            }
            NetError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => NetError::Timeout,
            std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::BrokenPipe => NetError::Closed,
            _ => NetError::Io(e),
        }
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, NetError>;
