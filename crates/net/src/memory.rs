//! Deterministic in-memory transport with fault injection and simulated
//! multicast — the test/bench substrate standing in for the paper's LAN
//! testbed (DESIGN.md §2).

use crate::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use crate::connection::{Connection, Listener, Transport};
use crate::endpoint::Endpoint;
use crate::{NetError, Result};
use starlink_telemetry::{TelemetrySink, TraceEvent};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Deterministic fault plan applied to every connection of a
/// [`MemoryTransport`]. Counters are global to the transport instance so
/// tests can express "drop the 3rd message".
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// 1-based indexes (over all sends through the transport) of messages
    /// to drop silently.
    pub drop_nth: Vec<u64>,
    /// 1-based indexes of messages to deliver twice.
    pub duplicate_nth: Vec<u64>,
    /// Fixed delay added before each delivery.
    pub delay: Option<Duration>,
}

#[derive(Default)]
struct FaultState {
    plan: FaultPlan,
    counter: u64,
}

type Frame = Vec<u8>;

struct Registry {
    listeners: HashMap<String, Sender<MemDuplex>>,
    multicast: HashMap<String, Vec<Sender<Frame>>>,
}

/// A pair of channels forming one side of a connection.
struct MemDuplex {
    tx: Sender<Frame>,
    rx: Receiver<Frame>,
    peer: String,
}

/// The in-memory transport. Each instance has its own namespace: two
/// transports never see each other's endpoints, keeping tests isolated.
/// Attach a telemetry sink with [`MemoryTransport::with_telemetry`] to
/// count frame bytes in/out exactly as the socket transports do, so
/// deterministic tests exercise the same counters.
#[derive(Clone)]
pub struct MemoryTransport {
    registry: Arc<Mutex<Registry>>,
    faults: Arc<Mutex<FaultState>>,
    telemetry: Arc<dyn TelemetrySink>,
}

impl Default for MemoryTransport {
    fn default() -> Self {
        MemoryTransport::new()
    }
}

impl MemoryTransport {
    /// Creates a fault-free transport.
    pub fn new() -> MemoryTransport {
        MemoryTransport {
            registry: Arc::new(Mutex::new(Registry {
                listeners: HashMap::new(),
                multicast: HashMap::new(),
            })),
            faults: Arc::new(Mutex::new(FaultState::default())),
            telemetry: starlink_telemetry::noop_sink(),
        }
    }

    /// Creates a transport applying the given fault plan.
    pub fn with_faults(plan: FaultPlan) -> MemoryTransport {
        let t = MemoryTransport::new();
        t.faults.lock().unwrap().plan = plan;
        t
    }

    /// Reports `TransportBytesIn`/`TransportBytesOut`/`TransportFrameIn`
    /// events for every connection of this transport. Sends count even
    /// when a fault plan then drops the frame — the "sender" paid the
    /// bytes; the loss shows up as the missing `TransportFrameIn`.
    #[must_use]
    pub fn with_telemetry(mut self, sink: Arc<dyn TelemetrySink>) -> MemoryTransport {
        self.telemetry = sink;
        self
    }

    /// Joins a multicast group, returning a receiver of datagrams.
    pub fn join_multicast(&self, group: &str) -> MulticastGroup {
        let (tx, rx) = unbounded();
        self.registry
            .lock()
            .unwrap()
            .multicast
            .entry(group.to_owned())
            .or_default()
            .push(tx);
        MulticastGroup {
            group: group.to_owned(),
            rx,
        }
    }

    /// Sends a datagram to every member of a multicast group.
    pub fn send_multicast(&self, group: &str, data: &[u8]) {
        let registry = self.registry.lock().unwrap();
        if let Some(members) = registry.multicast.get(group) {
            for m in members {
                // Dead members are ignored; they are pruned lazily.
                let _ = m.send(data.to_vec());
            }
        }
    }

    /// Applies the fault plan to an outgoing frame: returns how many
    /// copies to deliver (0 = dropped) and an optional delay.
    fn apply_faults(&self, _data: &[u8]) -> (usize, Option<Duration>) {
        let mut state = self.faults.lock().unwrap();
        state.counter += 1;
        let n = state.counter;
        let copies = if state.plan.drop_nth.contains(&n) {
            0
        } else if state.plan.duplicate_nth.contains(&n) {
            2
        } else {
            1
        };
        (copies, state.plan.delay)
    }
}

/// A joined multicast group handle (receive side).
pub struct MulticastGroup {
    group: String,
    rx: Receiver<Frame>,
}

impl MulticastGroup {
    /// The group's name.
    pub fn group(&self) -> &str {
        &self.group
    }

    /// Blocks up to `timeout` for the next datagram.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] on expiry; [`NetError::Closed`] if the
    /// transport is gone.
    pub fn receive_timeout(&self, timeout: Duration) -> Result<Vec<u8>> {
        match self.rx.recv_timeout(timeout) {
            Ok(f) => Ok(f),
            Err(RecvTimeoutError::Timeout) => Err(NetError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Closed),
        }
    }
}

struct MemConnection {
    duplex: MemDuplex,
    transport: MemoryTransport,
}

impl MemConnection {
    /// One frame delivered: in-memory frames have no framing overhead,
    /// so raw bytes and frame bytes coincide.
    fn record_frame_in(&self, bytes: usize) {
        let sink = self.transport.telemetry.as_ref();
        sink.record(&TraceEvent::TransportBytesIn { bytes });
        sink.record(&TraceEvent::TransportFrameIn { bytes });
    }
}

impl Connection for MemConnection {
    fn send(&mut self, data: &[u8]) -> Result<()> {
        self.transport
            .telemetry
            .record(&TraceEvent::TransportBytesOut { bytes: data.len() });
        let (copies, delay) = self.transport.apply_faults(data);
        if let Some(d) = delay {
            std::thread::sleep(d);
        }
        for _ in 0..copies {
            self.duplex
                .tx
                .send(data.to_vec())
                .map_err(|_| NetError::Closed)?;
        }
        Ok(())
    }

    fn receive(&mut self) -> Result<Vec<u8>> {
        let frame = self.duplex.rx.recv().map_err(|_| NetError::Closed)?;
        self.record_frame_in(frame.len());
        Ok(frame)
    }

    fn receive_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>> {
        match self.duplex.rx.recv_timeout(timeout) {
            Ok(f) => {
                self.record_frame_in(f.len());
                Ok(f)
            }
            Err(RecvTimeoutError::Timeout) => Err(NetError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Closed),
        }
    }

    fn try_receive(&mut self) -> Result<Option<Vec<u8>>> {
        match self.duplex.rx.try_recv() {
            Ok(f) => {
                self.record_frame_in(f.len());
                Ok(Some(f))
            }
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(NetError::Closed),
        }
    }

    fn peer(&self) -> String {
        self.duplex.peer.clone()
    }
}

struct MemListener {
    endpoint: Endpoint,
    rx: Receiver<MemDuplex>,
    transport: MemoryTransport,
}

impl Listener for MemListener {
    fn accept(&self) -> Result<Box<dyn Connection>> {
        let duplex = self.rx.recv().map_err(|_| NetError::Closed)?;
        Ok(Box::new(MemConnection {
            duplex,
            transport: self.transport.clone(),
        }))
    }

    fn try_accept(&self) -> Result<Option<Box<dyn Connection>>> {
        match self.rx.try_recv() {
            Ok(duplex) => Ok(Some(Box::new(MemConnection {
                duplex,
                transport: self.transport.clone(),
            }))),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(NetError::Closed),
        }
    }

    fn local_endpoint(&self) -> Endpoint {
        self.endpoint.clone()
    }
}

impl Transport for MemoryTransport {
    fn scheme(&self) -> &str {
        "memory"
    }

    fn listen(&self, endpoint: &Endpoint) -> Result<Box<dyn Listener>> {
        let key = endpoint.authority();
        let mut registry = self.registry.lock().unwrap();
        if registry.listeners.contains_key(&key) {
            return Err(NetError::AlreadyBound {
                endpoint: endpoint.to_string(),
            });
        }
        let (tx, rx) = unbounded();
        registry.listeners.insert(key, tx);
        Ok(Box::new(MemListener {
            endpoint: endpoint.clone(),
            rx,
            transport: self.clone(),
        }))
    }

    fn connect(&self, endpoint: &Endpoint) -> Result<Box<dyn Connection>> {
        let key = endpoint.authority();
        let registry = self.registry.lock().unwrap();
        let acceptor = registry
            .listeners
            .get(&key)
            .ok_or_else(|| NetError::NotListening {
                endpoint: endpoint.to_string(),
            })?;
        let (client_tx, server_rx) = unbounded();
        let (server_tx, client_rx) = unbounded();
        let server_side = MemDuplex {
            tx: server_tx,
            rx: server_rx,
            peer: "memory-client".to_owned(),
        };
        acceptor
            .send(server_side)
            .map_err(|_| NetError::NotListening {
                endpoint: endpoint.to_string(),
            })?;
        Ok(Box::new(MemConnection {
            duplex: MemDuplex {
                tx: client_tx,
                rx: client_rx,
                peer: endpoint.to_string(),
            },
            transport: self.clone(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_send_receive() {
        let t = MemoryTransport::new();
        let ep = Endpoint::memory("svc");
        let listener = t.listen(&ep).unwrap();
        let mut client = t.connect(&ep).unwrap();
        client.send(b"hi").unwrap();
        let mut server = listener.accept().unwrap();
        assert_eq!(server.receive().unwrap(), b"hi");
        server.send(b"yo").unwrap();
        assert_eq!(client.receive().unwrap(), b"yo");
    }

    #[test]
    fn connect_without_listener_fails() {
        let t = MemoryTransport::new();
        assert!(matches!(
            t.connect(&Endpoint::memory("ghost")),
            Err(NetError::NotListening { .. })
        ));
    }

    #[test]
    fn double_bind_fails() {
        let t = MemoryTransport::new();
        let ep = Endpoint::memory("svc");
        let _l = t.listen(&ep).unwrap();
        assert!(matches!(t.listen(&ep), Err(NetError::AlreadyBound { .. })));
    }

    #[test]
    fn namespaces_are_isolated() {
        let t1 = MemoryTransport::new();
        let t2 = MemoryTransport::new();
        let ep = Endpoint::memory("svc");
        let _l = t1.listen(&ep).unwrap();
        assert!(t2.connect(&ep).is_err());
    }

    #[test]
    fn receive_timeout_expires() {
        let t = MemoryTransport::new();
        let ep = Endpoint::memory("svc");
        let _l = t.listen(&ep).unwrap();
        let mut client = t.connect(&ep).unwrap();
        assert!(matches!(
            client.receive_timeout(Duration::from_millis(10)),
            Err(NetError::Timeout)
        ));
    }

    #[test]
    fn drop_fault_swallows_message() {
        let t = MemoryTransport::with_faults(FaultPlan {
            drop_nth: vec![1],
            ..FaultPlan::default()
        });
        let ep = Endpoint::memory("svc");
        let listener = t.listen(&ep).unwrap();
        let mut client = t.connect(&ep).unwrap();
        client.send(b"lost").unwrap();
        client.send(b"kept").unwrap();
        let mut server = listener.accept().unwrap();
        assert_eq!(server.receive().unwrap(), b"kept");
    }

    #[test]
    fn duplicate_fault_delivers_twice() {
        let t = MemoryTransport::with_faults(FaultPlan {
            duplicate_nth: vec![1],
            ..FaultPlan::default()
        });
        let ep = Endpoint::memory("svc");
        let listener = t.listen(&ep).unwrap();
        let mut client = t.connect(&ep).unwrap();
        client.send(b"x").unwrap();
        let mut server = listener.accept().unwrap();
        assert_eq!(server.receive().unwrap(), b"x");
        assert_eq!(server.receive().unwrap(), b"x");
    }

    #[test]
    fn try_receive_polls_without_blocking() {
        let t = MemoryTransport::new();
        let ep = Endpoint::memory("svc");
        let listener = t.listen(&ep).unwrap();
        let mut client = t.connect(&ep).unwrap();
        assert!(client.try_receive().unwrap().is_none());
        client.send(b"req").unwrap();
        let mut server = listener.accept().unwrap();
        assert_eq!(server.try_receive().unwrap().unwrap(), b"req");
        server.send(b"resp").unwrap();
        assert_eq!(client.try_receive().unwrap().unwrap(), b"resp");
        drop(server);
        assert!(matches!(client.try_receive(), Err(NetError::Closed)));
    }

    #[test]
    fn try_accept_polls_without_blocking() {
        let t = MemoryTransport::new();
        let ep = Endpoint::memory("svc");
        let listener = t.listen(&ep).unwrap();
        assert!(listener.try_accept().unwrap().is_none());
        let _client = t.connect(&ep).unwrap();
        assert!(listener.try_accept().unwrap().is_some());
        assert!(listener.try_accept().unwrap().is_none());
    }

    #[test]
    fn bytes_and_frames_are_counted_with_faults_visible() {
        let recorder = Arc::new(starlink_telemetry::Recorder::new());
        let t = MemoryTransport::with_faults(FaultPlan {
            drop_nth: vec![1],
            ..FaultPlan::default()
        })
        .with_telemetry(recorder.clone());
        let ep = Endpoint::memory("svc");
        let listener = t.listen(&ep).unwrap();
        let mut client = t.connect(&ep).unwrap();
        client.send(b"lost!").unwrap();
        client.send(b"kept!").unwrap();
        let mut server = listener.accept().unwrap();
        assert_eq!(server.receive().unwrap(), b"kept!");

        let snap = TelemetrySink::snapshot(recorder.as_ref()).unwrap();
        // Both sends pay bytes out; the dropped frame never lands, so
        // exactly one frame (and its bytes) arrives.
        assert_eq!(snap.counter("starlink_transport_bytes_out_total"), 10);
        assert_eq!(snap.counter("starlink_transport_bytes_in_total"), 5);
        assert_eq!(snap.counter("starlink_transport_frames_in_total"), 1);
    }

    #[test]
    fn multicast_reaches_all_members() {
        let t = MemoryTransport::new();
        let a = t.join_multicast("ssdp");
        let b = t.join_multicast("ssdp");
        let other = t.join_multicast("elsewhere");
        t.send_multicast("ssdp", b"M-SEARCH");
        assert_eq!(
            a.receive_timeout(Duration::from_millis(100)).unwrap(),
            b"M-SEARCH"
        );
        assert_eq!(
            b.receive_timeout(Duration::from_millis(100)).unwrap(),
            b"M-SEARCH"
        );
        assert!(matches!(
            other.receive_timeout(Duration::from_millis(10)),
            Err(NetError::Timeout)
        ));
        assert_eq!(a.group(), "ssdp");
    }
}
