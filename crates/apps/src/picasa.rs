//! The simulated Picasa Web Albums service: REST + GData over HTTP
//! (paper Fig. 1, right column), backed by a [`PhotoStore`].
//!
//! Application-level operations (field names follow the public API):
//!
//! * `picasa.photos.search(q, max-results)` → `…reply(Title, Entries)` —
//!   entries carry `id`, `title`, `url` (the photo URL arrives directly
//!   in the search results, unlike Flickr),
//! * `picasa.getComments(entry_id)` → `…reply(Entries)` — comment
//!   entries carry `id`, `content`, `author`,
//! * `picasa.addComment(entry_id, content)` → `…reply(id, content)`.

use crate::store::PhotoStore;
use starlink_core::{CoreError, Result, RpcClient, RpcServer, ServiceHandler, ServiceInterface};
use starlink_mdl::MessageCodec;
use starlink_message::{AbstractMessage, Field, Value};
use starlink_net::{Endpoint, NetworkEngine};
use starlink_protocols::gdata::{rest_binding, rest_codec};
use std::sync::Arc;

/// Builds the Picasa application interface (operation templates).
pub fn picasa_interface() -> ServiceInterface {
    let mut search = AbstractMessage::new("picasa.photos.search");
    search.set_field("q", Value::Null);
    search.push_field(Field::optional("max-results", Value::Null));
    let mut search_reply = AbstractMessage::new("picasa.photos.search.reply");
    search_reply.push_field(Field::optional("Title", Value::Null));
    search_reply.set_field("Entries", Value::Null);

    let mut get_comments = AbstractMessage::new("picasa.getComments");
    get_comments.set_field("entry_id", Value::Null);
    let mut get_comments_reply = AbstractMessage::new("picasa.getComments.reply");
    get_comments_reply.set_field("Entries", Value::Null);

    let mut add_comment = AbstractMessage::new("picasa.addComment");
    add_comment.set_field("entry_id", Value::Null);
    add_comment.set_field("content", Value::Null);
    let mut add_comment_reply = AbstractMessage::new("picasa.addComment.reply");
    add_comment_reply.set_field("id", Value::Null);
    add_comment_reply.push_field(Field::optional("content", Value::Null));

    ServiceInterface::new()
        .with_operation(search, search_reply)
        .with_operation(get_comments, get_comments_reply)
        .with_operation(add_comment, add_comment_reply)
}

fn photo_entry(photo: &crate::store::Photo) -> Value {
    Value::Struct(vec![
        Field::new("id", Value::Str(photo.id.clone())),
        Field::new("title", Value::Str(photo.title.clone())),
        Field::new("url", Value::Str(photo.url.clone())),
    ])
}

/// The service handler: application requests against the store.
pub fn picasa_handler(store: PhotoStore) -> Arc<ServiceHandler> {
    Arc::new(move |req| match req.name() {
        "picasa.photos.search" => {
            let q = req.get("q").map(Value::to_text).unwrap_or_default();
            let limit = req
                .get("max-results")
                .map(Value::to_text)
                .and_then(|t| t.parse().ok())
                .unwrap_or(10usize);
            let results = store.search(&q, limit);
            let mut reply = AbstractMessage::new("picasa.photos.search.reply");
            reply.set_field("Title", Value::from("Search Results"));
            reply.set_field(
                "Entries",
                Value::Array(results.iter().map(photo_entry).collect()),
            );
            Ok(reply)
        }
        "picasa.getComments" => {
            let entry_id = req
                .get("entry_id")
                .map(Value::to_text)
                .ok_or("missing entry_id")?;
            let comments = store.comments(&entry_id);
            let mut reply = AbstractMessage::new("picasa.getComments.reply");
            reply.set_field(
                "Entries",
                Value::Array(
                    comments
                        .iter()
                        .map(|c| {
                            Value::Struct(vec![
                                Field::new("id", Value::Str(c.id.clone())),
                                Field::new("content", Value::Str(c.text.clone())),
                                Field::new("author", Value::Str(c.author.clone())),
                            ])
                        })
                        .collect(),
                ),
            );
            Ok(reply)
        }
        "picasa.addComment" => {
            let entry_id = req
                .get("entry_id")
                .map(Value::to_text)
                .ok_or("missing entry_id")?;
            let content = req
                .get("content")
                .map(Value::to_text)
                .ok_or("missing content")?;
            if store.photo(&entry_id).is_none() {
                return Err(format!("no such photo `{entry_id}`"));
            }
            let comment = store.add_comment(&entry_id, "starlink-user", &content);
            let mut reply = AbstractMessage::new("picasa.addComment.reply");
            reply.set_field("id", Value::Str(comment.id));
            reply.set_field("content", Value::Str(comment.text));
            Ok(reply)
        }
        other => Err(format!("picasa: unknown operation `{other}`")),
    })
}

/// A running Picasa service.
pub struct PicasaService {
    server: RpcServer,
}

impl PicasaService {
    /// Deploys the service at `endpoint` over `net`.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn deploy(
        net: &NetworkEngine,
        endpoint: &Endpoint,
        store: PhotoStore,
    ) -> Result<PicasaService> {
        let codec: Arc<dyn MessageCodec> =
            Arc::new(rest_codec("picasaweb.google.com").map_err(CoreError::Mdl)?);
        let server = RpcServer::serve(
            net,
            endpoint,
            codec,
            rest_binding(),
            picasa_interface(),
            picasa_handler(store),
        )?;
        Ok(PicasaService { server })
    }

    /// The endpoint the service is reachable at.
    pub fn endpoint(&self) -> &Endpoint {
        self.server.endpoint()
    }
}

/// A native Picasa REST client (used for direct-call baselines).
pub struct PicasaClient {
    rpc: RpcClient,
}

impl PicasaClient {
    /// Connects to a Picasa service.
    ///
    /// # Errors
    ///
    /// Connect failures.
    pub fn connect(net: &NetworkEngine, endpoint: &Endpoint) -> Result<PicasaClient> {
        let codec: Arc<dyn MessageCodec> =
            Arc::new(rest_codec("picasaweb.google.com").map_err(CoreError::Mdl)?);
        let rpc = RpcClient::connect(net, endpoint, codec, rest_binding(), picasa_interface())?;
        Ok(PicasaClient { rpc })
    }

    /// `photos.search(q, max-results)` (Fig. 1).
    ///
    /// # Errors
    ///
    /// RPC failures.
    pub fn search(&mut self, q: &str, max_results: u32) -> Result<Vec<(String, String, String)>> {
        let mut req = AbstractMessage::new("picasa.photos.search");
        req.set_field("q", Value::Str(q.to_owned()));
        req.set_field("max-results", Value::Str(max_results.to_string()));
        let reply = self.rpc.call(&req)?;
        let entries = reply
            .get("Entries")
            .and_then(Value::as_array)
            .unwrap_or(&[])
            .to_vec();
        Ok(entries
            .iter()
            .filter_map(|e| {
                let fields = e.as_struct()?;
                let get = |n: &str| {
                    fields
                        .iter()
                        .find(|f| f.label() == n)
                        .map(|f| f.value().to_text())
                        .unwrap_or_default()
                };
                Some((get("id"), get("title"), get("url")))
            })
            .collect())
    }

    /// `getComments(entry_id)` (Fig. 1).
    ///
    /// # Errors
    ///
    /// RPC failures.
    pub fn get_comments(&mut self, entry_id: &str) -> Result<Vec<(String, String)>> {
        let mut req = AbstractMessage::new("picasa.getComments");
        req.set_field("entry_id", Value::Str(entry_id.to_owned()));
        let reply = self.rpc.call(&req)?;
        let entries = reply
            .get("Entries")
            .and_then(Value::as_array)
            .unwrap_or(&[])
            .to_vec();
        Ok(entries
            .iter()
            .filter_map(|e| {
                let fields = e.as_struct()?;
                let get = |n: &str| {
                    fields
                        .iter()
                        .find(|f| f.label() == n)
                        .map(|f| f.value().to_text())
                        .unwrap_or_default()
                };
                Some((get("author"), get("content")))
            })
            .collect())
    }

    /// `addComment(entry)` (Fig. 1).
    ///
    /// # Errors
    ///
    /// RPC failures.
    pub fn add_comment(&mut self, entry_id: &str, content: &str) -> Result<String> {
        let mut req = AbstractMessage::new("picasa.addComment");
        req.set_field("entry_id", Value::Str(entry_id.to_owned()));
        req.set_field("content", Value::Str(content.to_owned()));
        let reply = self.rpc.call(&req)?;
        Ok(reply.get("id").map(Value::to_text).unwrap_or_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_net::MemoryTransport;

    fn net() -> NetworkEngine {
        let mut n = NetworkEngine::new();
        n.register(Arc::new(MemoryTransport::new()));
        n
    }

    #[test]
    fn native_rest_client_full_flow() {
        let net = net();
        let service = PicasaService::deploy(
            &net,
            &Endpoint::memory("picasa"),
            PhotoStore::with_fixture(),
        )
        .unwrap();
        let mut client = PicasaClient::connect(&net, service.endpoint()).unwrap();

        let results = client.search("tree", 3).unwrap();
        assert_eq!(results.len(), 3);
        let (id, title, url) = &results[0];
        assert_eq!(id, "gphoto-1");
        assert_eq!(title, "Tall Tree");
        assert!(url.ends_with("1.jpg"));

        let comments = client.get_comments(id).unwrap();
        assert_eq!(comments.len(), 2);
        assert_eq!(comments[0], ("bob".to_owned(), "great shot".to_owned()));

        let comment_id = client.add_comment(id, "lovely tree").unwrap();
        assert!(comment_id.starts_with("comment-"));
        assert_eq!(client.get_comments(id).unwrap().len(), 3);
    }

    #[test]
    fn search_respects_limit_and_misses() {
        let net = net();
        let service = PicasaService::deploy(
            &net,
            &Endpoint::memory("picasa"),
            PhotoStore::with_fixture(),
        )
        .unwrap();
        let mut client = PicasaClient::connect(&net, service.endpoint()).unwrap();
        assert_eq!(client.search("tree", 1).unwrap().len(), 1);
        assert!(client.search("zebra", 10).unwrap().is_empty());
    }

    #[test]
    fn add_comment_to_unknown_photo_fails() {
        let net = net();
        let service = PicasaService::deploy(
            &net,
            &Endpoint::memory("picasa"),
            PhotoStore::with_fixture(),
        )
        .unwrap();
        let mut client = PicasaClient::connect(&net, service.endpoint()).unwrap();
        client.rpc.timeout = std::time::Duration::from_millis(300);
        assert!(client.add_comment("gphoto-999", "hi").is_err());
    }
}
