//! The deployment proxy of paper §5.1: "we deployed a simple proxy to
//! redirect the Flickr requests (originally directed to the Flickr
//! servers) to the local Starlink mediator."
//!
//! The proxy is protocol-agnostic: it relays whole wire messages between
//! the client connection and the redirect target, alternating
//! request/response (the RPC interaction pattern every protocol in this
//! reproduction uses).

use starlink_core::Result;
use starlink_net::{Endpoint, NetworkEngine};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running redirect proxy.
pub struct RedirectProxy {
    endpoint: Endpoint,
    stop: Arc<AtomicBool>,
    relayed: Arc<AtomicUsize>,
}

impl RedirectProxy {
    /// Deploys a proxy listening at `listen` and forwarding every
    /// request to `target`.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn deploy(
        net: &NetworkEngine,
        listen: &Endpoint,
        target: &Endpoint,
    ) -> Result<RedirectProxy> {
        let listener = net.listen(listen)?;
        let endpoint = listener.local_endpoint();
        let stop = Arc::new(AtomicBool::new(false));
        let relayed = Arc::new(AtomicUsize::new(0));
        let accept_stop = stop.clone();
        let counter = relayed.clone();
        let net = net.clone();
        let target = target.clone();
        std::thread::spawn(move || {
            while !accept_stop.load(Ordering::SeqCst) {
                let mut client = match listener.accept() {
                    Ok(c) => c,
                    Err(_) => return,
                };
                let mut upstream = match net.connect(&target) {
                    Ok(u) => u,
                    Err(_) => continue,
                };
                let stop = accept_stop.clone();
                let counter = counter.clone();
                std::thread::spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        let request = match client.receive_timeout(Duration::from_millis(500)) {
                            Ok(r) => r,
                            Err(starlink_net::NetError::Timeout) => continue,
                            Err(_) => return,
                        };
                        if upstream.send(&request).is_err() {
                            return;
                        }
                        let reply = match upstream.receive_timeout(Duration::from_secs(10)) {
                            Ok(r) => r,
                            Err(_) => return,
                        };
                        if client.send(&reply).is_err() {
                            return;
                        }
                        counter.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        Ok(RedirectProxy {
            endpoint,
            stop,
            relayed,
        })
    }

    /// The endpoint clients should be pointed at.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Number of request/response pairs relayed so far.
    pub fn relayed_exchanges(&self) -> usize {
        self.relayed.load(Ordering::SeqCst)
    }

    /// Requests shutdown.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

impl Drop for RedirectProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calculator::{AddClient, AddService};
    use starlink_net::MemoryTransport;

    #[test]
    fn proxy_relays_rpc_traffic_transparently() {
        let mut net = NetworkEngine::new();
        net.register(Arc::new(MemoryTransport::new()));
        let service = AddService::deploy(&net, &Endpoint::memory("add")).unwrap();
        let proxy =
            RedirectProxy::deploy(&net, &Endpoint::memory("flickr-lookalike"), service.endpoint())
                .unwrap();
        // The client believes it talks to the original endpoint.
        let mut client = AddClient::connect(&net, proxy.endpoint()).unwrap();
        assert_eq!(client.add(20, 22).unwrap(), 42);
        assert_eq!(client.add(1, 1).unwrap(), 2);
        assert_eq!(proxy.relayed_exchanges(), 2);
    }
}
