//! The deployment proxy of paper §5.1: "we deployed a simple proxy to
//! redirect the Flickr requests (originally directed to the Flickr
//! servers) to the local Starlink mediator."
//!
//! The proxy is protocol-agnostic: it relays whole wire messages between
//! the client connection and the redirect target, alternating
//! request/response (the RPC interaction pattern every protocol in this
//! reproduction uses).

use starlink_core::Result;
use starlink_net::{Endpoint, NetError, NetworkEngine};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the accept loop sleeps when no connection is pending.
const IDLE_POLL: Duration = Duration::from_millis(1);

/// How long the accept loop backs off after a transient accept error.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(5);

/// A running redirect proxy.
pub struct RedirectProxy {
    endpoint: Endpoint,
    stop: Arc<AtomicBool>,
    relayed: Arc<AtomicUsize>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl RedirectProxy {
    /// Deploys a proxy listening at `listen` and forwarding every
    /// request to `target`.
    ///
    /// Like [`starlink_core::MediatorHost`], the accept loop polls the
    /// listener (so shutdown takes effect promptly) and tolerates
    /// transient accept failures instead of dying on the first.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn deploy(
        net: &NetworkEngine,
        listen: &Endpoint,
        target: &Endpoint,
    ) -> Result<RedirectProxy> {
        let listener = net.listen(listen)?;
        let endpoint = listener.local_endpoint();
        let stop = Arc::new(AtomicBool::new(false));
        let relayed = Arc::new(AtomicUsize::new(0));
        let accept_stop = stop.clone();
        let counter = relayed.clone();
        let net = net.clone();
        let target = target.clone();
        let accept_thread = std::thread::spawn(move || {
            let mut relay_threads: Vec<JoinHandle<()>> = Vec::new();
            while !accept_stop.load(Ordering::SeqCst) {
                let mut client = match listener.try_accept() {
                    Ok(Some(c)) => c,
                    Ok(None) => {
                        std::thread::sleep(IDLE_POLL);
                        continue;
                    }
                    Err(NetError::Closed) => break,
                    Err(_) => {
                        std::thread::sleep(ACCEPT_BACKOFF);
                        continue;
                    }
                };
                let mut upstream = match net.connect(&target) {
                    Ok(u) => u,
                    Err(_) => continue,
                };
                let stop = accept_stop.clone();
                let counter = counter.clone();
                relay_threads.push(std::thread::spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        let request = match client.receive_timeout(Duration::from_millis(500)) {
                            Ok(r) => r,
                            Err(starlink_net::NetError::Timeout) => continue,
                            Err(_) => return,
                        };
                        if upstream.send(&request).is_err() {
                            return;
                        }
                        let reply = match upstream.receive_timeout(Duration::from_secs(10)) {
                            Ok(r) => r,
                            Err(_) => return,
                        };
                        if client.send(&reply).is_err() {
                            return;
                        }
                        counter.fetch_add(1, Ordering::SeqCst);
                    }
                }));
            }
            for t in relay_threads {
                let _ = t.join();
            }
        });
        Ok(RedirectProxy {
            endpoint,
            stop,
            relayed,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The endpoint clients should be pointed at.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Number of request/response pairs relayed so far.
    pub fn relayed_exchanges(&self) -> usize {
        self.relayed.load(Ordering::SeqCst)
    }

    /// Shuts the proxy down and joins its accept and relay threads.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let handle = self.accept_thread.lock().unwrap().take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

impl Drop for RedirectProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calculator::{AddClient, AddService};
    use starlink_net::MemoryTransport;

    #[test]
    fn proxy_relays_rpc_traffic_transparently() {
        let mut net = NetworkEngine::new();
        net.register(Arc::new(MemoryTransport::new()));
        let service = AddService::deploy(&net, &Endpoint::memory("add")).unwrap();
        let proxy = RedirectProxy::deploy(
            &net,
            &Endpoint::memory("flickr-lookalike"),
            service.endpoint(),
        )
        .unwrap();
        // The client believes it talks to the original endpoint.
        let mut client = AddClient::connect(&net, proxy.endpoint()).unwrap();
        assert_eq!(client.add(20, 22).unwrap(), 42);
        assert_eq!(client.add(1, 1).unwrap(), 2);
        assert_eq!(proxy.relayed_exchanges(), 2);
    }

    #[test]
    fn proxy_shutdown_is_prompt_and_joins() {
        let mut net = NetworkEngine::new();
        net.register(Arc::new(MemoryTransport::new()));
        let service = AddService::deploy(&net, &Endpoint::memory("add")).unwrap();
        let proxy =
            RedirectProxy::deploy(&net, &Endpoint::memory("front"), service.endpoint()).unwrap();
        // An idle relay thread is parked in a receive slice; shutdown
        // must interrupt it and join within a bounded time.
        let _idle = net.connect(proxy.endpoint()).unwrap();
        let started = std::time::Instant::now();
        proxy.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "shutdown took {:?}",
            started.elapsed()
        );
    }
}
