//! The running example of paper §4.3–4.4: an IIOP client invoking
//! `int Add(int, int)` made to interoperate with a SOAP service exposing
//! `int Plus(int, int)` — the application difference is the operation
//! name, the middleware difference is GIOP vs SOAP.

use starlink_automata::merge::{intertwine, MergeOptions, MergeReport};
use starlink_automata::{linear_usage_protocol, Automaton};
use starlink_core::{
    ColorRuntime, CoreError, Mediator, Result, RpcClient, RpcServer, ServiceHandler,
    ServiceInterface,
};
use starlink_mdl::MessageCodec;
use starlink_message::equiv::SemanticRegistry;
use starlink_message::{AbstractMessage, Value};
use starlink_net::{Endpoint, NetworkEngine};
use starlink_protocols::giop::{giop_binding, giop_codec};
use starlink_protocols::soap::{soap_binding, soap_codec};
use std::sync::Arc;

/// The IIOP client's application interface: `Add(x, y) → z`.
pub fn add_interface() -> ServiceInterface {
    let mut add = AbstractMessage::new("Add");
    add.set_field("x", Value::Null);
    add.set_field("y", Value::Null);
    let mut reply = AbstractMessage::new("Add.reply");
    reply.set_field("z", Value::Null);
    ServiceInterface::new().with_operation(add, reply)
}

/// The SOAP service's application interface: `Plus(x, y) → z`.
pub fn plus_interface() -> ServiceInterface {
    let mut plus = AbstractMessage::new("Plus");
    plus.set_field("x", Value::Null);
    plus.set_field("y", Value::Null);
    let mut reply = AbstractMessage::new("Plus.reply");
    reply.set_field("z", Value::Null);
    ServiceInterface::new().with_operation(plus, reply)
}

/// The Add usage automaton (Fig. 7 top-left).
pub fn add_usage_automaton() -> Automaton {
    linear_usage_protocol(
        "AddClient",
        1,
        &[(
            add_interface().operations()[0].0.clone(),
            add_interface().operations()[0].1.clone(),
        )],
    )
}

/// The Plus usage automaton.
pub fn plus_usage_automaton() -> Automaton {
    linear_usage_protocol(
        "PlusService",
        2,
        &[(
            plus_interface().operations()[0].0.clone(),
            plus_interface().operations()[0].1.clone(),
        )],
    )
}

/// The only semantic declaration this example needs: `Add ≅ Plus`
/// (parameters already share names, so field equivalence is implicit —
/// the merge generates the Fig. 8 MTL automatically).
pub fn calculator_registry() -> SemanticRegistry {
    let mut reg = SemanticRegistry::new();
    reg.declare_message_concept("addition", ["Add", "Plus"]);
    reg
}

/// Automatically merges Add⊕Plus (Fig. 8 left) with generated MTL.
///
/// # Errors
///
/// Never fails for these fixed models.
pub fn merged_add_plus() -> Result<(Automaton, MergeReport)> {
    Ok(intertwine(
        &add_usage_automaton(),
        &plus_usage_automaton(),
        &calculator_registry(),
        &MergeOptions::default(),
    )?)
}

/// The SOAP `Plus` service.
pub struct PlusService {
    server: RpcServer,
}

impl PlusService {
    /// Deploys the service.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn deploy(net: &NetworkEngine, endpoint: &Endpoint) -> Result<PlusService> {
        let codec: Arc<dyn MessageCodec> =
            Arc::new(soap_codec("calc.example.org", "/calc").map_err(CoreError::Mdl)?);
        let handler: Arc<ServiceHandler> = Arc::new(|req| {
            if req.name() != "Plus" {
                return Err(format!("unknown operation `{}`", req.name()));
            }
            let x: i64 = req
                .get("x")
                .map(Value::to_text)
                .and_then(|t| t.parse().ok())
                .ok_or("bad x")?;
            let y: i64 = req
                .get("y")
                .map(Value::to_text)
                .and_then(|t| t.parse().ok())
                .ok_or("bad y")?;
            let mut reply = AbstractMessage::new("Plus.reply");
            reply.set_field("z", Value::Int(x + y));
            Ok(reply)
        });
        let server = RpcServer::serve(
            net,
            endpoint,
            codec,
            soap_binding(),
            plus_interface(),
            handler,
        )?;
        Ok(PlusService { server })
    }

    /// The endpoint the service is reachable at.
    pub fn endpoint(&self) -> &Endpoint {
        self.server.endpoint()
    }
}

/// A native IIOP `Add` service (for direct-call baselines).
pub struct AddService {
    server: RpcServer,
}

impl AddService {
    /// Deploys the service.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn deploy(net: &NetworkEngine, endpoint: &Endpoint) -> Result<AddService> {
        let codec: Arc<dyn MessageCodec> = Arc::new(giop_codec().map_err(CoreError::Mdl)?);
        let handler: Arc<ServiceHandler> = Arc::new(|req| {
            if req.name() != "Add" {
                return Err(format!("unknown operation `{}`", req.name()));
            }
            let x = req.get("x").and_then(Value::as_int).ok_or("bad x")?;
            let y = req.get("y").and_then(Value::as_int).ok_or("bad y")?;
            let mut reply = AbstractMessage::new("Add.reply");
            reply.set_field("z", Value::Int(x + y));
            Ok(reply)
        });
        let server = RpcServer::serve(
            net,
            endpoint,
            codec,
            giop_binding(),
            add_interface(),
            handler,
        )?;
        Ok(AddService { server })
    }

    /// The endpoint the service is reachable at.
    pub fn endpoint(&self) -> &Endpoint {
        self.server.endpoint()
    }
}

/// The IIOP `Add` client application.
pub struct AddClient {
    rpc: RpcClient,
}

impl AddClient {
    /// Connects over GIOP.
    ///
    /// # Errors
    ///
    /// Connect failures.
    pub fn connect(net: &NetworkEngine, endpoint: &Endpoint) -> Result<AddClient> {
        let codec: Arc<dyn MessageCodec> = Arc::new(giop_codec().map_err(CoreError::Mdl)?);
        let rpc = RpcClient::connect(net, endpoint, codec, giop_binding(), add_interface())?;
        Ok(AddClient { rpc })
    }

    /// Invokes `Add(x, y)`.
    ///
    /// # Errors
    ///
    /// RPC failures or a malformed reply.
    pub fn add(&mut self, x: i64, y: i64) -> Result<i64> {
        let mut req = AbstractMessage::new("Add");
        req.set_field("x", Value::Int(x));
        req.set_field("y", Value::Int(y));
        let reply = self.rpc.call(&req)?;
        reply
            .get("z")
            .map(Value::to_text)
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| CoreError::Binding {
                message: "Add reply carried no integer z".into(),
            })
    }
}

/// Builds the Add→Plus mediator of Fig. 8: GIOP on the client color,
/// SOAP on the service color.
///
/// # Errors
///
/// Model-compilation failures.
pub fn add_plus_mediator(net: NetworkEngine, plus_endpoint: Endpoint) -> Result<Mediator> {
    let (merged, _) = merged_add_plus()?;
    Mediator::new(
        merged,
        1,
        vec![
            ColorRuntime {
                color: 1,
                binding: giop_binding(),
                codec: Arc::new(giop_codec().map_err(CoreError::Mdl)?),
                endpoint: None,
            },
            ColorRuntime {
                color: 2,
                binding: soap_binding(),
                codec: Arc::new(soap_codec("calc.example.org", "/calc").map_err(CoreError::Mdl)?),
                endpoint: Some(plus_endpoint),
            },
        ],
        net,
    )
}

/// Drives `clients` concurrent `Add` workloads of `requests` calls each
/// against `endpoint` (a service or a deployed mediator host), returning
/// the number of calls that completed with the correct sum. The
/// throughput benchmarks and the host scale tests share this generator.
pub fn run_add_workload(
    net: &NetworkEngine,
    endpoint: &Endpoint,
    clients: usize,
    requests: usize,
) -> usize {
    let mut handles = Vec::with_capacity(clients);
    for _ in 0..clients {
        let net = net.clone();
        let endpoint = endpoint.clone();
        handles.push(std::thread::spawn(move || {
            let Ok(mut client) = AddClient::connect(&net, &endpoint) else {
                return 0;
            };
            let mut ok = 0;
            for i in 0..requests {
                if matches!(client.add(i as i64, 1), Ok(z) if z == i as i64 + 1) {
                    ok += 1;
                }
            }
            ok
        }));
    }
    handles.into_iter().map(|h| h.join().unwrap_or(0)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_automata::Action;
    use starlink_net::MemoryTransport;

    fn net() -> NetworkEngine {
        let mut n = NetworkEngine::new();
        n.register(Arc::new(MemoryTransport::new()));
        n
    }

    #[test]
    fn merge_generates_fig8_mtl_automatically() {
        let (merged, report) = merged_add_plus().unwrap();
        assert_eq!(report.intertwined_count(), 1);
        let gammas: Vec<&str> = merged
            .transitions()
            .iter()
            .filter_map(|t| match &t.action {
                Action::Gamma { mtl } => Some(mtl.as_str()),
                _ => None,
            })
            .collect();
        assert!(gammas[0].contains("m2.x = m1.x"));
        assert!(gammas[0].contains("m2.y = m1.y"));
        assert!(gammas[1].contains("m5.z = m4.z"));
    }

    #[test]
    fn iiop_add_client_against_iiop_service() {
        let net = net();
        let service = AddService::deploy(&net, &Endpoint::memory("add")).unwrap();
        let mut client = AddClient::connect(&net, service.endpoint()).unwrap();
        assert_eq!(client.add(19, 23).unwrap(), 42);
    }

    #[test]
    fn add_client_to_plus_service_via_mediator() {
        let net = net();
        let plus = PlusService::deploy(&net, &Endpoint::memory("plus")).unwrap();
        let mediator = add_plus_mediator(net.clone(), plus.endpoint().clone()).unwrap();
        let host =
            starlink_core::MediatorHost::deploy(mediator, &Endpoint::memory("add-bridge")).unwrap();
        let mut client = AddClient::connect(&net, host.endpoint()).unwrap();
        assert_eq!(client.add(40, 2).unwrap(), 42);
        assert_eq!(client.add(-5, 5).unwrap(), 0);
    }

    #[test]
    fn workload_generator_through_multiplexed_host() {
        let net = net();
        let plus = PlusService::deploy(&net, &Endpoint::memory("plus")).unwrap();
        let mediator = add_plus_mediator(net.clone(), plus.endpoint().clone()).unwrap();
        let host = starlink_core::MediatorHost::deploy_multiplexed(
            mediator,
            &Endpoint::memory("add-bridge"),
            2,
        )
        .unwrap();
        let completed = run_add_workload(&net, host.endpoint(), 8, 3);
        assert_eq!(completed, 24);
        assert!(host.completed_sessions() >= 24);
    }
}
