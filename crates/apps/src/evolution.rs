//! The API-evolution scenario behind hypothesis H3 (paper §2.2, §5.2):
//! "when a new version of an API is released, any changes to the syntax
//! or behavior of the API may mean that existing clients or
//! interoperability mediators no longer function" — Starlink handles
//! this "using only the models".
//!
//! Scenario: Picasa ships **v2** of its API. The search path moves from
//! `/data/feed/api/all` to `/v2/search`, and the parameters are renamed
//! (`q` → `query`, `max-results` → `limit`). Unmodified Flickr clients
//! keep working because only three model artefacts change: the REST
//! route table, the service interface templates, and two MTL assignment
//! lines. No client or engine code is touched.

use crate::flickr::{flickr_binding, flickr_codec, FlickrFlavor};
use crate::models::{case_study_registry, flickr_usage_automaton};
use crate::store::PhotoStore;
use starlink_automata::linear_usage_protocol;
use starlink_automata::merge::{intertwine, into_service_loop, GammaKind, MergeOptions};
use starlink_automata::Automaton;
use starlink_core::{
    ActionRule, ColorRuntime, CoreError, Mediator, ParamRule, ProtocolBinding, ReplyAction,
    RestRoute, Result, RpcServer, ServiceHandler, ServiceInterface,
};
use starlink_mdl::MessageCodec;
use starlink_message::equiv::SemanticRegistry;
use starlink_message::{AbstractMessage, Field, Value};
use starlink_net::{Endpoint, NetworkEngine};
use starlink_protocols::gdata::rest_codec;
use std::sync::Arc;

/// v2 search path.
pub const V2_SEARCH_PATH: &str = "/v2/search";
/// v2 comments path.
pub const V2_COMMENTS_PATH: &str = "/v2/comments";

/// The v2 application interface: renamed parameters.
pub fn picasa_v2_interface() -> ServiceInterface {
    let mut search = AbstractMessage::new("picasa2.search");
    search.set_field("query", Value::Null);
    search.push_field(Field::optional("limit", Value::Null));
    let mut search_reply = AbstractMessage::new("picasa2.search.reply");
    search_reply.push_field(Field::optional("Title", Value::Null));
    search_reply.set_field("Entries", Value::Null);

    let mut get_comments = AbstractMessage::new("picasa2.getComments");
    get_comments.set_field("entry_id", Value::Null);
    let mut get_comments_reply = AbstractMessage::new("picasa2.getComments.reply");
    get_comments_reply.set_field("Entries", Value::Null);

    let mut add_comment = AbstractMessage::new("picasa2.addComment");
    add_comment.set_field("entry_id", Value::Null);
    add_comment.set_field("content", Value::Null);
    let mut add_comment_reply = AbstractMessage::new("picasa2.addComment.reply");
    add_comment_reply.set_field("id", Value::Null);

    ServiceInterface::new()
        .with_operation(search, search_reply)
        .with_operation(get_comments, get_comments_reply)
        .with_operation(add_comment, add_comment_reply)
}

/// The v2 REST binding: new routes, renamed query parameters.
pub fn picasa_v2_binding() -> ProtocolBinding {
    let uri: starlink_message::FieldPath = "RequestURI".parse().expect("static path");
    ProtocolBinding::new("REST-v2", "RESTv2.mdl", "HTTPRequest", "GDataFeed")
        .with_request_action(ActionRule::Rest {
            method_field: "Method".parse().expect("static path"),
            uri_field: uri.clone(),
            routes: vec![
                RestRoute {
                    action: "picasa2.search".into(),
                    method: "GET".into(),
                    path: V2_SEARCH_PATH.into(),
                },
                RestRoute {
                    action: "picasa2.getComments".into(),
                    method: "GET".into(),
                    path: V2_COMMENTS_PATH.into(),
                },
                RestRoute {
                    action: "picasa2.addComment".into(),
                    method: "POST".into(),
                    path: V2_COMMENTS_PATH.into(),
                },
            ],
        })
        .with_reply_action(ReplyAction::Correlated)
        .with_params(
            ParamRule::PerAction {
                rules: vec![("picasa2.addComment".into(), ParamRule::NamedFields(None))],
                default: Box::new(ParamRule::Query { uri_field: uri }),
            },
            ParamRule::NamedFields(None),
        )
        .with_request_message_override("picasa2.addComment", "GDataEntry")
        .with_reply_message_override("picasa2.addComment.reply", "GDataEntryReply")
        .with_request_default(
            "Version".parse().expect("static path"),
            Value::Str("HTTP/1.1".into()),
        )
        .with_request_default(
            "Headers".parse().expect("static path"),
            Value::Struct(vec![Field::new(
                "Host",
                Value::Str("picasaweb.google.com".into()),
            )]),
        )
        .with_request_default(
            "Body".parse().expect("static path"),
            Value::Str(String::new()),
        )
}

/// The v2 service handler (Google's side of the evolution — renamed
/// inputs, same behaviour).
pub fn picasa_v2_handler(store: PhotoStore) -> Arc<ServiceHandler> {
    Arc::new(move |req| match req.name() {
        "picasa2.search" => {
            let q = req.get("query").map(Value::to_text).unwrap_or_default();
            let limit = req
                .get("limit")
                .map(Value::to_text)
                .and_then(|t| t.parse().ok())
                .unwrap_or(10usize);
            let mut reply = AbstractMessage::new("picasa2.search.reply");
            reply.set_field(
                "Entries",
                Value::Array(
                    store
                        .search(&q, limit)
                        .iter()
                        .map(|p| {
                            Value::Struct(vec![
                                Field::new("id", Value::Str(p.id.clone())),
                                Field::new("title", Value::Str(p.title.clone())),
                                Field::new("url", Value::Str(p.url.clone())),
                            ])
                        })
                        .collect(),
                ),
            );
            Ok(reply)
        }
        "picasa2.getComments" => {
            let entry_id = req
                .get("entry_id")
                .map(Value::to_text)
                .ok_or("missing entry_id")?;
            let mut reply = AbstractMessage::new("picasa2.getComments.reply");
            reply.set_field(
                "Entries",
                Value::Array(
                    store
                        .comments(&entry_id)
                        .iter()
                        .map(|c| {
                            Value::Struct(vec![
                                Field::new("id", Value::Str(c.id.clone())),
                                Field::new("content", Value::Str(c.text.clone())),
                                Field::new("author", Value::Str(c.author.clone())),
                            ])
                        })
                        .collect(),
                ),
            );
            Ok(reply)
        }
        "picasa2.addComment" => {
            let entry_id = req
                .get("entry_id")
                .map(Value::to_text)
                .ok_or("missing entry_id")?;
            let content = req
                .get("content")
                .map(Value::to_text)
                .ok_or("missing content")?;
            let comment = store.add_comment(&entry_id, "starlink-user", &content);
            let mut reply = AbstractMessage::new("picasa2.addComment.reply");
            reply.set_field("id", Value::Str(comment.id));
            Ok(reply)
        }
        other => Err(format!("picasa-v2: unknown operation `{other}`")),
    })
}

/// A running v2 service.
pub struct PicasaV2Service {
    server: RpcServer,
}

impl PicasaV2Service {
    /// Deploys the v2 service.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn deploy(
        net: &NetworkEngine,
        endpoint: &Endpoint,
        store: PhotoStore,
    ) -> Result<PicasaV2Service> {
        let codec: Arc<dyn MessageCodec> =
            Arc::new(rest_codec("picasaweb.google.com").map_err(CoreError::Mdl)?);
        let server = RpcServer::serve(
            net,
            endpoint,
            codec,
            picasa_v2_binding(),
            picasa_v2_interface(),
            picasa_v2_handler(store),
        )?;
        Ok(PicasaV2Service { server })
    }

    /// The endpoint the service is reachable at.
    pub fn endpoint(&self) -> &Endpoint {
        self.server.endpoint()
    }
}

/// The v2 usage automaton and registry additions — the *model-only*
/// changes the evolution requires.
pub fn picasa_v2_usage_automaton() -> Automaton {
    let iface = picasa_v2_interface();
    let ops: Vec<_> = iface
        .operations()
        .iter()
        .map(|(req, rep)| (req.clone(), rep.clone()))
        .collect();
    linear_usage_protocol("APicasaV2", 2, &ops)
}

/// Registry for v1-client ↔ v2-service alignment.
pub fn v2_registry() -> SemanticRegistry {
    let mut reg = case_study_registry();
    // Three added declarations — the complete semantic delta of v2.
    reg.declare_message_concept("photo-search", ["picasa2.search"]);
    reg.declare_message_concept("comment-list", ["picasa2.getComments"]);
    reg.declare_message_concept("comment-add", ["picasa2.addComment"]);
    reg.declare_field_concept("keyword", ["query"]);
    reg.declare_field_concept("result-limit", ["limit"]);
    reg
}

fn v2_mtl() -> MergeOptions {
    // Identical to models::case_study_mtl except the two renamed
    // assignments in the search request program — the textual delta
    // hypothesis H3 measures.
    MergeOptions::default()
        .with_mtl(
            "flickr.photos.search",
            GammaKind::Request,
            "m2.query = m1.text\nm2.limit = m1.per_page",
        )
        .with_mtl(
            "flickr.photos.search",
            GammaKind::Reply,
            r#"
m5.photos = newarray()
foreach e in m4.Entries {
  let p = newstruct()
  p.id = genid()
  cache(p.id, e)
  append(m5.photos, p)
}
"#,
        )
        .with_mtl(
            "flickr.photos.getInfo",
            GammaKind::Local,
            r#"
let e = getcache(m7.photo_id)
let p = newstruct()
p.id = m7.photo_id
p.title = e.title
p.url = e.url
m8.photo = p
"#,
        )
        .with_mtl(
            "flickr.photos.comments.getList",
            GammaKind::Request,
            "let e = getcache(m10.photo_id)\nm11.entry_id = e.id",
        )
        .with_mtl(
            "flickr.photos.comments.getList",
            GammaKind::Reply,
            r#"
m14.comments = newarray()
foreach c in m13.Entries {
  let out = newstruct()
  out.author = c.author
  out.text = c.content
  append(m14.comments, out)
}
"#,
        )
        .with_mtl(
            "flickr.photos.comments.addComment",
            GammaKind::Request,
            "let e = getcache(m16.photo_id)\nm17.entry_id = e.id\nm17.content = m16.comment_text",
        )
        .with_mtl(
            "flickr.photos.comments.addComment",
            GammaKind::Reply,
            "m20.comment_id = m19.id",
        )
}

/// Builds the Flickr→Picasa-v2 mediator: the same unmodified Flickr
/// client models, the evolved service models.
///
/// # Errors
///
/// Merge or model-compilation failures.
pub fn flickr_picasa_v2_mediator(
    net: NetworkEngine,
    flavor: FlickrFlavor,
    picasa_endpoint: Endpoint,
) -> Result<Mediator> {
    let (merged, _) = intertwine(
        &flickr_usage_automaton(),
        &picasa_v2_usage_automaton(),
        &v2_registry(),
        &v2_mtl(),
    )?;
    let service = into_service_loop(&merged)?;
    Mediator::new(
        service,
        1,
        vec![
            ColorRuntime {
                color: 1,
                binding: flickr_binding(flavor),
                codec: flickr_codec(flavor)?,
                endpoint: None,
            },
            ColorRuntime {
                color: 2,
                binding: picasa_v2_binding(),
                codec: Arc::new(rest_codec("picasaweb.google.com").map_err(CoreError::Mdl)?),
                endpoint: Some(picasa_endpoint),
            },
        ],
        net,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_automata::merge::MergeClass;
    use starlink_net::MemoryTransport;

    #[test]
    fn v2_merge_still_strong() {
        let (merged, report) = intertwine(
            &flickr_usage_automaton(),
            &picasa_v2_usage_automaton(),
            &v2_registry(),
            &v2_mtl(),
        )
        .unwrap();
        merged.validate().unwrap();
        assert_eq!(report.class, MergeClass::Strong);
        assert_eq!(report.intertwined_count(), 3);
    }

    #[test]
    fn v2_service_native_flow() {
        let mut net = NetworkEngine::new();
        net.register(Arc::new(MemoryTransport::new()));
        let service = PicasaV2Service::deploy(
            &net,
            &Endpoint::memory("picasa-v2"),
            PhotoStore::with_fixture(),
        )
        .unwrap();
        // Drive it at the protocol level through a v2 binding client.
        let codec: Arc<dyn MessageCodec> = Arc::new(rest_codec("picasaweb.google.com").unwrap());
        let mut rpc = starlink_core::RpcClient::connect(
            &net,
            service.endpoint(),
            codec,
            picasa_v2_binding(),
            picasa_v2_interface(),
        )
        .unwrap();
        let mut req = AbstractMessage::new("picasa2.search");
        req.set_field("query", Value::from("tree"));
        req.set_field("limit", Value::from("2"));
        let reply = rpc.call(&req).unwrap();
        assert_eq!(reply.get("Entries").unwrap().as_array().unwrap().len(), 2);
    }
}
