//! The case-study interoperability models: the semantic registry, the
//! Fig. 2 usage-protocol automata, the Fig. 3 merged automaton with the
//! Fig. 9/10 MTL programs, and mediator constructors for the paper's two
//! use cases (XML-RPC→REST and SOAP→REST).

use crate::flickr::{flickr_binding, flickr_codec, flickr_interface, FlickrFlavor};
use crate::picasa::picasa_interface;
use starlink_automata::merge::{
    intertwine, into_service_loop, GammaKind, MergeOptions, MergeReport,
};
use starlink_automata::{linear_usage_protocol, Automaton, NetworkSemantics};
use starlink_core::{ColorRuntime, CoreError, Mediator, Result, ServiceInterface};
use starlink_message::equiv::SemanticRegistry;
use starlink_net::{Endpoint, NetworkEngine};
use starlink_protocols::gdata::{rest_binding, rest_codec};

/// The semantic equivalences of the case study — what a Starlink
/// developer declares so the intertwining analysis can align the two APIs
/// (paper §3.2: `text ≅ q`, `per_page ≅ max-results`, …).
pub fn case_study_registry() -> SemanticRegistry {
    let mut reg = SemanticRegistry::new();
    reg.declare_message_concept(
        "photo-search",
        ["flickr.photos.search", "picasa.photos.search"],
    );
    reg.declare_message_concept(
        "comment-list",
        ["flickr.photos.comments.getList", "picasa.getComments"],
    );
    reg.declare_message_concept(
        "comment-add",
        ["flickr.photos.comments.addComment", "picasa.addComment"],
    );
    reg.declare_field_concept("keyword", ["text", "q"]);
    reg.declare_field_concept("result-limit", ["per_page", "max-results"]);
    reg.declare_field_concept("photo-ref", ["photo_id", "entry_id"]);
    reg.declare_field_concept("comment-text", ["comment_text", "content"]);
    reg.declare_field_concept("photo-data", ["photo", "photos", "Entries"]);
    reg.declare_field_concept("comment-data", ["comments", "commentEntries"]);
    reg
}

fn usage_from_interface(name: &str, color: u8, iface: &ServiceInterface) -> Automaton {
    let ops: Vec<_> = iface
        .operations()
        .iter()
        .map(|(req, rep)| (req.clone(), rep.clone()))
        .collect();
    linear_usage_protocol(name, color, &ops)
}

/// The Flickr API usage protocol of Fig. 2 (left): search → getInfo →
/// getList → addComment, each `!op ?op` pair.
pub fn flickr_usage_automaton() -> Automaton {
    let mut a = usage_from_interface("AFlickr", 1, &flickr_interface());
    a.set_network(1, NetworkSemantics::tcp_sync("XMLRPC.mdl"));
    a
}

/// The Picasa API usage protocol of Fig. 2 (right).
pub fn picasa_usage_automaton() -> Automaton {
    let mut a = usage_from_interface("APicasa", 2, &picasa_interface());
    a.set_network(2, NetworkSemantics::tcp_sync("REST.mdl"));
    a
}

/// The Fig. 9/10 translation programs, keyed by the merge-generated state
/// ids (the deterministic scheme documented on
/// [`starlink_automata::merge::MergeBuilder::intertwined`]): `m1` is the
/// received Flickr search, `m2` the Picasa search under composition, and
/// so on.
fn case_study_mtl() -> MergeOptions {
    MergeOptions::default()
        // Fig. 9 request side: keyword and limit mapping.
        .with_mtl(
            "flickr.photos.search",
            GammaKind::Request,
            "m2.q = m1.text\nm2.max-results = m1.per_page",
        )
        // Fig. 9 response side: mint dummy Flickr photo ids, cache the
        // Picasa entries behind them.
        .with_mtl(
            "flickr.photos.search",
            GammaKind::Reply,
            r#"
m5.photos = newarray()
foreach e in m4.Entries {
  let p = newstruct()
  p.id = genid()
  cache(p.id, e)
  append(m5.photos, p)
}
"#,
        )
        // Fig. 10: getInfo answered from the cache, no Picasa call.
        .with_mtl(
            "flickr.photos.getInfo",
            GammaKind::Local,
            r#"
let e = getcache(m7.photo_id)
let p = newstruct()
p.id = m7.photo_id
p.title = e.title
p.url = e.url
m8.photo = p
"#,
        )
        // Comments listing: dummy id → real Picasa entry id.
        .with_mtl(
            "flickr.photos.comments.getList",
            GammaKind::Request,
            "let e = getcache(m10.photo_id)\nm11.entry_id = e.id",
        )
        .with_mtl(
            "flickr.photos.comments.getList",
            GammaKind::Reply,
            r#"
m14.comments = newarray()
foreach c in m13.Entries {
  let out = newstruct()
  out.author = c.author
  out.text = c.content
  append(m14.comments, out)
}
"#,
        )
        // Comment posting.
        .with_mtl(
            "flickr.photos.comments.addComment",
            GammaKind::Request,
            "let e = getcache(m16.photo_id)\nm17.entry_id = e.id\nm17.content = m16.comment_text",
        )
        .with_mtl(
            "flickr.photos.comments.addComment",
            GammaKind::Reply,
            "m20.comment_id = m19.id",
        )
}

/// Builds the merged Flickr⊕Picasa automaton of Fig. 3 via the automatic
/// intertwining analysis, returning the automaton and the merge report
/// (expected: strong merge, 3 intertwined pairs, getInfo answered from
/// history).
///
/// # Errors
///
/// Propagates [`starlink_automata::AutomatonError::NotMergeable`] if the
/// models drift apart.
pub fn merged_flickr_picasa() -> Result<(Automaton, MergeReport)> {
    let reg = case_study_registry();
    let (merged, report) = intertwine(
        &flickr_usage_automaton(),
        &picasa_usage_automaton(),
        &reg,
        &case_study_mtl(),
    )?;
    Ok((merged, report))
}

/// Builds the deployable Flickr→Picasa mediator for one of the two use
/// cases of §5.1: the client-facing color speaks `flavor` (XML-RPC or
/// SOAP), the service-facing color REST against `picasa_endpoint`.
///
/// # Errors
///
/// Merge or model-compilation failures.
pub fn flickr_picasa_mediator(
    net: NetworkEngine,
    flavor: FlickrFlavor,
    picasa_endpoint: Endpoint,
) -> Result<Mediator> {
    let (merged, _report) = merged_flickr_picasa()?;
    // Deploy the looped service form so clients may perform operations in
    // any order and repeatedly on one connection.
    let service = into_service_loop(&merged)?;
    Mediator::new(
        service,
        1,
        vec![
            ColorRuntime {
                color: 1,
                binding: flickr_binding(flavor),
                codec: flickr_codec(flavor)?,
                endpoint: None,
            },
            ColorRuntime {
                color: 2,
                binding: rest_binding(),
                codec: std::sync::Arc::new(
                    rest_codec("picasaweb.google.com").map_err(CoreError::Mdl)?,
                ),
                endpoint: Some(picasa_endpoint),
            },
        ],
        net,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_automata::merge::{MergeClass, OpResolution};
    use starlink_automata::Action;

    #[test]
    fn fig2_usage_automata_shapes() {
        let flickr = flickr_usage_automaton();
        flickr.validate().unwrap();
        assert_eq!(flickr.transitions().len(), 8, "4 ops × (send+receive)");
        assert_eq!(flickr.states().len(), 9);
        let picasa = picasa_usage_automaton();
        picasa.validate().unwrap();
        assert_eq!(picasa.transitions().len(), 6, "3 ops × (send+receive)");
    }

    #[test]
    fn fig3_merge_is_strong_with_three_intertwined_pairs() {
        let (merged, report) = merged_flickr_picasa().unwrap();
        merged.validate().unwrap();
        assert_eq!(report.class, MergeClass::Strong);
        assert_eq!(report.intertwined_count(), 3);
        assert!(report.resolutions.iter().any(|r| matches!(
            r,
            OpResolution::AnsweredFromHistory { client_op, derivable: true }
                if client_op == "flickr.photos.getInfo"
        )));
        // Fig. 3 has six bi-colored nodes: two per intertwined pair.
        let bicolored = merged.states().iter().filter(|s| s.is_bicolored()).count();
        assert_eq!(bicolored, 6);
        // γ-transitions: 2 per intertwined pair + 1 for the local answer.
        assert_eq!(merged.gamma_count(), 7);
    }

    #[test]
    fn merged_mtl_uses_cache_keywords() {
        let (merged, _) = merged_flickr_picasa().unwrap();
        let mtl_texts: Vec<&str> = merged
            .transitions()
            .iter()
            .filter_map(|t| match &t.action {
                Action::Gamma { mtl } => Some(mtl.as_str()),
                _ => None,
            })
            .collect();
        assert!(mtl_texts.iter().any(|m| m.contains("cache(p.id, e)")));
        assert!(mtl_texts
            .iter()
            .any(|m| m.contains("getcache(m7.photo_id)")));
        assert!(mtl_texts.iter().any(|m| m.contains("m2.q = m1.text")));
    }

    #[test]
    fn state_id_scheme_matches_mtl_references() {
        // The MTL programs reference m1/m2/m4/m5/m7/m8/…; assert the
        // generated automaton actually has those states in the expected
        // roles so the programs cannot silently drift.
        let (merged, _) = merged_flickr_picasa().unwrap();
        let recv_search = merged
            .transitions()
            .iter()
            .find(|t| t.action.label() == "?flickr.photos.search")
            .unwrap();
        assert_eq!(recv_search.to, "m1");
        let send_picasa_search = merged
            .transitions()
            .iter()
            .find(|t| t.action.label() == "!picasa.photos.search")
            .unwrap();
        assert_eq!(send_picasa_search.from, "m2");
        let recv_getinfo = merged
            .transitions()
            .iter()
            .find(|t| t.action.label() == "?flickr.photos.getInfo")
            .unwrap();
        assert_eq!(recv_getinfo.to, "m7");
        let send_add = merged
            .transitions()
            .iter()
            .find(|t| t.action.label() == "!picasa.addComment")
            .unwrap();
        assert_eq!(send_add.from, "m17");
    }

    #[test]
    fn dot_export_of_merged_model() {
        let (merged, _) = merged_flickr_picasa().unwrap();
        let dot = merged.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("?flickr.photos.search"));
        assert!(dot.contains("style=dashed"), "γ transitions dashed");
    }

    #[test]
    fn registry_aligns_the_apis() {
        let reg = case_study_registry();
        assert!(reg.message_names_equivalent("flickr.photos.search", "picasa.photos.search"));
        assert_eq!(reg.field_concept("text"), reg.field_concept("q"));
        assert_eq!(
            reg.field_concept("per_page"),
            reg.field_concept("max-results")
        );
        assert_ne!(reg.field_concept("text"), reg.field_concept("photo_id"));
    }
}
