//! The photo database both simulated services are built on.
//!
//! The paper's evaluation ran against the live Flickr and Picasa APIs;
//! this reproduction substitutes a local store exposing the same
//! behaviour (DESIGN.md §2): keyword search over public photos, comment
//! listing, and comment posting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Minimal deterministic PRNG (splitmix64) for workload generation;
/// the same seed always yields the same store contents.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }
}

/// A stored photograph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Photo {
    /// Service-side identifier (`gphoto-…`).
    pub id: String,
    /// Title shown in search results.
    pub title: String,
    /// JPEG URL.
    pub url: String,
    /// Owning user.
    pub owner: String,
    /// Keywords the photo is findable under.
    pub tags: Vec<String>,
}

/// A comment on a photo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment identifier.
    pub id: String,
    /// Author name.
    pub author: String,
    /// Comment text.
    pub text: String,
}

#[derive(Default)]
struct Inner {
    photos: Vec<Photo>,
    comments: Vec<(String, Comment)>,
}

/// Thread-safe photo store shared by a service's connection handlers.
#[derive(Clone, Default)]
pub struct PhotoStore {
    inner: Arc<RwLock<Inner>>,
    next_comment: Arc<AtomicU64>,
}

impl PhotoStore {
    /// An empty store.
    pub fn new() -> PhotoStore {
        PhotoStore::default()
    }

    /// The store seeded with the case study's fixture data: a handful of
    /// tree/oak/beach photographs with a few comments.
    pub fn with_fixture() -> PhotoStore {
        let store = PhotoStore::new();
        let fixtures = [
            ("Tall Tree", "alice", &["tree", "nature"][..]),
            ("Old Oak", "bob", &["tree", "oak"][..]),
            ("Pine Forest", "alice", &["tree", "forest"][..]),
            ("Sunny Beach", "carol", &["beach", "sea"][..]),
            ("City Lights", "dave", &["city", "night"][..]),
        ];
        for (i, (title, owner, tags)) in fixtures.iter().enumerate() {
            store.add_photo(Photo {
                id: format!("gphoto-{}", i + 1),
                title: (*title).to_owned(),
                url: format!("http://photos.example.org/{}.jpg", i + 1),
                owner: (*owner).to_owned(),
                tags: tags.iter().map(|s| (*s).to_owned()).collect(),
            });
        }
        store.add_comment("gphoto-1", "bob", "great shot");
        store.add_comment("gphoto-1", "carol", "love the light");
        store.add_comment("gphoto-2", "alice", "how old is it?");
        store
    }

    /// A store filled with `n` generated photos (deterministic for a
    /// seed) — the benchmark workload generator.
    pub fn with_random_photos(n: usize, seed: u64) -> PhotoStore {
        let store = PhotoStore::new();
        let mut rng = SplitMix64(seed);
        let tags = ["tree", "oak", "beach", "city", "sky", "river"];
        let owners = ["alice", "bob", "carol", "dave"];
        for i in 0..n {
            let tag = tags[rng.below(tags.len())];
            store.add_photo(Photo {
                id: format!("gphoto-{}", i + 1),
                title: format!("{tag} #{i}"),
                url: format!("http://photos.example.org/{}.jpg", i + 1),
                owner: owners[rng.below(owners.len())].to_owned(),
                tags: vec![tag.to_owned()],
            });
        }
        store
    }

    /// Adds a photo.
    pub fn add_photo(&self, photo: Photo) {
        self.inner.write().unwrap().photos.push(photo);
    }

    /// Keyword search over titles and tags, capped at `limit` results.
    pub fn search(&self, keyword: &str, limit: usize) -> Vec<Photo> {
        let keyword = keyword.to_ascii_lowercase();
        self.inner
            .read()
            .unwrap()
            .photos
            .iter()
            .filter(|p| {
                p.title.to_ascii_lowercase().contains(&keyword)
                    || p.tags.iter().any(|t| t == &keyword)
            })
            .take(limit)
            .cloned()
            .collect()
    }

    /// Photo lookup by id.
    pub fn photo(&self, id: &str) -> Option<Photo> {
        self.inner
            .read()
            .unwrap()
            .photos
            .iter()
            .find(|p| p.id == id)
            .cloned()
    }

    /// Total number of photos.
    pub fn photo_count(&self) -> usize {
        self.inner.read().unwrap().photos.len()
    }

    /// Comments on a photo, oldest first.
    pub fn comments(&self, photo_id: &str) -> Vec<Comment> {
        self.inner
            .read()
            .unwrap()
            .comments
            .iter()
            .filter(|(pid, _)| pid == photo_id)
            .map(|(_, c)| c.clone())
            .collect()
    }

    /// Adds a comment; returns the stored comment (with its new id).
    pub fn add_comment(&self, photo_id: &str, author: &str, text: &str) -> Comment {
        let id = format!(
            "comment-{}",
            self.next_comment.fetch_add(1, Ordering::SeqCst) + 1
        );
        let comment = Comment {
            id,
            author: author.to_owned(),
            text: text.to_owned(),
        };
        self.inner
            .write()
            .unwrap()
            .comments
            .push((photo_id.to_owned(), comment.clone()));
        comment
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_contents() {
        let s = PhotoStore::with_fixture();
        assert_eq!(s.photo_count(), 5);
        assert_eq!(s.search("tree", 10).len(), 3);
        assert_eq!(s.search("tree", 2).len(), 2);
        assert_eq!(s.search("TREE", 10).len(), 3, "case-insensitive");
        assert_eq!(s.comments("gphoto-1").len(), 2);
        assert!(s.comments("gphoto-9").is_empty());
        assert!(s.photo("gphoto-2").is_some());
        assert!(s.photo("nope").is_none());
    }

    #[test]
    fn comments_get_fresh_ids() {
        let s = PhotoStore::new();
        let a = s.add_comment("p", "x", "one");
        let b = s.add_comment("p", "y", "two");
        assert_ne!(a.id, b.id);
        assert_eq!(s.comments("p").len(), 2);
    }

    #[test]
    fn random_store_is_deterministic() {
        let a = PhotoStore::with_random_photos(100, 7);
        let b = PhotoStore::with_random_photos(100, 7);
        assert_eq!(a.photo_count(), 100);
        assert_eq!(a.search("tree", 1000).len(), b.search("tree", 1000).len());
    }

    #[test]
    fn search_limit_applies() {
        let s = PhotoStore::with_random_photos(500, 1);
        assert!(s.search("tree", 5).len() <= 5);
    }
}
