//! Case-study applications for the Starlink reproduction (paper §2, §5):
//! simulated Flickr and Picasa photo services, heterogeneous clients, the
//! Add/Plus calculator of Fig. 7/8, the deployment proxy, and the
//! interoperability models that tie them together.
//!
//! * [`store`] — the photo database both services sit on (photos,
//!   comments, seeded and random workloads),
//! * [`picasa`] — a Picasa-compatible REST/GData service,
//! * [`flickr`] — Flickr-compatible XML-RPC and SOAP services **and**
//!   clients (the paper's two hand-developed test clients),
//! * [`models`] — the case-study models: semantic registry, the Fig. 2
//!   usage automata, the Fig. 3 merged automaton with the Fig. 9/10 MTL
//!   programs, and mediator constructors for both use cases,
//! * [`calculator`] — the Add (IIOP) / Plus (SOAP) running example,
//! * [`maps`] — a second domain: heterogeneous maps APIs (XML-RPC
//!   geocoding client vs REST service),
//! * [`proxy`] — the byte-level redirect proxy used to point unmodified
//!   clients at a mediator (§5.1),
//! * [`evolution`] — the API-evolution scenario backing hypothesis H3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calculator;
pub mod evolution;
pub mod flickr;
pub mod maps;
pub mod models;
pub mod picasa;
pub mod proxy;
pub mod store;
