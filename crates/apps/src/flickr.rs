//! The Flickr side of the case study: the application interface of
//! paper Fig. 1 (left column), service implementations over XML-RPC and
//! SOAP, and the two hand-developed test clients of §5.1.
//!
//! Application-level operations:
//!
//! * `flickr.photos.search(api_key, text, per_page)` →
//!   `…reply(photos)` — a list of photo ids only (Fig. 2: `getInfo`
//!   must be called to obtain the URL),
//! * `flickr.photos.getInfo(api_key, photo_id)` → `…reply(photo)` — a
//!   structure with `id`, `title`, `url`,
//! * `flickr.photos.comments.getList(api_key, photo_id)` →
//!   `…reply(comments)`,
//! * `flickr.photos.comments.addComment(api_key, photo_id,
//!   comment_text)` → `…reply(comment_id)`.

use crate::store::PhotoStore;
use starlink_core::{CoreError, Result, RpcClient, RpcServer, ServiceHandler, ServiceInterface};
use starlink_mdl::MessageCodec;
use starlink_message::{AbstractMessage, Field, Value};
use starlink_net::{Endpoint, NetworkEngine};
use starlink_protocols::soap::{soap_binding, soap_codec};
use starlink_protocols::xmlrpc::{xmlrpc_binding, xmlrpc_codec};
use std::sync::Arc;

/// Builds the Flickr application interface (operation templates; field
/// order defines the positional parameter layout on XML-RPC and SOAP).
pub fn flickr_interface() -> ServiceInterface {
    let mut search = AbstractMessage::new("flickr.photos.search");
    search.set_field("api_key", Value::Null);
    search.set_field("text", Value::Null);
    search.set_field("per_page", Value::Null);
    let mut search_reply = AbstractMessage::new("flickr.photos.search.reply");
    search_reply.set_field("photos", Value::Null);

    let mut get_info = AbstractMessage::new("flickr.photos.getInfo");
    get_info.set_field("api_key", Value::Null);
    get_info.set_field("photo_id", Value::Null);
    let mut get_info_reply = AbstractMessage::new("flickr.photos.getInfo.reply");
    get_info_reply.set_field("photo", Value::Null);

    let mut get_list = AbstractMessage::new("flickr.photos.comments.getList");
    get_list.set_field("api_key", Value::Null);
    get_list.set_field("photo_id", Value::Null);
    let mut get_list_reply = AbstractMessage::new("flickr.photos.comments.getList.reply");
    get_list_reply.set_field("comments", Value::Null);

    let mut add_comment = AbstractMessage::new("flickr.photos.comments.addComment");
    add_comment.set_field("api_key", Value::Null);
    add_comment.set_field("photo_id", Value::Null);
    add_comment.set_field("comment_text", Value::Null);
    let mut add_comment_reply = AbstractMessage::new("flickr.photos.comments.addComment.reply");
    add_comment_reply.set_field("comment_id", Value::Null);

    ServiceInterface::new()
        .with_operation(search, search_reply)
        .with_operation(get_info, get_info_reply)
        .with_operation(get_list, get_list_reply)
        .with_operation(add_comment, add_comment_reply)
}

/// The native Flickr service handler over a [`PhotoStore`] (used by the
/// pure protocol-bridge scenario, where application behaviour is shared
/// and only middleware differs).
pub fn flickr_handler(store: PhotoStore) -> Arc<ServiceHandler> {
    Arc::new(move |req| match req.name() {
        "flickr.photos.search" => {
            let text = req.get("text").map(Value::to_text).unwrap_or_default();
            let per_page = req
                .get("per_page")
                .map(Value::to_text)
                .and_then(|t| t.parse().ok())
                .unwrap_or(10usize);
            let results = store.search(&text, per_page);
            let mut reply = AbstractMessage::new("flickr.photos.search.reply");
            reply.set_field(
                "photos",
                Value::Array(
                    results
                        .iter()
                        .map(|p| {
                            Value::Struct(vec![
                                Field::new("id", Value::Str(p.id.clone())),
                                Field::new("owner", Value::Str(p.owner.clone())),
                            ])
                        })
                        .collect(),
                ),
            );
            Ok(reply)
        }
        "flickr.photos.getInfo" => {
            let id = req
                .get("photo_id")
                .map(Value::to_text)
                .ok_or("missing photo_id")?;
            let photo = store.photo(&id).ok_or(format!("no such photo `{id}`"))?;
            let mut reply = AbstractMessage::new("flickr.photos.getInfo.reply");
            reply.set_field(
                "photo",
                Value::Struct(vec![
                    Field::new("id", Value::Str(photo.id)),
                    Field::new("title", Value::Str(photo.title)),
                    Field::new("url", Value::Str(photo.url)),
                ]),
            );
            Ok(reply)
        }
        "flickr.photos.comments.getList" => {
            let id = req
                .get("photo_id")
                .map(Value::to_text)
                .ok_or("missing photo_id")?;
            let mut reply = AbstractMessage::new("flickr.photos.comments.getList.reply");
            reply.set_field(
                "comments",
                Value::Array(
                    store
                        .comments(&id)
                        .iter()
                        .map(|c| {
                            Value::Struct(vec![
                                Field::new("author", Value::Str(c.author.clone())),
                                Field::new("text", Value::Str(c.text.clone())),
                            ])
                        })
                        .collect(),
                ),
            );
            Ok(reply)
        }
        "flickr.photos.comments.addComment" => {
            let id = req
                .get("photo_id")
                .map(Value::to_text)
                .ok_or("missing photo_id")?;
            let text = req
                .get("comment_text")
                .map(Value::to_text)
                .ok_or("missing comment_text")?;
            let comment = store.add_comment(&id, "flickr-user", &text);
            let mut reply = AbstractMessage::new("flickr.photos.comments.addComment.reply");
            reply.set_field("comment_id", Value::Str(comment.id));
            Ok(reply)
        }
        other => Err(format!("flickr: unknown operation `{other}`")),
    })
}

/// Which middleware a Flickr endpoint speaks (the paper's two cases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlickrFlavor {
    /// XML-RPC over HTTP POST (`/services/xmlrpc`).
    XmlRpc,
    /// SOAP 1.1 over HTTP POST (`/services/soap/`).
    Soap,
}

/// The wire codec of a Flickr middleware flavor.
///
/// # Errors
///
/// Never fails for the embedded specs.
pub fn flickr_codec(flavor: FlickrFlavor) -> Result<Arc<dyn MessageCodec>> {
    Ok(match flavor {
        FlickrFlavor::XmlRpc => {
            Arc::new(xmlrpc_codec("api.flickr.com", "/services/xmlrpc").map_err(CoreError::Mdl)?)
        }
        FlickrFlavor::Soap => {
            Arc::new(soap_codec("api.flickr.com", "/services/soap/").map_err(CoreError::Mdl)?)
        }
    })
}

/// The protocol binding of a Flickr middleware flavor.
pub fn flickr_binding(flavor: FlickrFlavor) -> starlink_core::ProtocolBinding {
    match flavor {
        FlickrFlavor::XmlRpc => xmlrpc_binding(),
        FlickrFlavor::Soap => soap_binding(),
    }
}

/// A running Flickr-compatible service.
pub struct FlickrService {
    server: RpcServer,
}

impl FlickrService {
    /// Deploys a Flickr service speaking the given middleware flavor.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn deploy(
        net: &NetworkEngine,
        endpoint: &Endpoint,
        flavor: FlickrFlavor,
        store: PhotoStore,
    ) -> Result<FlickrService> {
        let server = RpcServer::serve(
            net,
            endpoint,
            flickr_codec(flavor)?,
            flickr_binding(flavor),
            flickr_interface(),
            flickr_handler(store),
        )?;
        Ok(FlickrService { server })
    }

    /// The endpoint the service is reachable at.
    pub fn endpoint(&self) -> &Endpoint {
        self.server.endpoint()
    }
}

/// One photo as the Flickr client sees it after `getInfo`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhotoInfo {
    /// Photo id (possibly a mediator-minted dummy id).
    pub id: String,
    /// Title.
    pub title: String,
    /// JPEG URL.
    pub url: String,
}

/// A Flickr client application — one of the paper's "hand developed test
/// standalone client applications" (§5.1). It follows the Fig. 2 usage
/// protocol: search, then getInfo per photo, then comment operations.
pub struct FlickrClient {
    rpc: RpcClient,
    api_key: String,
}

impl FlickrClient {
    /// Connects a client of the given flavor to `endpoint`.
    ///
    /// # Errors
    ///
    /// Connect failures.
    pub fn connect(
        net: &NetworkEngine,
        endpoint: &Endpoint,
        flavor: FlickrFlavor,
    ) -> Result<FlickrClient> {
        let rpc = RpcClient::connect(
            net,
            endpoint,
            flickr_codec(flavor)?,
            flickr_binding(flavor),
            flickr_interface(),
        )?;
        Ok(FlickrClient {
            rpc,
            api_key: "starlink-demo-key".to_owned(),
        })
    }

    /// Overrides the per-exchange timeout.
    pub fn set_timeout(&mut self, timeout: std::time::Duration) {
        self.rpc.timeout = timeout;
    }

    /// `flickr.photos.search`: returns photo ids.
    ///
    /// # Errors
    ///
    /// RPC failures.
    pub fn search(&mut self, text: &str, per_page: u32) -> Result<Vec<String>> {
        let mut req = AbstractMessage::new("flickr.photos.search");
        req.set_field("api_key", Value::Str(self.api_key.clone()));
        req.set_field("text", Value::Str(text.to_owned()));
        req.set_field("per_page", Value::Str(per_page.to_string()));
        let reply = self.rpc.call(&req)?;
        let photos = reply
            .get("photos")
            .and_then(Value::as_array)
            .unwrap_or(&[])
            .to_vec();
        Ok(photos
            .iter()
            .filter_map(|p| {
                p.as_struct()?
                    .iter()
                    .find(|f| f.label() == "id")
                    .map(|f| f.value().to_text())
            })
            .collect())
    }

    /// `flickr.photos.getInfo`: full photo data for one id.
    ///
    /// # Errors
    ///
    /// RPC failures.
    pub fn get_info(&mut self, photo_id: &str) -> Result<PhotoInfo> {
        let mut req = AbstractMessage::new("flickr.photos.getInfo");
        req.set_field("api_key", Value::Str(self.api_key.clone()));
        req.set_field("photo_id", Value::Str(photo_id.to_owned()));
        let reply = self.rpc.call(&req)?;
        let mut info = PhotoInfo::default();
        if let Some(fields) = reply.get("photo").and_then(Value::as_struct) {
            for f in fields {
                match f.label() {
                    "id" => info.id = f.value().to_text(),
                    "title" => info.title = f.value().to_text(),
                    "url" => info.url = f.value().to_text(),
                    _ => {}
                }
            }
        }
        Ok(info)
    }

    /// `flickr.photos.comments.getList`: `(author, text)` pairs.
    ///
    /// # Errors
    ///
    /// RPC failures.
    pub fn get_comments(&mut self, photo_id: &str) -> Result<Vec<(String, String)>> {
        let mut req = AbstractMessage::new("flickr.photos.comments.getList");
        req.set_field("api_key", Value::Str(self.api_key.clone()));
        req.set_field("photo_id", Value::Str(photo_id.to_owned()));
        let reply = self.rpc.call(&req)?;
        let comments = reply
            .get("comments")
            .and_then(Value::as_array)
            .unwrap_or(&[])
            .to_vec();
        Ok(comments
            .iter()
            .filter_map(|c| {
                let fields = c.as_struct()?;
                let get = |n: &str| {
                    fields
                        .iter()
                        .find(|f| f.label() == n)
                        .map(|f| f.value().to_text())
                        .unwrap_or_default()
                };
                Some((get("author"), get("text")))
            })
            .collect())
    }

    /// `flickr.photos.comments.addComment`: returns the new comment id.
    ///
    /// # Errors
    ///
    /// RPC failures.
    pub fn add_comment(&mut self, photo_id: &str, comment_text: &str) -> Result<String> {
        let mut req = AbstractMessage::new("flickr.photos.comments.addComment");
        req.set_field("api_key", Value::Str(self.api_key.clone()));
        req.set_field("photo_id", Value::Str(photo_id.to_owned()));
        req.set_field("comment_text", Value::Str(comment_text.to_owned()));
        let reply = self.rpc.call(&req)?;
        Ok(reply
            .get("comment_id")
            .map(Value::to_text)
            .unwrap_or_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_net::MemoryTransport;

    fn net() -> NetworkEngine {
        let mut n = NetworkEngine::new();
        n.register(Arc::new(MemoryTransport::new()));
        n
    }

    fn full_flow(flavor: FlickrFlavor) {
        let net = net();
        let service = FlickrService::deploy(
            &net,
            &Endpoint::memory("flickr"),
            flavor,
            PhotoStore::with_fixture(),
        )
        .unwrap();
        let mut client = FlickrClient::connect(&net, service.endpoint(), flavor).unwrap();

        // Fig. 2's usage protocol.
        let ids = client.search("tree", 3).unwrap();
        assert_eq!(ids.len(), 3);
        let info = client.get_info(&ids[0]).unwrap();
        assert_eq!(info.title, "Tall Tree");
        assert!(info.url.ends_with(".jpg"));
        let comments = client.get_comments(&ids[0]).unwrap();
        assert_eq!(comments.len(), 2);
        let cid = client.add_comment(&ids[0], "nice!").unwrap();
        assert!(cid.starts_with("comment-"));
        assert_eq!(client.get_comments(&ids[0]).unwrap().len(), 3);
    }

    #[test]
    fn xmlrpc_client_against_xmlrpc_service() {
        full_flow(FlickrFlavor::XmlRpc);
    }

    #[test]
    fn soap_client_against_soap_service() {
        full_flow(FlickrFlavor::Soap);
    }

    #[test]
    fn heterogeneous_client_and_service_cannot_interoperate() {
        // The motivating problem: without a mediator, an XML-RPC client
        // cannot talk to a SOAP service even though the *application* is
        // identical.
        let net = net();
        let service = FlickrService::deploy(
            &net,
            &Endpoint::memory("flickr"),
            FlickrFlavor::Soap,
            PhotoStore::with_fixture(),
        )
        .unwrap();
        let mut client =
            FlickrClient::connect(&net, service.endpoint(), FlickrFlavor::XmlRpc).unwrap();
        client.set_timeout(std::time::Duration::from_millis(300));
        assert!(client.search("tree", 3).is_err());
    }

    #[test]
    fn get_info_unknown_photo_fails() {
        let net = net();
        let service = FlickrService::deploy(
            &net,
            &Endpoint::memory("flickr"),
            FlickrFlavor::XmlRpc,
            PhotoStore::with_fixture(),
        )
        .unwrap();
        let mut client =
            FlickrClient::connect(&net, service.endpoint(), FlickrFlavor::XmlRpc).unwrap();
        client.set_timeout(std::time::Duration::from_millis(300));
        assert!(client.get_info("bogus").is_err());
    }
}
