//! A second application domain: heterogeneous **maps APIs** (paper §3:
//! "Flickr, Picasa, Bing and/or Google maps API define a set of remote
//! operations that can be invoked with different kind of middleware").
//!
//! * **GMaps-like** clients speak XML-RPC:
//!   `gmaps.geocode(address)` → `…reply(results)` (array of
//!   `{lat, lng, formatted}`), and
//!   `gmaps.directions(origin, destination)` → `…reply(distance,
//!   duration)`.
//! * The **BMaps-like** service speaks REST + XML documents:
//!   `GET /maps/locations?query=…` returning `<Response>…<Location>` and
//!   `GET /maps/routes?wp0=…&wp1=…` returning `<RouteResponse>`.
//!
//! Everything is declarative: one new MDL document spec, one REST route
//! table, a semantic registry, and a single `foreach` MTL program for the
//! structured geocode results.

use starlink_automata::merge::{intertwine, into_service_loop, GammaKind, MergeOptions};
use starlink_automata::{linear_usage_protocol, Automaton};
use starlink_core::{
    ActionRule, ColorRuntime, CoreError, Mediator, ParamRule, ProtocolBinding, ReplyAction,
    RestRoute, Result, RpcClient, RpcServer, ServiceHandler, ServiceInterface,
};
use starlink_mdl::MessageCodec;
use starlink_message::equiv::SemanticRegistry;
use starlink_message::{AbstractMessage, Field, Value};
use starlink_net::{Endpoint, NetworkEngine};
use starlink_protocols::http::http_codec;
use starlink_protocols::xmlrpc::{xmlrpc_binding, xmlrpc_codec};
use starlink_protocols::{LayerRoute, LayeredCodec};
use std::collections::HashMap;
use std::sync::Arc;

/// The BMaps XML documents (xml dialect).
pub const BMAPS_MDL: &str = "\
# BMaps-like REST documents (xml dialect)
<Dialect:xml>
<Message:LocationsResponse>
<Root:Response>
<List:Locations=ResourceSets/ResourceSet/Location>
<ItemText:Locations.name=Name>
<ItemText:Locations.latitude=Point/Latitude>
<ItemText:Locations.longitude=Point/Longitude>
<End:Message>
<Message:RouteResponse>
<Root:RouteResponse>
<Text:travelDistance=Route/TravelDistance>
<Text:travelDuration=Route/TravelDuration>
<End:Message>";

/// Geocoding path of the simulated BMaps API.
pub const LOCATIONS_PATH: &str = "/maps/locations";
/// Routing path.
pub const ROUTES_PATH: &str = "/maps/routes";

/// Compiles the BMaps REST codec (documents over HTTP).
///
/// # Errors
///
/// Never fails for the embedded specs.
pub fn bmaps_codec() -> Result<LayeredCodec> {
    Ok(LayeredCodec::new(
        Arc::new(http_codec().map_err(CoreError::Mdl)?),
        Arc::new(starlink_mdl::MdlCodec::from_text(BMAPS_MDL).map_err(CoreError::Mdl)?),
        "Body",
        vec![
            LayerRoute {
                inner: "LocationsResponse".into(),
                outer_message: "HTTPResponse".into(),
                outer_defaults: starlink_protocols::http_response_defaults(),
            },
            LayerRoute {
                inner: "RouteResponse".into(),
                outer_message: "HTTPResponse".into(),
                outer_defaults: starlink_protocols::http_response_defaults(),
            },
        ],
    ))
}

/// The BMaps REST binding.
pub fn bmaps_binding() -> ProtocolBinding {
    let uri: starlink_message::FieldPath = "RequestURI".parse().expect("static path");
    ProtocolBinding::new(
        "BMAPS-REST",
        "BMAPS.mdl",
        "HTTPRequest",
        "LocationsResponse",
    )
    .with_request_action(ActionRule::Rest {
        method_field: "Method".parse().expect("static path"),
        uri_field: uri.clone(),
        routes: vec![
            RestRoute {
                action: "bmaps.locations".into(),
                method: "GET".into(),
                path: LOCATIONS_PATH.into(),
            },
            RestRoute {
                action: "bmaps.routes".into(),
                method: "GET".into(),
                path: ROUTES_PATH.into(),
            },
        ],
    })
    .with_reply_action(ReplyAction::Correlated)
    .with_params(
        ParamRule::Query { uri_field: uri },
        ParamRule::NamedFields(None),
    )
    .with_reply_message_override("bmaps.routes.reply", "RouteResponse")
    .with_request_default(
        "Version".parse().expect("static path"),
        Value::Str("HTTP/1.1".into()),
    )
    .with_request_default(
        "Headers".parse().expect("static path"),
        Value::Struct(vec![Field::new(
            "Host",
            Value::Str("dev.virtualearth.example".into()),
        )]),
    )
    .with_request_default(
        "Body".parse().expect("static path"),
        Value::Str(String::new()),
    )
}

/// The BMaps application interface.
pub fn bmaps_interface() -> ServiceInterface {
    let mut locations = AbstractMessage::new("bmaps.locations");
    locations.set_field("query", Value::Null);
    let mut locations_reply = AbstractMessage::new("bmaps.locations.reply");
    locations_reply.set_field("Locations", Value::Null);

    let mut routes = AbstractMessage::new("bmaps.routes");
    routes.set_field("wp0", Value::Null);
    routes.set_field("wp1", Value::Null);
    let mut routes_reply = AbstractMessage::new("bmaps.routes.reply");
    routes_reply.set_field("travelDistance", Value::Null);
    routes_reply.set_field("travelDuration", Value::Null);

    ServiceInterface::new()
        .with_operation(locations, locations_reply)
        .with_operation(routes, routes_reply)
}

/// The GMaps application interface (the XML-RPC client side).
pub fn gmaps_interface() -> ServiceInterface {
    let mut geocode = AbstractMessage::new("gmaps.geocode");
    geocode.set_field("address", Value::Null);
    let mut geocode_reply = AbstractMessage::new("gmaps.geocode.reply");
    geocode_reply.set_field("results", Value::Null);

    let mut directions = AbstractMessage::new("gmaps.directions");
    directions.set_field("origin", Value::Null);
    directions.set_field("destination", Value::Null);
    let mut directions_reply = AbstractMessage::new("gmaps.directions.reply");
    directions_reply.set_field("distance", Value::Null);
    directions_reply.set_field("duration", Value::Null);

    ServiceInterface::new()
        .with_operation(geocode, geocode_reply)
        .with_operation(directions, directions_reply)
}

/// The world the simulated BMaps service knows (a nod to the paper's
/// author cities and venue).
fn places() -> HashMap<&'static str, (f64, f64)> {
    HashMap::from([
        ("lisbon", (38.722, -9.139)),
        ("porto", (41.158, -8.629)),
        ("bordeaux", (44.838, -0.579)),
        ("lancaster", (54.047, -2.801)),
        ("rennes", (48.117, -1.678)),
    ])
}

fn distance_km(a: (f64, f64), b: (f64, f64)) -> f64 {
    // Equirectangular approximation — fine for the fixture scale.
    let lat_km = (a.0 - b.0) * 111.0;
    let lon_km = (a.1 - b.1) * 111.0 * ((a.0 + b.0) / 2.0).to_radians().cos();
    (lat_km * lat_km + lon_km * lon_km).sqrt()
}

/// The BMaps service handler.
pub fn bmaps_handler() -> Arc<ServiceHandler> {
    Arc::new(move |req| match req.name() {
        "bmaps.locations" => {
            let query = req
                .get("query")
                .map(Value::to_text)
                .unwrap_or_default()
                .to_ascii_lowercase();
            let mut entries = Vec::new();
            for (name, (lat, lon)) in places() {
                if name.contains(&query) && !query.is_empty() {
                    entries.push(Value::Struct(vec![
                        Field::new("name", Value::Str(capitalise(name))),
                        Field::new("latitude", Value::Str(format!("{lat:.3}"))),
                        Field::new("longitude", Value::Str(format!("{lon:.3}"))),
                    ]));
                }
            }
            let mut reply = AbstractMessage::new("bmaps.locations.reply");
            reply.set_field("Locations", Value::Array(entries));
            Ok(reply)
        }
        "bmaps.routes" => {
            let lookup = |field: &str| -> std::result::Result<(f64, f64), String> {
                let name = req
                    .get(field)
                    .map(Value::to_text)
                    .ok_or(format!("missing {field}"))?
                    .to_ascii_lowercase();
                places()
                    .get(name.as_str())
                    .copied()
                    .ok_or(format!("unknown place `{name}`"))
            };
            let a = lookup("wp0")?;
            let b = lookup("wp1")?;
            let km = distance_km(a, b);
            let mut reply = AbstractMessage::new("bmaps.routes.reply");
            reply.set_field("travelDistance", Value::Str(format!("{km:.1}")));
            reply.set_field(
                "travelDuration",
                Value::Str(format!("{:.0}", km / 90.0 * 60.0)), // minutes at 90 km/h
            );
            Ok(reply)
        }
        other => Err(format!("bmaps: unknown operation `{other}`")),
    })
}

fn capitalise(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// A running BMaps service.
pub struct BMapsService {
    server: RpcServer,
}

impl BMapsService {
    /// Deploys the service.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn deploy(net: &NetworkEngine, endpoint: &Endpoint) -> Result<BMapsService> {
        let codec: Arc<dyn MessageCodec> = Arc::new(bmaps_codec()?);
        let server = RpcServer::serve(
            net,
            endpoint,
            codec,
            bmaps_binding(),
            bmaps_interface(),
            bmaps_handler(),
        )?;
        Ok(BMapsService { server })
    }

    /// The endpoint the service is reachable at.
    pub fn endpoint(&self) -> &Endpoint {
        self.server.endpoint()
    }
}

/// Semantic declarations aligning the two maps APIs.
pub fn maps_registry() -> SemanticRegistry {
    let mut reg = SemanticRegistry::new();
    reg.declare_message_concept("geocode", ["gmaps.geocode", "bmaps.locations"]);
    reg.declare_message_concept("route", ["gmaps.directions", "bmaps.routes"]);
    reg.declare_field_concept("place-query", ["address", "query"]);
    reg.declare_field_concept("route-origin", ["origin", "wp0"]);
    reg.declare_field_concept("route-destination", ["destination", "wp1"]);
    reg.declare_field_concept("geo-results", ["results", "Locations"]);
    reg.declare_field_concept("route-distance", ["distance", "travelDistance"]);
    reg.declare_field_concept("route-duration", ["duration", "travelDuration"]);
    reg
}

fn gmaps_usage() -> Automaton {
    let iface = gmaps_interface();
    let ops: Vec<_> = iface
        .operations()
        .iter()
        .map(|(a, b)| (a.clone(), b.clone()))
        .collect();
    linear_usage_protocol("AGMaps", 1, &ops)
}

fn bmaps_usage() -> Automaton {
    let iface = bmaps_interface();
    let ops: Vec<_> = iface
        .operations()
        .iter()
        .map(|(a, b)| (a.clone(), b.clone()))
        .collect();
    linear_usage_protocol("ABMaps", 2, &ops)
}

/// Builds the GMaps→BMaps mediator: XML-RPC client color, REST service
/// color. Only the geocode *reply* needs custom MTL (structured
/// coordinate renaming); everything else is generated.
///
/// # Errors
///
/// Merge or model-compilation failures.
pub fn gmaps_bmaps_mediator(net: NetworkEngine, bmaps_endpoint: Endpoint) -> Result<Mediator> {
    let options = MergeOptions::default().with_mtl(
        "gmaps.geocode",
        GammaKind::Reply,
        r#"
m5.results = newarray()
foreach l in m4.Locations {
  let r = newstruct()
  r.lat = l.latitude
  r.lng = l.longitude
  r.formatted = l.name
  append(m5.results, r)
}
"#,
    );
    let (merged, _report) = intertwine(&gmaps_usage(), &bmaps_usage(), &maps_registry(), &options)?;
    let service = into_service_loop(&merged)?;
    Mediator::new(
        service,
        1,
        vec![
            ColorRuntime {
                color: 1,
                binding: xmlrpc_binding(),
                codec: Arc::new(
                    xmlrpc_codec("maps.example.org", "/xmlrpc").map_err(CoreError::Mdl)?,
                ),
                endpoint: None,
            },
            ColorRuntime {
                color: 2,
                binding: bmaps_binding(),
                codec: Arc::new(bmaps_codec()?),
                endpoint: Some(bmaps_endpoint),
            },
        ],
        net,
    )
}

/// One geocoding hit as the GMaps client sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct GeocodeResult {
    /// Latitude.
    pub lat: f64,
    /// Longitude.
    pub lng: f64,
    /// Display name.
    pub formatted: String,
}

/// The GMaps XML-RPC client application.
pub struct GMapsClient {
    rpc: RpcClient,
}

impl GMapsClient {
    /// Connects over XML-RPC.
    ///
    /// # Errors
    ///
    /// Connect failures.
    pub fn connect(net: &NetworkEngine, endpoint: &Endpoint) -> Result<GMapsClient> {
        let codec: Arc<dyn MessageCodec> =
            Arc::new(xmlrpc_codec("maps.example.org", "/xmlrpc").map_err(CoreError::Mdl)?);
        let rpc = RpcClient::connect(net, endpoint, codec, xmlrpc_binding(), gmaps_interface())?;
        Ok(GMapsClient { rpc })
    }

    /// `gmaps.geocode(address)`.
    ///
    /// # Errors
    ///
    /// RPC failures.
    pub fn geocode(&mut self, address: &str) -> Result<Vec<GeocodeResult>> {
        let mut req = AbstractMessage::new("gmaps.geocode");
        req.set_field("address", Value::Str(address.to_owned()));
        let reply = self.rpc.call(&req)?;
        let results = reply
            .get("results")
            .and_then(Value::as_array)
            .unwrap_or(&[])
            .to_vec();
        Ok(results
            .iter()
            .filter_map(|r| {
                let fields = r.as_struct()?;
                let get = |n: &str| {
                    fields
                        .iter()
                        .find(|f| f.label() == n)
                        .map(|f| f.value().to_text())
                        .unwrap_or_default()
                };
                Some(GeocodeResult {
                    lat: get("lat").parse().ok()?,
                    lng: get("lng").parse().ok()?,
                    formatted: get("formatted"),
                })
            })
            .collect())
    }

    /// `gmaps.directions(origin, destination)` → `(distance km, duration
    /// minutes)`.
    ///
    /// # Errors
    ///
    /// RPC failures.
    pub fn directions(&mut self, origin: &str, destination: &str) -> Result<(f64, f64)> {
        let mut req = AbstractMessage::new("gmaps.directions");
        req.set_field("origin", Value::Str(origin.to_owned()));
        req.set_field("destination", Value::Str(destination.to_owned()));
        let reply = self.rpc.call(&req)?;
        let dist = reply
            .get("distance")
            .map(Value::to_text)
            .and_then(|t| t.parse().ok())
            .unwrap_or(0.0);
        let dur = reply
            .get("duration")
            .map(Value::to_text)
            .and_then(|t| t.parse().ok())
            .unwrap_or(0.0);
        Ok((dist, dur))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_core::MediatorHost;
    use starlink_net::MemoryTransport;

    fn network() -> NetworkEngine {
        let mut net = NetworkEngine::new();
        net.register(Arc::new(MemoryTransport::new()));
        net
    }

    #[test]
    fn bmaps_wire_shapes() {
        let codec = bmaps_codec().unwrap();
        let mut reply = AbstractMessage::new("LocationsResponse");
        reply.set_field(
            "Locations",
            Value::Array(vec![Value::Struct(vec![
                Field::new("name", Value::from("Lisbon")),
                Field::new("latitude", Value::from("38.722")),
                Field::new("longitude", Value::from("-9.139")),
            ])]),
        );
        let wire = codec.compose(&reply).unwrap();
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.contains("<Response>"));
        assert!(text.contains("<Latitude>38.722</Latitude>"));
        let back = codec.parse(&wire).unwrap();
        assert_eq!(back.name(), "LocationsResponse");
    }

    #[test]
    fn gmaps_client_reaches_bmaps_through_mediator() {
        let net = network();
        let bmaps = BMapsService::deploy(&net, &Endpoint::memory("bmaps")).unwrap();
        let mediator = gmaps_bmaps_mediator(net.clone(), bmaps.endpoint().clone()).unwrap();
        let host = MediatorHost::deploy(mediator, &Endpoint::memory("maps-mediator")).unwrap();
        let mut client = GMapsClient::connect(&net, host.endpoint()).unwrap();

        let hits = client.geocode("lisbon").unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].formatted, "Lisbon");
        assert!((hits[0].lat - 38.722).abs() < 1e-6);

        let (km, minutes) = client.directions("lisbon", "porto").unwrap();
        assert!(
            (250.0..350.0).contains(&km),
            "Lisbon–Porto ≈ 274 km, got {km}"
        );
        assert!(minutes > 100.0);
    }

    #[test]
    fn geocode_miss_returns_empty() {
        let net = network();
        let bmaps = BMapsService::deploy(&net, &Endpoint::memory("bmaps")).unwrap();
        let mediator = gmaps_bmaps_mediator(net.clone(), bmaps.endpoint().clone()).unwrap();
        let host = MediatorHost::deploy(mediator, &Endpoint::memory("maps-mediator")).unwrap();
        let mut client = GMapsClient::connect(&net, host.endpoint()).unwrap();
        assert!(client.geocode("atlantis").unwrap().is_empty());
    }
}
