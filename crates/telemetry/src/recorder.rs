//! The batteries-included sink: aggregates events into lock-free metrics
//! and keeps a bounded ring buffer of recent events.

use crate::event::{ProbeOutcome, TraceEvent, TransitionKind};
use crate::metrics::{Counter, Gauge, Histogram, DURATION_BUCKET_BOUNDS_NS};
use crate::sink::TelemetrySink;
use crate::snapshot::{MetricFamily, MetricKind, Sample, Snapshot};
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;
use std::time::Instant;

/// Default capacity of the recent-events ring buffer.
const DEFAULT_RING_CAPACITY: usize = 128;

/// Accumulated dwell time for one automaton state.
#[derive(Debug, Default, Clone, Copy)]
struct DwellTotals {
    count: u64,
    sum_ns: u64,
}

/// The recorder's creation instant (wrapped so `Recorder` can keep
/// deriving `Default`).
#[derive(Debug, Clone, Copy)]
struct Epoch(Instant);

impl Default for Epoch {
    fn default() -> Self {
        Epoch(Instant::now())
    }
}

/// A [`TelemetrySink`] that aggregates every event into counters, gauges
/// and fixed-bucket histograms (all lock-free on the record path except
/// the bounded ring buffer of recent events, a short uncontended mutex),
/// and snapshots them on demand.
#[derive(Debug, Default)]
pub struct Recorder {
    sessions_started: Counter,
    sessions_finished: Counter,
    sessions_failed: Counter,
    exchanges: Counter,
    transitions_receive: Counter,
    transitions_send: Counter,
    transitions_gamma: Counter,
    gamma_duration_ns: Histogram,
    translate_duration_ns: Histogram,
    monitor_violations: Counter,
    probe_hit: Counter,
    probe_miss: Counter,
    probe_fallback: Counter,
    parse_duration_ns: Histogram,
    parse_bytes: Counter,
    compose_duration_ns: Histogram,
    compose_bytes: Counter,
    wire_bytes_in: Counter,
    wire_bytes_out: Counter,
    wire_messages_in: Counter,
    wire_messages_out: Counter,
    wire_buf_reused: Counter,
    wire_buf_alloc: Counter,
    service_connects: Counter,
    transport_bytes_in: Counter,
    transport_bytes_out: Counter,
    transport_frames_in: Counter,
    sessions_accepted: Counter,
    accept_errors: Counter,
    worker_panics: Counter,
    active_sessions: Gauge,
    queue_depth: Gauge,
    sessions_stalled: Counter,
    stalled_sessions: Gauge,
    state_dwell_ns: Histogram,
    /// Per-state dwell totals, keyed by state name. State sets are small
    /// and fixed per deployed merge, so the map stays tiny; the mutex is
    /// short and only touched when a sink is installed at all.
    state_dwell_by_state: Mutex<HashMap<String, DwellTotals>>,
    ring_capacity: usize,
    ring: Mutex<VecDeque<String>>,
    epoch: Epoch,
}

impl Recorder {
    /// A fresh recorder with the default ring-buffer capacity.
    pub fn new() -> Recorder {
        Recorder::with_ring_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A fresh recorder keeping up to `capacity` recent events (0
    /// disables event retention; metrics still aggregate).
    pub fn with_ring_capacity(capacity: usize) -> Recorder {
        Recorder {
            ring_capacity: capacity,
            ..Recorder::default()
        }
    }

    /// The most recent events (oldest first), each rendered as a debug
    /// line prefixed with `+<nanos>ns` — monotonic nanoseconds since
    /// this recorder was created, so ring entries are ordered relative
    /// to each other and to the recorder's lifetime.
    pub fn recent(&self) -> Vec<String> {
        self.ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Completed traversals so far (shortcut for hosts that report a
    /// session count without building a full snapshot).
    pub fn sessions_finished(&self) -> u64 {
        self.sessions_finished.get()
    }

    fn retain(&self, event: &TraceEvent<'_>) {
        if self.ring_capacity == 0 {
            return;
        }
        // Only lifecycle/diagnostic events are retained verbatim; the
        // per-message firehose (parse, compose, wire bytes) stays
        // aggregate-only so the ring holds interesting history.
        let keep = matches!(
            event,
            TraceEvent::SessionStarted
                | TraceEvent::SessionFinished { .. }
                | TraceEvent::SessionFailed { .. }
                | TraceEvent::MonitorViolation { .. }
                | TraceEvent::AcceptError
                | TraceEvent::WorkerPanic
                | TraceEvent::ServiceConnected { .. }
                | TraceEvent::SessionStalled { .. }
        );
        if !keep {
            return;
        }
        let mut ring = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if ring.len() == self.ring_capacity {
            ring.pop_front();
        }
        let offset_ns = self.epoch.0.elapsed().as_nanos() as u64;
        ring.push_back(format!("+{offset_ns}ns {event:?}"));
    }

    /// Builds the snapshot (also available through the
    /// [`TelemetrySink::snapshot`] trait method).
    pub fn snapshot(&self) -> Snapshot {
        let counter = |name: &str, c: &Counter| {
            MetricFamily::simple(name, MetricKind::Counter, vec![Sample::plain(c.get())])
        };
        let gauge = |name: &str, value: u64| {
            MetricFamily::simple(name, MetricKind::Gauge, vec![Sample::plain(value)])
        };
        let histogram = |name: &str, h: &Histogram| {
            let snap = h.snapshot();
            let mut samples = Vec::with_capacity(snap.cumulative_counts.len());
            for (i, &cumulative) in snap.cumulative_counts.iter().enumerate() {
                let le = DURATION_BUCKET_BOUNDS_NS
                    .get(i)
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "+Inf".to_owned());
                samples.push(Sample::labelled("le", &le, cumulative));
            }
            MetricFamily {
                name: name.to_owned(),
                kind: MetricKind::Histogram,
                samples,
                sum: Some(snap.sum),
                count: Some(snap.count),
            }
        };
        let mut families = vec![
            counter("starlink_sessions_started_total", &self.sessions_started),
            counter("starlink_sessions_finished_total", &self.sessions_finished),
            counter("starlink_sessions_failed_total", &self.sessions_failed),
            counter("starlink_exchanges_total", &self.exchanges),
            MetricFamily::simple(
                "starlink_transitions_total",
                MetricKind::Counter,
                vec![
                    Sample::labelled("kind", "receive", self.transitions_receive.get()),
                    Sample::labelled("kind", "send", self.transitions_send.get()),
                    Sample::labelled("kind", "gamma", self.transitions_gamma.get()),
                ],
            ),
            histogram("starlink_gamma_duration_ns", &self.gamma_duration_ns),
            histogram(
                "starlink_translate_duration_ns",
                &self.translate_duration_ns,
            ),
            counter(
                "starlink_monitor_violations_total",
                &self.monitor_violations,
            ),
            MetricFamily::simple(
                "starlink_dispatch_probe_total",
                MetricKind::Counter,
                vec![
                    Sample::labelled("outcome", "hit", self.probe_hit.get()),
                    Sample::labelled("outcome", "miss", self.probe_miss.get()),
                    Sample::labelled("outcome", "fallback", self.probe_fallback.get()),
                ],
            ),
            histogram("starlink_parse_duration_ns", &self.parse_duration_ns),
            counter("starlink_parse_bytes_total", &self.parse_bytes),
            histogram("starlink_compose_duration_ns", &self.compose_duration_ns),
            counter("starlink_compose_bytes_total", &self.compose_bytes),
            counter("starlink_wire_bytes_in_total", &self.wire_bytes_in),
            counter("starlink_wire_bytes_out_total", &self.wire_bytes_out),
            counter("starlink_wire_messages_in_total", &self.wire_messages_in),
            counter("starlink_wire_messages_out_total", &self.wire_messages_out),
            counter("starlink_wire_buf_reused_total", &self.wire_buf_reused),
            counter("starlink_wire_buf_alloc_total", &self.wire_buf_alloc),
            counter("starlink_service_connects_total", &self.service_connects),
            counter(
                "starlink_transport_bytes_in_total",
                &self.transport_bytes_in,
            ),
            counter(
                "starlink_transport_bytes_out_total",
                &self.transport_bytes_out,
            ),
            counter(
                "starlink_transport_frames_in_total",
                &self.transport_frames_in,
            ),
            counter("starlink_sessions_accepted_total", &self.sessions_accepted),
            counter("starlink_accept_errors_total", &self.accept_errors),
            counter("starlink_worker_panics_total", &self.worker_panics),
            gauge("starlink_active_sessions", self.active_sessions.get()),
            gauge("starlink_active_sessions_peak", self.active_sessions.max()),
            gauge("starlink_queue_depth", self.queue_depth.get()),
            gauge("starlink_queue_depth_peak", self.queue_depth.max()),
            counter("starlink_sessions_stalled_total", &self.sessions_stalled),
            gauge("starlink_sessions_stalled", self.stalled_sessions.get()),
            gauge(
                "starlink_sessions_stalled_peak",
                self.stalled_sessions.max(),
            ),
            histogram("starlink_state_dwell_ns", &self.state_dwell_ns),
        ];
        // Per-state dwell rides as labelled count/sum counters: the
        // MetricFamily histogram shape carries a single sum/count, so
        // per-state distributions are exposed the way Prometheus
        // summaries without quantiles are.
        let dwell = self
            .state_dwell_by_state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if !dwell.is_empty() {
            let mut states: Vec<(&String, &DwellTotals)> = dwell.iter().collect();
            states.sort_by_key(|(name, _)| name.as_str());
            families.push(MetricFamily::simple(
                "starlink_state_dwell_count",
                MetricKind::Counter,
                states
                    .iter()
                    .map(|(name, t)| Sample::labelled("state", name, t.count))
                    .collect(),
            ));
            families.push(MetricFamily::simple(
                "starlink_state_dwell_sum_ns",
                MetricKind::Counter,
                states
                    .iter()
                    .map(|(name, t)| Sample::labelled("state", name, t.sum_ns))
                    .collect(),
            ));
        }
        drop(dwell);
        Snapshot { families }
    }
}

impl TelemetrySink for Recorder {
    fn record(&self, event: &TraceEvent<'_>) {
        match *event {
            TraceEvent::SessionStarted => self.sessions_started.inc(),
            TraceEvent::SessionFinished { exchanges, .. } => {
                self.sessions_finished.inc();
                self.exchanges.add(exchanges as u64);
            }
            TraceEvent::SessionFailed { .. } => self.sessions_failed.inc(),
            TraceEvent::Transition { kind, .. } => match kind {
                TransitionKind::Receive => self.transitions_receive.inc(),
                TransitionKind::Send => self.transitions_send.inc(),
                TransitionKind::Gamma => self.transitions_gamma.inc(),
            },
            TraceEvent::GammaExecuted { nanos, .. } => self.gamma_duration_ns.observe(nanos),
            TraceEvent::Translate { nanos, .. } => self.translate_duration_ns.observe(nanos),
            TraceEvent::MonitorViolation { .. } => self.monitor_violations.inc(),
            TraceEvent::DispatchProbe { outcome } => match outcome {
                ProbeOutcome::Hit => self.probe_hit.inc(),
                ProbeOutcome::Miss => self.probe_miss.inc(),
                ProbeOutcome::Fallback => self.probe_fallback.inc(),
            },
            TraceEvent::Parse {
                wire_bytes, nanos, ..
            } => {
                self.parse_duration_ns.observe(nanos);
                self.parse_bytes.add(wire_bytes as u64);
            }
            TraceEvent::Compose {
                wire_bytes, nanos, ..
            } => {
                self.compose_duration_ns.observe(nanos);
                self.compose_bytes.add(wire_bytes as u64);
            }
            TraceEvent::WireIn { bytes, .. } => {
                self.wire_bytes_in.add(bytes as u64);
                self.wire_messages_in.inc();
            }
            TraceEvent::WireOut { bytes, .. } => {
                self.wire_bytes_out.add(bytes as u64);
                self.wire_messages_out.inc();
            }
            TraceEvent::WireBufReused => self.wire_buf_reused.inc(),
            TraceEvent::WireBufAllocated => self.wire_buf_alloc.inc(),
            TraceEvent::ServiceConnected { .. } => self.service_connects.inc(),
            TraceEvent::TransportBytesIn { bytes } => self.transport_bytes_in.add(bytes as u64),
            TraceEvent::TransportBytesOut { bytes } => self.transport_bytes_out.add(bytes as u64),
            TraceEvent::TransportFrameIn { .. } => self.transport_frames_in.inc(),
            TraceEvent::SessionAccepted => self.sessions_accepted.inc(),
            TraceEvent::AcceptError => self.accept_errors.inc(),
            TraceEvent::WorkerPanic => self.worker_panics.inc(),
            TraceEvent::ActiveSessions { count } => self.active_sessions.set(count as u64),
            TraceEvent::QueueDepth { depth } => self.queue_depth.set(depth as u64),
            TraceEvent::SessionStalled { .. } => self.sessions_stalled.inc(),
            TraceEvent::StalledSessions { count } => self.stalled_sessions.set(count as u64),
            TraceEvent::StateDwell { state, nanos } => {
                self.state_dwell_ns.observe(nanos);
                let mut dwell = self
                    .state_dwell_by_state
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let totals = dwell.entry(state.to_owned()).or_default();
                totals.count += 1;
                totals.sum_ns += nanos;
            }
            // Tracing structure is the TraceBuffer's / FlightRecorder's
            // business; the aggregate view ignores it.
            TraceEvent::SpanOpened { .. }
            | TraceEvent::SpanClosed { .. }
            | TraceEvent::MessageSnapshot { .. } => {}
        }
        self.retain(event);
    }

    fn snapshot(&self) -> Option<Snapshot> {
        Some(Recorder::snapshot(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_aggregate_into_the_snapshot() {
        let r = Recorder::new();
        r.record(&TraceEvent::SessionStarted);
        r.record(&TraceEvent::SessionFinished {
            final_state: "s9",
            exchanges: 4,
        });
        r.record(&TraceEvent::Transition {
            from: "s0",
            to: "s1",
            kind: TransitionKind::Receive,
            color: 1,
        });
        r.record(&TraceEvent::DispatchProbe {
            outcome: ProbeOutcome::Miss,
        });
        r.record(&TraceEvent::Parse {
            variant: "GIOPRequest",
            wire_bytes: 64,
            nanos: 1_500,
        });
        r.record(&TraceEvent::QueueDepth { depth: 5 });
        r.record(&TraceEvent::QueueDepth { depth: 2 });

        let snap = r.snapshot();
        assert_eq!(snap.counter("starlink_sessions_started_total"), 1);
        assert_eq!(snap.counter("starlink_sessions_finished_total"), 1);
        assert_eq!(snap.counter("starlink_exchanges_total"), 4);
        assert_eq!(
            snap.value("starlink_transitions_total", &[("kind", "receive")]),
            Some(1)
        );
        assert_eq!(
            snap.value("starlink_dispatch_probe_total", &[("outcome", "miss")]),
            Some(1)
        );
        assert_eq!(snap.counter("starlink_parse_bytes_total"), 64);
        let parse = snap.family("starlink_parse_duration_ns").unwrap();
        assert_eq!(parse.count, Some(1));
        assert_eq!(parse.sum, Some(1_500));
        assert_eq!(snap.counter("starlink_queue_depth"), 2);
        assert_eq!(snap.counter("starlink_queue_depth_peak"), 5);
    }

    #[test]
    fn ring_buffer_is_bounded_and_selective() {
        let r = Recorder::with_ring_capacity(2);
        r.record(&TraceEvent::SessionStarted);
        // Firehose events are not retained.
        r.record(&TraceEvent::WireIn { color: 1, bytes: 9 });
        r.record(&TraceEvent::SessionFailed { stage: "net" });
        r.record(&TraceEvent::SessionFinished {
            final_state: "s2",
            exchanges: 1,
        });
        let recent = r.recent();
        assert_eq!(recent.len(), 2);
        assert!(recent[0].contains("SessionFailed"));
        assert!(recent[1].contains("SessionFinished"));
    }

    #[test]
    fn ring_entries_carry_monotonic_offsets() {
        let r = Recorder::new();
        r.record(&TraceEvent::SessionStarted);
        std::thread::sleep(std::time::Duration::from_millis(1));
        r.record(&TraceEvent::SessionFailed { stage: "net" });
        let recent = r.recent();
        let offset = |line: &str| -> u64 {
            let rest = line.strip_prefix('+').expect("offset prefix");
            let (ns, _) = rest.split_once("ns ").expect("ns suffix");
            ns.parse().expect("numeric offset")
        };
        assert!(offset(&recent[0]) < offset(&recent[1]));
    }

    #[test]
    fn gauge_peaks_render_and_round_trip() {
        let r = Recorder::new();
        r.record(&TraceEvent::ActiveSessions { count: 8 });
        r.record(&TraceEvent::ActiveSessions { count: 3 });
        let snap = r.snapshot();
        let text = snap.render_text();
        assert!(text.contains("# TYPE starlink_active_sessions_peak gauge"));
        assert!(text.contains("starlink_active_sessions_peak 8"));
        assert!(text.contains("starlink_active_sessions 3"));
        let back = Snapshot::parse_text(&text).unwrap();
        assert_eq!(back.counter("starlink_active_sessions_peak"), 8);
        assert_eq!(back.counter("starlink_queue_depth_peak"), 0);
    }

    #[test]
    fn snapshot_round_trips_through_exposition() {
        let r = Recorder::new();
        r.record(&TraceEvent::SessionStarted);
        r.record(&TraceEvent::GammaExecuted {
            from: "a",
            to: "b",
            statements: 3,
            nanos: 999,
        });
        let snap = r.snapshot();
        let back = Snapshot::parse_text(&snap.render_text()).unwrap();
        assert_eq!(back, snap);
    }
}
