//! Structured tracing + metrics for the Starlink runtime.
//!
//! The paper's evaluation (§6) reports per-phase costs — parse, compose,
//! translate, γ-transition execution — and this crate makes those phases
//! observable at runtime instead of only in offline benchmarks:
//!
//! * [`TraceEvent`] — the event taxonomy: session lifecycle, automaton
//!   transitions (with color info), γ/MTL execution, codec parse/compose
//!   durations, dispatch probe outcomes, wire bytes in/out, buffer-pool
//!   reuse, and mediator-host health (queue depth, accept errors, worker
//!   panics). Events borrow their string data, so *emitting* one never
//!   allocates.
//! * [`TelemetrySink`] — where events go. Sinks are always injected
//!   explicitly (via `SessionSpec`, codec/transport builders, …), never
//!   ambient. The [`NoopSink`] default reports `enabled() == false` so
//!   instrumented hot paths skip event construction entirely; its cost is
//!   one virtual call per instrumentation site.
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — lock-free atomic metric
//!   primitives (fixed-bucket latency histograms, no allocation on the
//!   observe path).
//! * [`Recorder`] — the batteries-included sink: aggregates every event
//!   into the metric primitives and keeps a bounded ring buffer of recent
//!   events for debugging.
//! * [`Snapshot`] — a point-in-time aggregate with Prometheus-style text
//!   exposition ([`Snapshot::render_text`]) and a round-tripping parser
//!   ([`Snapshot::parse_text`]) so the format is stable and scriptable
//!   (the `starlink stats` CLI renders either a live endpoint or a saved
//!   exposition file).
//!
//! This crate has **zero dependencies** (not even on `starlink-message`)
//! so every layer of the workspace — codecs, the MTL interpreter,
//! transports, the session engine — can emit events without dependency
//! cycles.
//!
//! See `docs/observability.md` for the full taxonomy, the sink contract,
//! and measured overhead numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod metrics;
mod recorder;
mod sink;
mod snapshot;

pub use event::{ProbeOutcome, TraceEvent, TransitionKind};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, DURATION_BUCKET_BOUNDS_NS};
pub use recorder::Recorder;
pub use sink::{noop_sink, FanoutSink, NoopSink, TelemetrySink};
pub use snapshot::{ExpositionError, MetricFamily, MetricKind, Sample, Snapshot};
