//! Structured tracing + metrics for the Starlink runtime.
//!
//! The paper's evaluation (§6) reports per-phase costs — parse, compose,
//! translate, γ-transition execution — and this crate makes those phases
//! observable at runtime instead of only in offline benchmarks:
//!
//! * [`TraceEvent`] — the event taxonomy: session lifecycle, automaton
//!   transitions (with color info), γ/MTL execution, codec parse/compose
//!   durations, dispatch probe outcomes, wire bytes in/out, buffer-pool
//!   reuse, and mediator-host health (queue depth, accept errors, worker
//!   panics). Events borrow their string data, so *emitting* one never
//!   allocates.
//! * [`TelemetrySink`] — where events go. Sinks are always injected
//!   explicitly (via `SessionSpec`, codec/transport builders, …), never
//!   ambient. The [`NoopSink`] default reports `enabled() == false` so
//!   instrumented hot paths skip event construction entirely; its cost is
//!   one virtual call per instrumentation site.
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — lock-free atomic metric
//!   primitives (fixed-bucket latency histograms, no allocation on the
//!   observe path).
//! * [`Recorder`] — the batteries-included sink: aggregates every event
//!   into the metric primitives and keeps a bounded ring buffer of recent
//!   events for debugging.
//! * [`Snapshot`] — a point-in-time aggregate with Prometheus-style text
//!   exposition ([`Snapshot::render_text`]) and a round-tripping parser
//!   ([`Snapshot::parse_text`]) so the format is stable and scriptable
//!   (the `starlink stats` CLI renders either a live endpoint or a saved
//!   exposition file).
//! * Per-session causal tracing — [`SessionTracer`] mints a
//!   [`SessionTraceId`] per accepted connection and stamps every event
//!   with a [`TraceMeta`] (session id, monotonic timestamp, span +
//!   parent span), [`TraceBuffer`] retains the last N completed session
//!   span trees, [`FlightRecorder`] captures abstract-message field
//!   values pre-/post-γ behind a redaction hook, and the exporters
//!   ([`chrome_events`] + [`render_chrome_json`], [`render_timeline`])
//!   render a trace as Chrome `trace_event` JSON (loadable in
//!   `chrome://tracing`/Perfetto) or a plain-text timeline, with a
//!   zero-dep validating parser ([`validate_chrome_trace`]) for smoke
//!   tests.
//! * The operations plane — [`WindowAggregator`] buckets lifecycle
//!   events into a sliding window (rates over the last N seconds,
//!   labelled per merged-automaton pair), and the health model
//!   ([`HealthReport`], [`HealthThresholds`], [`evaluate_pair`])
//!   reduces windows + snapshot gauges + the stall watchdog's count to
//!   a three-valued [`HealthStatus`] with per-check reasons, served by
//!   `MediatorHost::expose_diagnostics` and the `starlink health` CLI.
//!
//! This crate has **zero dependencies** (not even on `starlink-message`)
//! so every layer of the workspace — codecs, the MTL interpreter,
//! transports, the session engine — can emit events without dependency
//! cycles.
//!
//! See `docs/observability.md` for the full taxonomy, the sink contract,
//! and measured overhead numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod export;
mod flight;
mod health;
mod metrics;
mod recorder;
mod sink;
mod snapshot;
mod span;
mod window;

pub use event::{ProbeOutcome, TraceEvent, TransitionKind};
pub use export::{
    chrome_events, parse_chrome_trace, render_chrome_json, render_timeline, validate_chrome_trace,
    ChromeEvent, TraceStats,
};
pub use flight::{FlightRecorder, MessageCapture, RedactionFn};
pub use health::{
    evaluate_pair, HealthCheck, HealthInputs, HealthReport, HealthStatus, HealthThresholds,
    PairHealth,
};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, DURATION_BUCKET_BOUNDS_NS};
pub use recorder::Recorder;
pub use sink::{noop_sink, FanoutSink, NoopSink, TelemetrySink};
pub use snapshot::{ExpositionError, MetricFamily, MetricKind, Sample, Snapshot};
pub use span::{
    SessionTrace, SessionTraceId, SessionTracer, SpanGuard, SpanId, SpanScopedSink, TraceBuffer,
    TraceMeta, TraceRecord, TraceRecordKind,
};
pub use window::{window_families, WindowAggregator, WindowConfig, WindowCounts};
