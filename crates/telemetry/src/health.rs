//! The health model: snapshot + windows + watchdog → one verdict.
//!
//! A mediator bridges two live systems; "is the bridge healthy right
//! now" must be answerable by a script (load balancer, cron probe,
//! `starlink health`) without a human reading counters. This module
//! reduces the operations plane's inputs — windowed rates from
//! [`crate::WindowAggregator`], saturation gauges from the lifetime
//! [`crate::Snapshot`], and the stall watchdog's count — to a
//! three-valued [`HealthStatus`] with per-check reasons, rolled up
//! overall and per merged-automaton pair.
//!
//! The report has a line-oriented text form ([`HealthReport::render_text`]
//! / [`HealthReport::parse_text`], exact inverses) served by the
//! diagnostics endpoint, and a metric form ([`HealthReport::families`])
//! merged into the stats snapshot so scrapers see the same verdict.

use crate::snapshot::{MetricFamily, MetricKind, Sample};
use crate::window::WindowCounts;
use std::fmt;

/// The three-valued health verdict. Ordered: `Healthy < Degraded <
/// Unhealthy`, so roll-ups are `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthStatus {
    /// All checks within thresholds.
    Healthy,
    /// Service continues but an operator should look: some check crossed
    /// its warning threshold.
    Degraded,
    /// The bridge is effectively down or failing most traffic.
    Unhealthy,
}

impl HealthStatus {
    /// Stable lowercase label (`"healthy"` / `"degraded"` /
    /// `"unhealthy"`), used in the text form and metric labels.
    pub fn label(self) -> &'static str {
        match self {
            HealthStatus::Healthy => "healthy",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Unhealthy => "unhealthy",
        }
    }

    /// Parses a label produced by [`HealthStatus::label`].
    pub fn parse(label: &str) -> Option<HealthStatus> {
        match label {
            "healthy" => Some(HealthStatus::Healthy),
            "degraded" => Some(HealthStatus::Degraded),
            "unhealthy" => Some(HealthStatus::Unhealthy),
            _ => None,
        }
    }

    /// Scripting-friendly process exit code: 0 healthy, 1 degraded, 2
    /// unhealthy (the `starlink health` contract).
    pub fn exit_code(self) -> u8 {
        match self {
            HealthStatus::Healthy => 0,
            HealthStatus::Degraded => 1,
            HealthStatus::Unhealthy => 2,
        }
    }

    /// Gauge value used in metric exposition (same ordering as
    /// [`HealthStatus::exit_code`]).
    pub fn gauge_value(self) -> u64 {
        self.exit_code() as u64
    }
}

impl fmt::Display for HealthStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One named check's verdict and its human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthCheck {
    /// Stable check name (kebab-case: `"failure-rate"`,
    /// `"accept-errors"`, `"queue-depth"`, `"stalled-sessions"`).
    pub name: String,
    /// This check's verdict.
    pub status: HealthStatus,
    /// One line of context (never contains a newline).
    pub reason: String,
}

/// The health of one deployed merged-automaton pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairHealth {
    /// The merged-automaton pair label (the deployed merge's name).
    pub pair: String,
    /// Worst check status for this pair.
    pub status: HealthStatus,
    /// The individual checks, in evaluation order.
    pub checks: Vec<HealthCheck>,
}

/// The full report: overall verdict plus per-pair breakdowns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// Worst status across all pairs.
    pub overall: HealthStatus,
    /// Per merged-automaton pair health.
    pub pairs: Vec<PairHealth>,
}

/// Warning/critical thresholds the health checks compare against.
///
/// Ratios are fractions (`0.05` = 5%); a value at or above the
/// `degraded` threshold degrades, at or above `unhealthy` is unhealthy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthThresholds {
    /// Windowed failed/started ratio that degrades the pair.
    pub failure_ratio_degraded: f64,
    /// Windowed failed/started ratio that makes the pair unhealthy.
    pub failure_ratio_unhealthy: f64,
    /// Windowed accept-error count that degrades the pair.
    pub accept_errors_degraded: u64,
    /// Windowed accept-error count that makes the pair unhealthy.
    pub accept_errors_unhealthy: u64,
    /// Queue depth / capacity ratio that degrades the pair.
    pub queue_saturation_degraded: f64,
    /// Queue depth / capacity ratio that makes the pair unhealthy.
    pub queue_saturation_unhealthy: f64,
    /// Stalled-session count that degrades the pair.
    pub stalled_degraded: u64,
    /// Stalled-session count that makes the pair unhealthy.
    pub stalled_unhealthy: u64,
}

impl Default for HealthThresholds {
    fn default() -> Self {
        HealthThresholds {
            failure_ratio_degraded: 0.05,
            failure_ratio_unhealthy: 0.5,
            accept_errors_degraded: 3,
            accept_errors_unhealthy: 25,
            queue_saturation_degraded: 0.8,
            queue_saturation_unhealthy: 1.0,
            stalled_degraded: 1,
            stalled_unhealthy: 8,
        }
    }
}

/// Everything a [`PairHealth`] evaluation consumes, gathered by the host.
#[derive(Debug, Clone, Default)]
pub struct HealthInputs {
    /// The merged-automaton pair label.
    pub pair: String,
    /// Windowed lifecycle counts (when the ops plane is enabled) or
    /// lifetime counters recast as a window of `window_secs == 0`.
    pub window: WindowCounts,
    /// Current worker-queue depth (multiplexed host; 0 for threaded).
    pub queue_depth: u64,
    /// Worker-queue capacity (0 when there is no bounded queue — the
    /// queue-depth check then reports healthy with an explanatory
    /// reason).
    pub queue_capacity: u64,
    /// Sessions currently flagged stalled by the watchdog.
    pub stalled_now: u64,
}

fn grade(value: f64, degraded: f64, unhealthy: f64) -> HealthStatus {
    if value >= unhealthy {
        HealthStatus::Unhealthy
    } else if value >= degraded {
        HealthStatus::Degraded
    } else {
        HealthStatus::Healthy
    }
}

fn grade_count(value: u64, degraded: u64, unhealthy: u64) -> HealthStatus {
    if value >= unhealthy {
        HealthStatus::Unhealthy
    } else if value >= degraded {
        HealthStatus::Degraded
    } else {
        HealthStatus::Healthy
    }
}

/// Evaluates one pair's health from its inputs against thresholds.
pub fn evaluate_pair(inputs: &HealthInputs, thresholds: &HealthThresholds) -> PairHealth {
    let w = &inputs.window;
    let span = if w.window_secs > 0 {
        format!("last {}s", w.window_secs)
    } else {
        "lifetime".to_owned()
    };
    let mut checks = Vec::with_capacity(4);

    // Failure rate: failed vs attempted traversals in the window. A
    // window with no traffic is healthy by definition.
    let attempts = w.started.max(w.failed);
    let ratio = if attempts == 0 {
        0.0
    } else {
        w.failed as f64 / attempts as f64
    };
    let mut reason = format!("{} failed / {} started ({span})", w.failed, w.started);
    if let Some((stage, n)) = w.failures_by_stage.iter().max_by_key(|(_, n)| *n) {
        reason.push_str(&format!(", worst stage {stage}={n}"));
    }
    checks.push(HealthCheck {
        name: "failure-rate".to_owned(),
        status: grade(
            ratio,
            thresholds.failure_ratio_degraded,
            thresholds.failure_ratio_unhealthy,
        ),
        reason,
    });

    checks.push(HealthCheck {
        name: "accept-errors".to_owned(),
        status: grade_count(
            w.accept_errors,
            thresholds.accept_errors_degraded,
            thresholds.accept_errors_unhealthy,
        ),
        reason: format!("{} accept errors ({span})", w.accept_errors),
    });

    let (queue_status, queue_reason) = if inputs.queue_capacity == 0 {
        (
            HealthStatus::Healthy,
            "no bounded queue (threaded host)".to_owned(),
        )
    } else {
        let saturation = inputs.queue_depth as f64 / inputs.queue_capacity as f64;
        (
            grade(
                saturation,
                thresholds.queue_saturation_degraded,
                thresholds.queue_saturation_unhealthy,
            ),
            format!(
                "depth {} of {} ({:.0}%)",
                inputs.queue_depth,
                inputs.queue_capacity,
                saturation * 100.0
            ),
        )
    };
    checks.push(HealthCheck {
        name: "queue-depth".to_owned(),
        status: queue_status,
        reason: queue_reason,
    });

    checks.push(HealthCheck {
        name: "stalled-sessions".to_owned(),
        status: grade_count(
            inputs.stalled_now,
            thresholds.stalled_degraded,
            thresholds.stalled_unhealthy,
        ),
        reason: format!(
            "{} stalled now, {} stall events ({span})",
            inputs.stalled_now, w.stalled
        ),
    });

    let status = checks
        .iter()
        .map(|c| c.status)
        .max()
        .unwrap_or(HealthStatus::Healthy);
    PairHealth {
        pair: inputs.pair.clone(),
        status,
        checks,
    }
}

impl HealthReport {
    /// A report over one pair (the common single-merge host case).
    pub fn single(pair: PairHealth) -> HealthReport {
        HealthReport {
            overall: pair.status,
            pairs: vec![pair],
        }
    }

    /// A report rolled up from several pairs.
    pub fn from_pairs(pairs: Vec<PairHealth>) -> HealthReport {
        let overall = pairs
            .iter()
            .map(|p| p.status)
            .max()
            .unwrap_or(HealthStatus::Healthy);
        HealthReport { overall, pairs }
    }

    /// Renders the report in its line-oriented text form:
    ///
    /// ```text
    /// starlink-health degraded
    /// pair Add~Plus degraded
    /// check failure-rate healthy 0 failed / 12 started (last 60s)
    /// check stalled-sessions degraded 1 stalled now, 1 stall events (last 60s)
    /// end
    /// ```
    ///
    /// Exact inverse of [`HealthReport::parse_text`].
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("starlink-health ");
        out.push_str(self.overall.label());
        out.push('\n');
        for pair in &self.pairs {
            out.push_str("pair ");
            out.push_str(&escape_token(&pair.pair));
            out.push(' ');
            out.push_str(pair.status.label());
            out.push('\n');
            for check in &pair.checks {
                out.push_str("check ");
                out.push_str(&check.name);
                out.push(' ');
                out.push_str(check.status.label());
                out.push(' ');
                out.push_str(&check.reason);
                out.push('\n');
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parses a document produced by [`HealthReport::render_text`].
    /// Exact inverse: `parse_text(render_text(r)) == Ok(r)`.
    ///
    /// # Errors
    ///
    /// A message naming the first malformed line.
    pub fn parse_text(text: &str) -> Result<HealthReport, String> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or("empty health report")?;
        let overall = header
            .strip_prefix("starlink-health ")
            .and_then(HealthStatus::parse)
            .ok_or_else(|| {
                format!("line 1: expected `starlink-health <status>`, got `{header}`")
            })?;
        let mut pairs: Vec<PairHealth> = Vec::new();
        let mut saw_end = false;
        for (idx, line) in lines {
            let line_no = idx + 1;
            if line.is_empty() {
                continue;
            }
            if line == "end" {
                saw_end = true;
                break;
            }
            if let Some(rest) = line.strip_prefix("pair ") {
                let (pair, status) = rest
                    .rsplit_once(' ')
                    .ok_or_else(|| format!("line {line_no}: malformed pair line `{line}`"))?;
                let status = HealthStatus::parse(status)
                    .ok_or_else(|| format!("line {line_no}: unknown status `{status}`"))?;
                pairs.push(PairHealth {
                    pair: unescape_token(pair),
                    status,
                    checks: Vec::new(),
                });
            } else if let Some(rest) = line.strip_prefix("check ") {
                let pair = pairs
                    .last_mut()
                    .ok_or_else(|| format!("line {line_no}: check before any pair"))?;
                let (name, rest) = rest
                    .split_once(' ')
                    .ok_or_else(|| format!("line {line_no}: malformed check line `{line}`"))?;
                let (status, reason) = rest
                    .split_once(' ')
                    .map(|(s, r)| (s, r.to_owned()))
                    .unwrap_or((rest, String::new()));
                let status = HealthStatus::parse(status)
                    .ok_or_else(|| format!("line {line_no}: unknown status `{status}`"))?;
                pair.checks.push(HealthCheck {
                    name: name.to_owned(),
                    status,
                    reason,
                });
            } else {
                return Err(format!("line {line_no}: unrecognised line `{line}`"));
            }
        }
        if !saw_end {
            return Err("health report missing `end` terminator".to_owned());
        }
        Ok(HealthReport { overall, pairs })
    }

    /// The report as gauge families for the stats snapshot:
    /// `starlink_health_status{pair}` and
    /// `starlink_health_check{pair,check}` with values 0/1/2
    /// (healthy/degraded/unhealthy).
    pub fn families(&self) -> Vec<MetricFamily> {
        let mut status_samples = Vec::with_capacity(self.pairs.len());
        let mut check_samples = Vec::new();
        for pair in &self.pairs {
            status_samples.push(Sample {
                labels: vec![("pair".to_owned(), pair.pair.clone())],
                value: pair.status.gauge_value(),
            });
            for check in &pair.checks {
                check_samples.push(Sample {
                    labels: vec![
                        ("pair".to_owned(), pair.pair.clone()),
                        ("check".to_owned(), check.name.clone()),
                    ],
                    value: check.status.gauge_value(),
                });
            }
        }
        let mut families = vec![MetricFamily::simple(
            "starlink_health_status",
            MetricKind::Gauge,
            status_samples,
        )];
        if !check_samples.is_empty() {
            families.push(MetricFamily::simple(
                "starlink_health_check",
                MetricKind::Gauge,
                check_samples,
            ));
        }
        families
    }
}

/// Pair names travel as one whitespace-delimited token in the text form;
/// spaces inside the automaton name are escaped to keep lines parseable.
fn escape_token(name: &str) -> String {
    name.replace('\\', "\\\\").replace(' ', "\\s")
}

fn unescape_token(token: &str) -> String {
    let mut out = String::with_capacity(token.len());
    let mut chars = token.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('s') => out.push(' '),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> HealthInputs {
        HealthInputs {
            pair: "Add~Plus".to_owned(),
            window: WindowCounts {
                window_secs: 60,
                started: 100,
                finished: 98,
                ..WindowCounts::default()
            },
            queue_depth: 1,
            queue_capacity: 8,
            stalled_now: 0,
        }
    }

    #[test]
    fn quiet_bridge_is_healthy() {
        let report = HealthReport::single(evaluate_pair(&inputs(), &HealthThresholds::default()));
        assert_eq!(report.overall, HealthStatus::Healthy);
        assert_eq!(report.pairs[0].checks.len(), 4);
        assert!(report.pairs[0]
            .checks
            .iter()
            .all(|c| c.status == HealthStatus::Healthy));
    }

    #[test]
    fn empty_window_is_healthy() {
        let quiet = HealthInputs {
            pair: "Add~Plus".to_owned(),
            ..HealthInputs::default()
        };
        let pair = evaluate_pair(&quiet, &HealthThresholds::default());
        assert_eq!(pair.status, HealthStatus::Healthy);
    }

    #[test]
    fn failure_ratio_grades_degraded_then_unhealthy() {
        let mut i = inputs();
        i.window.failed = 10; // 10%
        let pair = evaluate_pair(&i, &HealthThresholds::default());
        assert_eq!(pair.status, HealthStatus::Degraded);
        i.window.failed = 60; // 60%
        let pair = evaluate_pair(&i, &HealthThresholds::default());
        assert_eq!(pair.status, HealthStatus::Unhealthy);
    }

    #[test]
    fn all_failures_with_no_starts_is_unhealthy() {
        // Sessions can fail before SessionStarted (e.g. accept-time
        // errors): failed > started must still register.
        let mut i = inputs();
        i.window.started = 0;
        i.window.failed = 5;
        let pair = evaluate_pair(&i, &HealthThresholds::default());
        assert_eq!(pair.status, HealthStatus::Unhealthy);
    }

    #[test]
    fn worst_stage_named_in_failure_reason() {
        let mut i = inputs();
        i.window.failed = 10;
        i.window.failures_by_stage = vec![("mdl".to_owned(), 3), ("net".to_owned(), 7)];
        let pair = evaluate_pair(&i, &HealthThresholds::default());
        let check = &pair.checks[0];
        assert!(
            check.reason.contains("worst stage net=7"),
            "{}",
            check.reason
        );
    }

    #[test]
    fn stalled_sessions_degrade() {
        let mut i = inputs();
        i.stalled_now = 1;
        i.window.stalled = 1;
        let pair = evaluate_pair(&i, &HealthThresholds::default());
        assert_eq!(pair.status, HealthStatus::Degraded);
        let stall = pair
            .checks
            .iter()
            .find(|c| c.name == "stalled-sessions")
            .unwrap();
        assert_eq!(stall.status, HealthStatus::Degraded);
        i.stalled_now = 8;
        let pair = evaluate_pair(&i, &HealthThresholds::default());
        assert_eq!(pair.status, HealthStatus::Unhealthy);
    }

    #[test]
    fn queue_saturation_degrades() {
        let mut i = inputs();
        i.queue_depth = 7; // 87%
        let pair = evaluate_pair(&i, &HealthThresholds::default());
        assert_eq!(pair.status, HealthStatus::Degraded);
        i.queue_depth = 8;
        let pair = evaluate_pair(&i, &HealthThresholds::default());
        assert_eq!(pair.status, HealthStatus::Unhealthy);
    }

    #[test]
    fn threaded_host_skips_queue_check() {
        let mut i = inputs();
        i.queue_capacity = 0;
        i.queue_depth = 0;
        let pair = evaluate_pair(&i, &HealthThresholds::default());
        let queue = pair
            .checks
            .iter()
            .find(|c| c.name == "queue-depth")
            .unwrap();
        assert_eq!(queue.status, HealthStatus::Healthy);
        assert!(queue.reason.contains("threaded"));
    }

    #[test]
    fn render_parse_round_trip() {
        let mut i = inputs();
        i.stalled_now = 2;
        i.window.failed = 10;
        i.window.failures_by_stage = vec![("net".to_owned(), 10)];
        let report = HealthReport::single(evaluate_pair(&i, &HealthThresholds::default()));
        let text = report.render_text();
        let back = HealthReport::parse_text(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn pair_names_with_spaces_round_trip() {
        let report = HealthReport::single(PairHealth {
            pair: "Add Client ~ Plus\\Service".to_owned(),
            status: HealthStatus::Healthy,
            checks: vec![HealthCheck {
                name: "failure-rate".to_owned(),
                status: HealthStatus::Healthy,
                reason: "0 failed / 0 started (last 60s)".to_owned(),
            }],
        });
        let back = HealthReport::parse_text(&report.render_text()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(HealthReport::parse_text("").is_err());
        assert!(HealthReport::parse_text("starlink-health fine\nend\n").is_err());
        assert!(HealthReport::parse_text("starlink-health healthy\n").is_err()); // no end
        assert!(
            HealthReport::parse_text("starlink-health healthy\ncheck x healthy y\nend\n").is_err()
        );
        assert!(HealthReport::parse_text("starlink-health healthy\nwhat\nend\n").is_err());
    }

    #[test]
    fn exit_codes_follow_the_contract() {
        assert_eq!(HealthStatus::Healthy.exit_code(), 0);
        assert_eq!(HealthStatus::Degraded.exit_code(), 1);
        assert_eq!(HealthStatus::Unhealthy.exit_code(), 2);
    }

    #[test]
    fn families_expose_statuses_as_gauges() {
        let mut i = inputs();
        i.stalled_now = 1;
        let report = HealthReport::single(evaluate_pair(&i, &HealthThresholds::default()));
        let snap = crate::Snapshot {
            families: report.families(),
        };
        let back = crate::Snapshot::parse_text(&snap.render_text()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(
            back.value("starlink_health_status", &[("pair", "Add~Plus")]),
            Some(1)
        );
        assert_eq!(
            back.value(
                "starlink_health_check",
                &[("pair", "Add~Plus"), ("check", "stalled-sessions")]
            ),
            Some(1)
        );
    }

    #[test]
    fn multi_pair_rollup_takes_the_worst() {
        let healthy = PairHealth {
            pair: "A".to_owned(),
            status: HealthStatus::Healthy,
            checks: Vec::new(),
        };
        let bad = PairHealth {
            pair: "B".to_owned(),
            status: HealthStatus::Unhealthy,
            checks: Vec::new(),
        };
        let report = HealthReport::from_pairs(vec![healthy, bad]);
        assert_eq!(report.overall, HealthStatus::Unhealthy);
    }
}
