//! The sink contract: where trace events go.

use crate::event::TraceEvent;
use crate::snapshot::Snapshot;
use crate::span::TraceMeta;
use std::sync::Arc;

/// A consumer of [`TraceEvent`]s.
///
/// The contract instrumented layers rely on:
///
/// * `record` must be cheap and non-blocking — it runs on request hot
///   paths. Aggregate into atomics (see [`crate::Recorder`]) or push into
///   a bounded buffer; never do I/O inline.
/// * `enabled` lets call sites skip event construction (and the
///   `Instant::now()` pair around timed phases) entirely. A sink that
///   returns `false` must also tolerate `record` being called anyway —
///   cheap events may be emitted unguarded.
/// * `snapshot` returns an aggregate view when the sink keeps one;
///   pass-through or logging sinks return `None` (the default). Hosts use
///   this to serve `telemetry_snapshot()` without knowing the concrete
///   sink type.
///
/// Sinks are injected explicitly — through `SessionSpec`, codec and
/// transport builders — never discovered ambiently, which keeps the
/// session engine sans-I/O-friendly and deterministic under test.
pub trait TelemetrySink: Send + Sync {
    /// Whether events are worth constructing at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event.
    fn record(&self, event: &TraceEvent<'_>);

    /// A point-in-time metric aggregate, when this sink maintains one.
    fn snapshot(&self) -> Option<Snapshot> {
        None
    }

    /// Consumes one event with its causal metadata (session id,
    /// monotonic timestamp, span tree position). The default discards
    /// the metadata and forwards to [`TelemetrySink::record`], so
    /// aggregate sinks keep counting traced events without change;
    /// trace-aware sinks ([`crate::TraceBuffer`], [`crate::FlightRecorder`])
    /// override it.
    fn record_traced(&self, meta: &TraceMeta, event: &TraceEvent<'_>) {
        let _ = meta;
        self.record(event);
    }

    /// Whether this sink consumes span metadata. Emitting layers only
    /// mint a [`crate::SessionTracer`] (and pay its timestamping and
    /// span bookkeeping) when this returns `true`, so purely aggregate
    /// deployments keep PR 3's cost profile. Defaults to `false`.
    fn wants_spans(&self) -> bool {
        false
    }

    /// Whether this sink consumes [`TraceEvent::MessageSnapshot`]
    /// payloads. Rendering abstract-message fields to text is the most
    /// expensive thing the instrumentation can do, so it is gated on
    /// this flag separately from `wants_spans`. Defaults to `false`.
    fn wants_messages(&self) -> bool {
        false
    }
}

/// The default sink: drops everything and reports `enabled() == false`,
/// so instrumented hot paths cost one virtual call per site.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: &TraceEvent<'_>) {}
}

/// A shared no-op sink (convenience for default fields).
pub fn noop_sink() -> Arc<dyn TelemetrySink> {
    Arc::new(NoopSink)
}

/// Broadcasts every event to several sinks; `snapshot()` returns the
/// first child snapshot available. Used by hosts to keep a caller's
/// custom sink while still maintaining the host's own [`crate::Recorder`].
pub struct FanoutSink {
    sinks: Vec<Arc<dyn TelemetrySink>>,
}

impl FanoutSink {
    /// A fanout over the given sinks.
    pub fn new(sinks: Vec<Arc<dyn TelemetrySink>>) -> FanoutSink {
        FanoutSink { sinks }
    }
}

impl TelemetrySink for FanoutSink {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn record(&self, event: &TraceEvent<'_>) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }

    fn record_traced(&self, meta: &TraceMeta, event: &TraceEvent<'_>) {
        for sink in &self.sinks {
            sink.record_traced(meta, event);
        }
    }

    fn snapshot(&self) -> Option<Snapshot> {
        self.sinks.iter().find_map(|s| s.snapshot())
    }

    fn wants_spans(&self) -> bool {
        self.sinks.iter().any(|s| s.wants_spans())
    }

    fn wants_messages(&self) -> bool {
        self.sinks.iter().any(|s| s.wants_messages())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn noop_is_disabled_and_snapshotless() {
        let s = NoopSink;
        assert!(!s.enabled());
        s.record(&TraceEvent::SessionStarted);
        assert!(s.snapshot().is_none());
    }

    #[test]
    fn fanout_forwards_and_snapshots() {
        let recorder = Arc::new(Recorder::new());
        let fan = FanoutSink::new(vec![Arc::new(NoopSink), recorder]);
        assert!(fan.enabled());
        fan.record(&TraceEvent::SessionStarted);
        let snap = fan.snapshot().expect("recorder child snapshots");
        assert_eq!(snap.counter("starlink_sessions_started_total"), 1);
    }
}
