//! Trace exporters: Chrome `trace_event` JSON and a plain-text timeline.
//!
//! The JSON exporter emits the subset of the Trace Event Format that
//! `chrome://tracing` and Perfetto load: an object with a `traceEvents`
//! array of duration (`B`/`E`), complete (`X`) and instant (`i`)
//! events, timestamps in microseconds. Thread id is the session trace
//! id, so one host dump shows each mediated session as its own track;
//! timestamps are relative to each session's tracer epoch (its accept
//! time), not to a shared clock.
//!
//! The module also carries a validating parser for the same subset —
//! written here (zero-dep crate) so smoke tests and the CLI can check
//! an export round-trips and its span pairs balance without pulling in
//! a JSON dependency.

use crate::span::{SessionTrace, TraceRecordKind};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Process id used for all exported events (one mediator host).
const EXPORT_PID: u64 = 1;
/// Category tag on every exported event.
const EXPORT_CATEGORY: &str = "starlink";

/// One Chrome `trace_event` entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    /// Event name.
    pub name: String,
    /// Category list (comma-separated by convention).
    pub cat: String,
    /// Phase: `B` (begin), `E` (end), `X` (complete), `i` (instant).
    pub ph: char,
    /// Timestamp in microseconds.
    pub ts_us: f64,
    /// Duration in microseconds (`X` events only).
    pub dur_us: Option<f64>,
    /// Process id.
    pub pid: u64,
    /// Thread id (the session trace id).
    pub tid: u64,
    /// Argument key/value pairs (string-valued).
    pub args: Vec<(String, String)>,
}

/// Lowers one completed session trace into Chrome trace events.
///
/// Span opens/closes become `B`/`E` pairs, timed phases (parse, γ,
/// compose, translate) become `X` complete events positioned at their
/// start, point events become `i` instants.
pub fn chrome_events(trace: &SessionTrace) -> Vec<ChromeEvent> {
    let tid = trace.session.0;
    let mut events = Vec::with_capacity(trace.records.len());
    for record in &trace.records {
        let ts_ns = record.meta.ts_ns;
        let mut args = Vec::new();
        if !record.detail.is_empty() {
            args.push(("detail".to_owned(), record.detail.clone()));
        }
        args.push(("span".to_owned(), record.meta.span.0.to_string()));
        args.push(("parent".to_owned(), record.meta.parent.0.to_string()));
        let (ph, ts_ns, dur_us) = match record.kind {
            TraceRecordKind::SpanOpen => ('B', ts_ns, None),
            TraceRecordKind::SpanClose => ('E', ts_ns, None),
            TraceRecordKind::Instant => ('i', ts_ns, None),
            TraceRecordKind::Timed(dur_ns) => (
                // The event is emitted at completion; rewind to the start.
                'X',
                ts_ns.saturating_sub(dur_ns),
                Some(dur_ns as f64 / 1_000.0),
            ),
        };
        events.push(ChromeEvent {
            name: record.name.clone(),
            cat: EXPORT_CATEGORY.to_owned(),
            ph,
            ts_us: ts_ns as f64 / 1_000.0,
            dur_us,
            pid: EXPORT_PID,
            tid,
            args,
        });
    }
    events
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders events as a Chrome trace JSON document
/// (`{"traceEvents": [...]}`).
pub fn render_chrome_json(events: &[ChromeEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 128 + 32);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_json(&ev.name, &mut out);
        out.push_str("\",\"cat\":\"");
        escape_json(&ev.cat, &mut out);
        let _ = write!(
            out,
            "\",\"ph\":\"{}\",\"ts\":{:.3},\"pid\":{},\"tid\":{}",
            ev.ph, ev.ts_us, ev.pid, ev.tid
        );
        if let Some(dur) = ev.dur_us {
            let _ = write!(out, ",\"dur\":{dur:.3}");
        }
        out.push_str(",\"args\":{");
        for (j, (key, value)) in ev.args.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(key, &mut out);
            out.push_str("\":\"");
            escape_json(value, &mut out);
            out.push('"');
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------------
// Minimal JSON reader (enough for the trace subset we emit).

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct JsonReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonReader<'a> {
    fn new(text: &'a str) -> JsonReader<'a> {
        JsonReader {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> String {
        format!("invalid JSON at byte {}: {message}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our
                            // renderer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from this byte.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xc0 == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("invalid number"))
    }
}

/// Parses a Chrome trace JSON document (the subset this module emits:
/// an object with a `traceEvents` array, or a bare event array).
pub fn parse_chrome_trace(text: &str) -> Result<Vec<ChromeEvent>, String> {
    let mut reader = JsonReader::new(text);
    let root = reader.value()?;
    reader.skip_ws();
    if reader.pos != reader.bytes.len() {
        return Err(reader.error("trailing data"));
    }
    let items = match &root {
        Json::Arr(items) => items,
        Json::Obj(_) => match root.get("traceEvents") {
            Some(Json::Arr(items)) => items,
            _ => return Err("missing \"traceEvents\" array".to_owned()),
        },
        _ => return Err("root must be an object or array".to_owned()),
    };
    let mut events = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let field = |key: &str| {
            item.get(key)
                .ok_or_else(|| format!("event {i}: missing \"{key}\""))
        };
        let ph_str = field("ph")?
            .as_str()
            .ok_or_else(|| format!("event {i}: \"ph\" must be a string"))?;
        let mut chars = ph_str.chars();
        let ph = match (chars.next(), chars.next()) {
            (Some(c), None) => c,
            _ => return Err(format!("event {i}: \"ph\" must be one character")),
        };
        let num = |key: &str| -> Result<f64, String> {
            field(key)?
                .as_f64()
                .ok_or_else(|| format!("event {i}: \"{key}\" must be a number"))
        };
        let mut args = Vec::new();
        if let Some(Json::Obj(pairs)) = item.get("args") {
            for (key, value) in pairs {
                let rendered = match value {
                    Json::Str(s) => s.clone(),
                    Json::Num(n) => n.to_string(),
                    Json::Bool(b) => b.to_string(),
                    Json::Null => "null".to_owned(),
                    other => format!("{other:?}"),
                };
                args.push((key.clone(), rendered));
            }
        }
        events.push(ChromeEvent {
            name: field("name")?
                .as_str()
                .ok_or_else(|| format!("event {i}: \"name\" must be a string"))?
                .to_owned(),
            cat: item
                .get("cat")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
            ph,
            ts_us: num("ts")?,
            dur_us: item.get("dur").and_then(Json::as_f64),
            pid: num("pid")? as u64,
            tid: num("tid")? as u64,
            args,
        });
    }
    Ok(events)
}

/// Summary statistics from [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events in the document.
    pub events: usize,
    /// Matched begin/end span pairs.
    pub span_pairs: usize,
    /// Distinct (pid, tid) tracks — i.e. sessions.
    pub tracks: usize,
}

/// Parses a Chrome trace document and checks its structural invariants:
/// every `E` closes the most recent open `B` with the same name on its
/// track, no track ends with open spans, and `X` events carry a
/// duration. Returns summary stats on success.
pub fn validate_chrome_trace(text: &str) -> Result<TraceStats, String> {
    let events = parse_chrome_trace(text)?;
    let mut stacks: HashMap<(u64, u64), Vec<String>> = HashMap::new();
    let mut span_pairs = 0;
    for (i, ev) in events.iter().enumerate() {
        let track = (ev.pid, ev.tid);
        match ev.ph {
            'B' => stacks.entry(track).or_default().push(ev.name.clone()),
            'E' => {
                let open = stacks.entry(track).or_default().pop().ok_or_else(|| {
                    format!("event {i}: 'E' for \"{}\" with no open span", ev.name)
                })?;
                if open != ev.name {
                    return Err(format!(
                        "event {i}: 'E' for \"{}\" but innermost open span is \"{open}\"",
                        ev.name
                    ));
                }
                span_pairs += 1;
            }
            'X' => {
                if ev.dur_us.is_none() {
                    return Err(format!("event {i}: 'X' event without \"dur\""));
                }
                stacks.entry(track).or_default();
            }
            'i' => {
                stacks.entry(track).or_default();
            }
            other => return Err(format!("event {i}: unsupported phase '{other}'")),
        }
    }
    if let Some(((pid, tid), stack)) = stacks.iter().find(|(_, stack)| !stack.is_empty()) {
        return Err(format!(
            "track pid={pid} tid={tid} ends with {} unclosed span(s): {:?}",
            stack.len(),
            stack
        ));
    }
    Ok(TraceStats {
        events: events.len(),
        span_pairs,
        tracks: stacks.len(),
    })
}

fn format_us(us: f64) -> String {
    if us >= 1_000.0 {
        format!("{:.3}ms", us / 1_000.0)
    } else {
        format!("{us:.1}µs")
    }
}

/// Renders a plain-text timeline of one session trace: one line per
/// record, indented by span depth, with session-relative timestamps and
/// durations for timed phases.
pub fn render_timeline(trace: &SessionTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "session {}", trace.session.0);
    let mut depth = 0usize;
    for record in &trace.records {
        let ts_us = record.meta.ts_ns as f64 / 1_000.0;
        match record.kind {
            TraceRecordKind::SpanOpen => {
                let _ = writeln!(
                    out,
                    "{:>11}  {}▶ {}",
                    format_us(ts_us),
                    "  ".repeat(depth),
                    record.name
                );
                depth += 1;
            }
            TraceRecordKind::SpanClose => {
                depth = depth.saturating_sub(1);
                let _ = writeln!(
                    out,
                    "{:>11}  {}◀ {}",
                    format_us(ts_us),
                    "  ".repeat(depth),
                    record.name
                );
            }
            TraceRecordKind::Instant => {
                let _ = writeln!(
                    out,
                    "{:>11}  {}· {} {}",
                    format_us(ts_us),
                    "  ".repeat(depth),
                    record.name,
                    record.detail
                );
            }
            TraceRecordKind::Timed(dur_ns) => {
                let _ = writeln!(
                    out,
                    "{:>11}  {}■ {} {} [{}]",
                    format_us(ts_us),
                    "  ".repeat(depth),
                    record.name,
                    record.detail,
                    format_us(dur_ns as f64 / 1_000.0)
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use crate::span::{SessionTracer, TraceBuffer};

    fn sample_trace() -> SessionTrace {
        let buffer = TraceBuffer::new();
        let tracer = SessionTracer::new();
        let root = tracer.open(&buffer, "session");
        let recv = tracer.open(&buffer, "receive");
        tracer.record(
            &buffer,
            &TraceEvent::Parse {
                variant: "AddRequest",
                wire_bytes: 48,
                nanos: 2_000,
            },
        );
        tracer.close(&buffer, recv);
        tracer.record(
            &buffer,
            &TraceEvent::WireOut {
                color: 2,
                bytes: 40,
            },
        );
        tracer.close(&buffer, root);
        buffer.latest().expect("completed trace")
    }

    #[test]
    fn export_round_trips_through_the_parser() {
        let trace = sample_trace();
        let events = chrome_events(&trace);
        let json = render_chrome_json(&events);
        let parsed = parse_chrome_trace(&json).expect("valid JSON");
        assert_eq!(parsed.len(), events.len());
        for (a, b) in events.iter().zip(&parsed) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.ph, b.ph);
            assert_eq!(a.tid, b.tid);
            assert_eq!(a.args, b.args);
            assert!((a.ts_us - b.ts_us).abs() < 0.002);
        }
    }

    #[test]
    fn validator_accepts_balanced_and_rejects_unbalanced() {
        let trace = sample_trace();
        let json = render_chrome_json(&chrome_events(&trace));
        let stats = validate_chrome_trace(&json).expect("balanced trace");
        assert_eq!(stats.span_pairs, 2);
        assert_eq!(stats.tracks, 1);
        assert!(stats.events >= 5);

        let unbalanced = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":0,"pid":1,"tid":1},
            {"name":"b","ph":"E","ts":1,"pid":1,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(unbalanced).is_err());

        let dangling = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":0,"pid":1,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(dangling).is_err());
    }

    #[test]
    fn escaping_survives_hostile_strings() {
        let events = vec![ChromeEvent {
            name: "quote\" \\ tab\t π".to_owned(),
            cat: "c".to_owned(),
            ph: 'i',
            ts_us: 1.5,
            dur_us: None,
            pid: 1,
            tid: 9,
            args: vec![("k\n".to_owned(), "v\u{0001}".to_owned())],
        }];
        let json = render_chrome_json(&events);
        let parsed = parse_chrome_trace(&json).expect("valid JSON");
        assert_eq!(parsed[0].name, events[0].name);
        assert_eq!(parsed[0].args, events[0].args);
    }

    #[test]
    fn timed_records_become_complete_events_at_their_start() {
        let trace = sample_trace();
        let events = chrome_events(&trace);
        let parse = events.iter().find(|e| e.name == "parse").unwrap();
        assert_eq!(parse.ph, 'X');
        assert_eq!(parse.dur_us, Some(2.0));
        let parse_record = trace.records.iter().find(|r| r.name == "parse").unwrap();
        // The complete event is rewound from the record's timestamp (the
        // operation's *end*) by its duration, clamping at the epoch.
        let start_us = parse_record.meta.ts_ns.saturating_sub(2_000) as f64 / 1_000.0;
        assert!((parse.ts_us - start_us).abs() < 0.002);
    }

    #[test]
    fn timeline_renders_depth_and_durations() {
        let trace = sample_trace();
        let text = render_timeline(&trace);
        assert!(text.starts_with(&format!("session {}\n", trace.session.0)));
        assert!(text.contains("▶ session"));
        assert!(text.contains("  ▶ receive"));
        assert!(text.contains("■ parse"));
        assert!(text.contains("◀ session"));
    }
}
