//! Sliding-window aggregation: event counts over the last N seconds.
//!
//! The [`crate::Recorder`] answers "how much, ever" — cumulative counters
//! since deployment. An operator watching a live bridge needs "how much,
//! *lately*": a mediator that failed a thousand sessions last week but
//! none in the past minute is healthy; one failing ten per second right
//! now is not. [`WindowAggregator`] is a [`TelemetrySink`] that buckets
//! the lifecycle events the health model cares about (sessions
//! started/finished/failed, accepts, accept errors, stalls, per-stage
//! failures) into a ring of fixed-width time slots and sums the live
//! slots on demand, yielding counts over a sliding window.
//!
//! The window rides the existing event stream — nothing new is emitted;
//! the aggregator is simply fanned out next to the recorder by
//! `Mediator::enable_ops`. When no sink is installed the engine's no-op
//! gate skips event construction entirely, so windows cost nothing in
//! uninstrumented deployments.

use crate::event::TraceEvent;
use crate::sink::TelemetrySink;
use crate::snapshot::{MetricFamily, MetricKind, Sample};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Shape of a sliding window: total length and slot count (resolution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Total window length; counts older than this fall out.
    pub length: Duration,
    /// Number of ring slots the window is divided into. More slots mean
    /// smoother expiry at slightly more memory; the slot width is
    /// `length / slots`.
    pub slots: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            length: Duration::from_secs(60),
            slots: 12,
        }
    }
}

impl WindowConfig {
    /// A window of `length` with the default slot count.
    pub fn over(length: Duration) -> WindowConfig {
        WindowConfig {
            length,
            ..WindowConfig::default()
        }
    }
}

/// One slot's worth of counts.
#[derive(Debug, Default, Clone)]
struct Slot {
    started: u64,
    finished: u64,
    failed: u64,
    accepted: u64,
    accept_errors: u64,
    stalled: u64,
    /// Failure counts keyed by `CoreError::stage_label` (low
    /// cardinality by construction).
    by_stage: HashMap<String, u64>,
}

impl Slot {
    fn clear(&mut self) {
        self.started = 0;
        self.finished = 0;
        self.failed = 0;
        self.accepted = 0;
        self.accept_errors = 0;
        self.stalled = 0;
        self.by_stage.clear();
    }
}

struct Ring {
    slots: Vec<Slot>,
    /// Absolute index of the slot currently being written (monotonic;
    /// `head % slots.len()` is the ring position).
    head: u64,
}

/// Event counts observed within the window, summed over live slots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowCounts {
    /// The window these counts cover, in seconds.
    pub window_secs: u64,
    /// Traversals started.
    pub started: u64,
    /// Traversals that reached an accepting state.
    pub finished: u64,
    /// Traversals that failed (orderly ends excluded at the source).
    pub failed: u64,
    /// Client connections accepted.
    pub accepted: u64,
    /// Transient accept-loop errors.
    pub accept_errors: u64,
    /// Sessions flagged stalled by a watchdog.
    pub stalled: u64,
    /// Failures by stage label, sorted by stage name.
    pub failures_by_stage: Vec<(String, u64)>,
}

impl WindowCounts {
    /// Failures per second over the window (0 for an empty window).
    pub fn failure_rate(&self) -> f64 {
        if self.window_secs == 0 {
            return 0.0;
        }
        self.failed as f64 / self.window_secs as f64
    }
}

/// A [`TelemetrySink`] maintaining sliding-window counts of lifecycle
/// events, labelled with the merged-automaton pair it observes.
///
/// `record` takes one short mutex (windows sit next to the recorder on
/// already-instrumented deployments; the guarded work is a handful of
/// integer increments). Events outside the health model's interest are
/// filtered before the lock.
pub struct WindowAggregator {
    /// Label applied to every exposed family: the merged automaton
    /// (protocol pair) this window observes.
    pair: String,
    slot_len: Duration,
    slots: usize,
    epoch: Instant,
    ring: Mutex<Ring>,
}

impl WindowAggregator {
    /// A window for the given merged-automaton pair label.
    pub fn new(pair: &str, config: WindowConfig) -> WindowAggregator {
        let slots = config.slots.max(2);
        let slot_len = (config.length / slots as u32).max(Duration::from_millis(1));
        WindowAggregator {
            pair: pair.to_owned(),
            slot_len,
            slots,
            epoch: Instant::now(),
            ring: Mutex::new(Ring {
                slots: vec![Slot::default(); slots],
                head: 0,
            }),
        }
    }

    /// The merged-automaton pair label this window carries.
    pub fn pair(&self) -> &str {
        &self.pair
    }

    /// The total window length.
    pub fn length(&self) -> Duration {
        self.slot_len * self.slots as u32
    }

    /// Records an event as if it happened `offset` after the aggregator
    /// was created. Deterministic-time entry point used by tests;
    /// [`TelemetrySink::record`] feeds it `epoch.elapsed()`.
    pub fn record_at(&self, offset: Duration, event: &TraceEvent<'_>) {
        // Filter before locking: most events are not windowed.
        let stage: Option<&str> = match *event {
            TraceEvent::SessionStarted
            | TraceEvent::SessionFinished { .. }
            | TraceEvent::SessionAccepted
            | TraceEvent::AcceptError
            | TraceEvent::SessionStalled { .. } => None,
            TraceEvent::SessionFailed { stage } => Some(stage),
            _ => return,
        };
        let idx = (offset.as_nanos() / self.slot_len.as_nanos().max(1)) as u64;
        let mut ring = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        advance(&mut ring, idx);
        let len = ring.slots.len();
        let slot = &mut ring.slots[(idx % len as u64) as usize];
        match *event {
            TraceEvent::SessionStarted => slot.started += 1,
            TraceEvent::SessionFinished { .. } => slot.finished += 1,
            TraceEvent::SessionFailed { .. } => {
                slot.failed += 1;
                let stage = stage.unwrap_or("unknown");
                *slot.by_stage.entry(stage.to_owned()).or_insert(0) += 1;
            }
            TraceEvent::SessionAccepted => slot.accepted += 1,
            TraceEvent::AcceptError => slot.accept_errors += 1,
            TraceEvent::SessionStalled { .. } => slot.stalled += 1,
            _ => unreachable!("filtered above"),
        }
    }

    /// Counts over the window as of `offset` after creation
    /// (deterministic-time entry point; [`WindowAggregator::counts`]
    /// feeds it `epoch.elapsed()`). Slots older than the window are
    /// expired first.
    pub fn counts_at(&self, offset: Duration) -> WindowCounts {
        let idx = (offset.as_nanos() / self.slot_len.as_nanos().max(1)) as u64;
        let mut ring = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        advance(&mut ring, idx);
        let mut counts = WindowCounts {
            window_secs: self.length().as_secs(),
            ..WindowCounts::default()
        };
        let mut by_stage: HashMap<&str, u64> = HashMap::new();
        for slot in &ring.slots {
            counts.started += slot.started;
            counts.finished += slot.finished;
            counts.failed += slot.failed;
            counts.accepted += slot.accepted;
            counts.accept_errors += slot.accept_errors;
            counts.stalled += slot.stalled;
            for (stage, n) in &slot.by_stage {
                *by_stage.entry(stage).or_insert(0) += n;
            }
        }
        counts.failures_by_stage = by_stage
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect();
        counts.failures_by_stage.sort();
        counts
    }

    /// Counts over the window ending now.
    pub fn counts(&self) -> WindowCounts {
        self.counts_at(self.epoch.elapsed())
    }

    /// The window rendered as gauge families (counts over the last N
    /// seconds, *not* cumulative), each sample labelled with the pair.
    /// Merged into the diagnostics snapshot next to the recorder's
    /// lifetime families.
    pub fn families(&self) -> Vec<MetricFamily> {
        window_families(&self.pair, &self.counts())
    }
}

/// Renders windowed counts as labelled gauge families. Split out so the
/// exposition shape is testable without an aggregator (and so health
/// snapshots built from parsed text can re-render identically).
pub fn window_families(pair: &str, counts: &WindowCounts) -> Vec<MetricFamily> {
    let sample = |value: u64| Sample {
        labels: vec![("pair".to_owned(), pair.to_owned())],
        value,
    };
    let gauge =
        |name: &str, value: u64| MetricFamily::simple(name, MetricKind::Gauge, vec![sample(value)]);
    let mut families = vec![
        gauge("starlink_window_seconds", counts.window_secs),
        gauge("starlink_window_sessions_started", counts.started),
        gauge("starlink_window_sessions_finished", counts.finished),
        gauge("starlink_window_sessions_failed", counts.failed),
        gauge("starlink_window_sessions_accepted", counts.accepted),
        gauge("starlink_window_accept_errors", counts.accept_errors),
        gauge("starlink_window_sessions_stalled", counts.stalled),
    ];
    if !counts.failures_by_stage.is_empty() {
        let samples = counts
            .failures_by_stage
            .iter()
            .map(|(stage, n)| Sample {
                labels: vec![
                    ("pair".to_owned(), pair.to_owned()),
                    ("stage".to_owned(), stage.clone()),
                ],
                value: *n,
            })
            .collect();
        families.push(MetricFamily::simple(
            "starlink_window_session_failures",
            MetricKind::Gauge,
            samples,
        ));
    }
    families
}

fn advance(ring: &mut Ring, idx: u64) {
    if idx <= ring.head {
        return; // same slot, or a racing earlier timestamp: keep it
    }
    let len = ring.slots.len() as u64;
    // Clear every slot between the old head and the new one; a jump
    // longer than the ring clears everything once.
    let steps = (idx - ring.head).min(len);
    for i in 1..=steps {
        let pos = ((ring.head + i) % len) as usize;
        ring.slots[pos].clear();
    }
    ring.head = idx;
}

impl TelemetrySink for WindowAggregator {
    fn record(&self, event: &TraceEvent<'_>) {
        self.record_at(self.epoch.elapsed(), event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> Duration {
        Duration::from_secs(s)
    }

    fn window() -> WindowAggregator {
        // 10 s window, 5 slots of 2 s.
        WindowAggregator::new(
            "Add~Plus",
            WindowConfig {
                length: secs(10),
                slots: 5,
            },
        )
    }

    #[test]
    fn counts_accumulate_within_the_window() {
        let w = window();
        w.record_at(secs(1), &TraceEvent::SessionStarted);
        w.record_at(secs(3), &TraceEvent::SessionStarted);
        w.record_at(secs(3), &TraceEvent::SessionFailed { stage: "mdl" });
        w.record_at(secs(4), &TraceEvent::SessionFailed { stage: "net" });
        w.record_at(secs(4), &TraceEvent::SessionFailed { stage: "mdl" });
        let c = w.counts_at(secs(5));
        assert_eq!(c.started, 2);
        assert_eq!(c.failed, 3);
        assert_eq!(
            c.failures_by_stage,
            vec![("mdl".to_owned(), 2), ("net".to_owned(), 1)]
        );
    }

    #[test]
    fn old_slots_expire_as_time_advances() {
        let w = window();
        w.record_at(secs(1), &TraceEvent::SessionFailed { stage: "mdl" });
        assert_eq!(w.counts_at(secs(2)).failed, 1);
        // 1 s lands in slot 0; the window is 10 s with 2 s slots, so the
        // failure expires once the head has moved 5 slots past it.
        assert_eq!(w.counts_at(secs(9)).failed, 1);
        assert_eq!(w.counts_at(secs(30)).failed, 0);
        assert!(w.counts_at(secs(30)).failures_by_stage.is_empty());
    }

    #[test]
    fn a_long_gap_clears_the_whole_ring() {
        let w = window();
        for s in 0..5 {
            w.record_at(secs(s * 2), &TraceEvent::SessionStarted);
        }
        assert_eq!(w.counts_at(secs(9)).started, 5);
        assert_eq!(w.counts_at(secs(500)).started, 0);
    }

    #[test]
    fn uninteresting_events_are_ignored() {
        let w = window();
        w.record_at(
            secs(1),
            &TraceEvent::Parse {
                variant: "X",
                wire_bytes: 4,
                nanos: 100,
            },
        );
        w.record_at(secs(1), &TraceEvent::QueueDepth { depth: 3 });
        assert_eq!(w.counts_at(secs(1)), {
            WindowCounts {
                window_secs: 10,
                ..WindowCounts::default()
            }
        });
    }

    #[test]
    fn stalls_and_accept_errors_are_windowed() {
        let w = window();
        w.record_at(
            secs(1),
            &TraceEvent::SessionStalled {
                state: "s2",
                waited_ms: 700,
            },
        );
        w.record_at(secs(1), &TraceEvent::AcceptError);
        w.record_at(secs(2), &TraceEvent::SessionAccepted);
        let c = w.counts_at(secs(3));
        assert_eq!(c.stalled, 1);
        assert_eq!(c.accept_errors, 1);
        assert_eq!(c.accepted, 1);
    }

    #[test]
    fn families_round_trip_through_exposition() {
        let w = window();
        w.record_at(secs(1), &TraceEvent::SessionStarted);
        w.record_at(secs(1), &TraceEvent::SessionFailed { stage: "gamma" });
        let snap = crate::Snapshot {
            families: w.families(),
        };
        let back = crate::Snapshot::parse_text(&snap.render_text()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(
            back.value("starlink_window_sessions_started", &[("pair", "Add~Plus")]),
            Some(1)
        );
        assert_eq!(
            back.value(
                "starlink_window_session_failures",
                &[("pair", "Add~Plus"), ("stage", "gamma")]
            ),
            Some(1)
        );
    }

    #[test]
    fn racing_earlier_timestamps_do_not_rewind_the_head() {
        let w = window();
        w.record_at(secs(8), &TraceEvent::SessionStarted);
        // A thread that computed its offset before the head advanced.
        w.record_at(secs(2), &TraceEvent::SessionStarted);
        assert_eq!(w.counts_at(secs(9)).started, 2);
    }
}
