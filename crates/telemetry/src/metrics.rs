//! Lock-free metric primitives: counters, gauges, fixed-bucket
//! histograms. All operations are single atomic instructions (relaxed
//! ordering — metrics tolerate torn cross-metric reads; each individual
//! value is always consistent).

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A sampled value that can move both ways; remembers the largest value
/// ever set so load peaks survive into snapshots.
#[derive(Debug, Default)]
pub struct Gauge {
    current: AtomicU64,
    max: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Gauge {
        Gauge {
            current: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records a new sample.
    pub fn set(&self, value: u64) {
        self.current.store(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// The most recent sample.
    pub fn get(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// The largest sample ever recorded.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }
}

/// Upper bounds (inclusive, in nanoseconds) of the fixed duration
/// histogram buckets; a final implicit `+Inf` bucket catches the rest.
/// Powers of four from 256 ns to ~67 ms cover everything from a probe
/// test to a slow XML compose.
pub const DURATION_BUCKET_BOUNDS_NS: [u64; 10] = [
    256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304, 16_777_216, 67_108_864,
];

const BUCKETS: usize = DURATION_BUCKET_BOUNDS_NS.len() + 1;

/// A fixed-bucket histogram of nanosecond durations. Observing is two
/// relaxed atomic adds plus one bucket increment — no locks, no
/// allocation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram over [`DURATION_BUCKET_BOUNDS_NS`].
    pub const fn new() -> Histogram {
        // `AtomicU64` is not `Copy`; an inline-const block repeats it.
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one duration in nanoseconds.
    pub fn observe(&self, nanos: u64) {
        let idx = DURATION_BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| nanos <= bound)
            .unwrap_or(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed nanoseconds.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time copy (relaxed reads; buckets
    /// observed mid-update may momentarily disagree with `count` by the
    /// in-flight observation).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut cumulative = Vec::with_capacity(BUCKETS);
        let mut running = 0u64;
        for bucket in &self.buckets {
            running += bucket.load(Ordering::Relaxed);
            cumulative.push(running);
        }
        HistogramSnapshot {
            cumulative_counts: cumulative,
            sum: self.sum(),
            count: self.count(),
        }
    }
}

/// Point-in-time histogram state, cumulative per bucket (Prometheus
/// `le`-style: entry *i* counts observations ≤ bound *i*, the final
/// entry counts everything).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Cumulative observation counts, one per bound plus the `+Inf`
    /// bucket.
    pub cumulative_counts: Vec<u64>,
    /// Sum of observed nanoseconds.
    pub sum: u64,
    /// Total observations.
    pub count: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_tracks_current_and_max() {
        let g = Gauge::new();
        g.set(3);
        g.set(9);
        g.set(4);
        assert_eq!(g.get(), 4);
        assert_eq!(g.max(), 9);
    }

    #[test]
    fn histogram_buckets_cumulate() {
        let h = Histogram::new();
        h.observe(100); // ≤ 256
        h.observe(300); // ≤ 1024
        h.observe(u64::MAX / 2); // +Inf bucket
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.cumulative_counts[0], 1);
        assert_eq!(snap.cumulative_counts[1], 2);
        assert_eq!(*snap.cumulative_counts.last().unwrap(), 3);
        assert_eq!(snap.sum, 100 + 300 + u64::MAX / 2);
    }

    #[test]
    fn histogram_boundary_is_inclusive() {
        let h = Histogram::new();
        h.observe(256);
        assert_eq!(h.snapshot().cumulative_counts[0], 1);
    }
}
