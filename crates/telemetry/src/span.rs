//! Per-session causal tracing: span identity, the session tracer, and
//! the bounded buffer of completed session traces.
//!
//! PR 3's metrics answer "how many / how fast"; this module answers
//! *which* — which client message, on which color, passed through which
//! γ-translation and came out on the other side. A driver mints one
//! [`SessionTraceId`] per client connection; the session engine opens
//! [`SpanId`]s around each phase (receive, γ-translate, send) and every
//! [`TraceEvent`] it emits travels with a [`TraceMeta`]: the session id,
//! a monotonic timestamp, and the span it belongs to plus that span's
//! parent — enough to rebuild the causal tree from a flat event stream.
//!
//! Tracing is pay-for-use: an emitting layer only constructs metadata
//! when its sink opts in via [`TelemetrySink::wants_spans`], so the
//! no-op-sink deployment still costs one branch per instrumentation
//! site.

use crate::event::TraceEvent;
use crate::sink::TelemetrySink;
use crate::snapshot::Snapshot;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Identity of one mediated client connection's trace. Minted from a
/// process-global counter, so ids are unique across every host in the
/// process and strictly increasing in accept order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionTraceId(pub u64);

static NEXT_SESSION: AtomicU64 = AtomicU64::new(1);

impl SessionTraceId {
    /// Mints the next process-unique id.
    pub fn next() -> SessionTraceId {
        SessionTraceId(NEXT_SESSION.fetch_add(1, Ordering::Relaxed))
    }
}

/// Identity of one span within a session trace. `SpanId::NONE` (zero)
/// marks the absence of a parent — events recorded before any span opens
/// (e.g. the accept marker) carry it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span: no enclosing span.
    pub const NONE: SpanId = SpanId(0);
}

/// Causal metadata attached to a traced event: which session, when
/// (monotonic nanoseconds since the session tracer was minted), and
/// where in the span tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceMeta {
    /// The session the event belongs to.
    pub session: SessionTraceId,
    /// Monotonic nanoseconds since the session's tracer was minted.
    pub ts_ns: u64,
    /// The span the event belongs to ([`SpanId::NONE`] outside any span).
    pub span: SpanId,
    /// The parent of `span` ([`SpanId::NONE`] for root spans).
    pub parent: SpanId,
}

/// Open-span state returned by [`SessionTracer::open`]; hand it back to
/// [`SessionTracer::close`] when the phase ends. Not `Drop`-based: the
/// tracer needs the sink to record the close, and keeping the guard
/// plain data lets the session core store it across park/resume cycles.
#[derive(Debug)]
pub struct SpanGuard {
    /// The opened span.
    pub id: SpanId,
    /// Its parent (restored as current on close).
    pub parent: SpanId,
    prev_parent: SpanId,
    name: &'static str,
}

impl SpanGuard {
    /// The span's name (as recorded in the open event).
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Per-session trace context: mints span ids, stamps monotonic
/// timestamps, and forwards events to a sink with their [`TraceMeta`].
///
/// One tracer lives for one client connection (it survives traversal
/// restarts, so successive traversals on a kept-alive connection share a
/// session id while each forms its own root span). Interior state is
/// atomic, so a `&SessionTracer` can be shared with short-lived adapter
/// sinks (see [`SpanScopedSink`]).
#[derive(Debug)]
pub struct SessionTracer {
    session: SessionTraceId,
    epoch: Instant,
    next_span: AtomicU64,
    current: AtomicU64,
    current_parent: AtomicU64,
}

impl SessionTracer {
    /// A tracer for a freshly minted session id, with its monotonic
    /// epoch at now.
    pub fn new() -> SessionTracer {
        SessionTracer::with_session(SessionTraceId::next())
    }

    /// A tracer for a caller-chosen session id (deterministic tests).
    pub fn with_session(session: SessionTraceId) -> SessionTracer {
        SessionTracer {
            session,
            epoch: Instant::now(),
            next_span: AtomicU64::new(1),
            current: AtomicU64::new(SpanId::NONE.0),
            current_parent: AtomicU64::new(SpanId::NONE.0),
        }
    }

    /// Mints a tracer when `sink` consumes spans or message snapshots
    /// (and is enabled at all); `None` otherwise. The shape emitting
    /// layers use to keep the untraced path branch-cheap.
    pub fn for_sink(sink: &dyn TelemetrySink) -> Option<SessionTracer> {
        (sink.enabled() && (sink.wants_spans() || sink.wants_messages())).then(SessionTracer::new)
    }

    /// The session this tracer stamps.
    pub fn session(&self) -> SessionTraceId {
        self.session
    }

    /// Monotonic nanoseconds since the tracer was minted.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn meta(&self) -> TraceMeta {
        TraceMeta {
            session: self.session,
            ts_ns: self.now_ns(),
            span: SpanId(self.current.load(Ordering::Relaxed)),
            parent: SpanId(self.current_parent.load(Ordering::Relaxed)),
        }
    }

    /// Records one event inside the current span.
    pub fn record(&self, sink: &dyn TelemetrySink, event: &TraceEvent<'_>) {
        sink.record_traced(&self.meta(), event);
    }

    /// Opens a named child span of the current span and makes it
    /// current. The open is recorded as [`TraceEvent::SpanOpened`].
    pub fn open(&self, sink: &dyn TelemetrySink, name: &'static str) -> SpanGuard {
        let id = SpanId(self.next_span.fetch_add(1, Ordering::Relaxed));
        let parent = SpanId(self.current.load(Ordering::Relaxed));
        let prev_parent = SpanId(self.current_parent.load(Ordering::Relaxed));
        sink.record_traced(
            &TraceMeta {
                session: self.session,
                ts_ns: self.now_ns(),
                span: id,
                parent,
            },
            &TraceEvent::SpanOpened { name },
        );
        self.current.store(id.0, Ordering::Relaxed);
        self.current_parent.store(parent.0, Ordering::Relaxed);
        SpanGuard {
            id,
            parent,
            prev_parent,
            name,
        }
    }

    /// Closes a span opened with [`SessionTracer::open`], restoring its
    /// parent as current. Recorded as [`TraceEvent::SpanClosed`].
    pub fn close(&self, sink: &dyn TelemetrySink, guard: SpanGuard) {
        sink.record_traced(
            &TraceMeta {
                session: self.session,
                ts_ns: self.now_ns(),
                span: guard.id,
                parent: guard.parent,
            },
            &TraceEvent::SpanClosed { name: guard.name },
        );
        self.current.store(guard.parent.0, Ordering::Relaxed);
        self.current_parent
            .store(guard.prev_parent.0, Ordering::Relaxed);
    }
}

impl Default for SessionTracer {
    fn default() -> Self {
        SessionTracer::new()
    }
}

/// Adapter lending a tracer's metadata to code that only knows the
/// plain [`TelemetrySink`] contract (the MTL interpreter's
/// `execute_traced`, the codec's probe events): `record` calls become
/// `record_traced` calls stamped with the session's current span.
pub struct SpanScopedSink<'a> {
    tracer: &'a SessionTracer,
    inner: &'a dyn TelemetrySink,
}

impl<'a> SpanScopedSink<'a> {
    /// Scopes `inner` to `tracer`'s current span.
    pub fn new(tracer: &'a SessionTracer, inner: &'a dyn TelemetrySink) -> SpanScopedSink<'a> {
        SpanScopedSink { tracer, inner }
    }
}

impl TelemetrySink for SpanScopedSink<'_> {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn record(&self, event: &TraceEvent<'_>) {
        self.tracer.record(self.inner, event);
    }

    fn record_traced(&self, meta: &TraceMeta, event: &TraceEvent<'_>) {
        self.inner.record_traced(meta, event);
    }

    fn snapshot(&self) -> Option<Snapshot> {
        self.inner.snapshot()
    }

    fn wants_spans(&self) -> bool {
        self.inner.wants_spans()
    }

    fn wants_messages(&self) -> bool {
        self.inner.wants_messages()
    }
}

/// How a retained trace record relates to time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceRecordKind {
    /// A span began at `meta.ts_ns`.
    SpanOpen,
    /// A span ended at `meta.ts_ns`.
    SpanClose,
    /// A point event.
    Instant,
    /// A phase that finished at `meta.ts_ns` after running for the
    /// given nanoseconds (parse, compose, γ, translate).
    Timed(u64),
}

/// One retained, owned trace record: the event normalised to a name, a
/// human-readable detail line, and its timing kind.
///
/// Message payloads are deliberately *not* retained here — field values
/// go to the [`crate::FlightRecorder`], which owns redaction; the trace
/// buffer keeps only structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Causal metadata stamped at emission.
    pub meta: TraceMeta,
    /// Timing kind.
    pub kind: TraceRecordKind,
    /// Normalised event name (stable, kebab-case).
    pub name: String,
    /// Human-readable detail (state names, byte counts, …).
    pub detail: String,
}

impl TraceRecord {
    /// Normalises one event into an owned record.
    pub fn from_event(meta: TraceMeta, event: &TraceEvent<'_>) -> TraceRecord {
        use TraceRecordKind::{Instant, SpanClose, SpanOpen, Timed};
        let (kind, name, detail) = match *event {
            TraceEvent::SpanOpened { name } => (SpanOpen, name.to_owned(), String::new()),
            TraceEvent::SpanClosed { name } => (SpanClose, name.to_owned(), String::new()),
            TraceEvent::SessionStarted => (Instant, "session-started".into(), String::new()),
            TraceEvent::SessionFinished {
                final_state,
                exchanges,
            } => (
                Instant,
                "session-finished".into(),
                format!("final_state={final_state} exchanges={exchanges}"),
            ),
            TraceEvent::SessionFailed { stage } => {
                (Instant, "session-failed".into(), format!("stage={stage}"))
            }
            TraceEvent::SessionAccepted => (Instant, "accepted".into(), String::new()),
            TraceEvent::Transition {
                from,
                to,
                kind,
                color,
            } => (
                Instant,
                "transition".into(),
                format!("{from} -> {to} ({}, color {color})", kind.label()),
            ),
            TraceEvent::GammaExecuted {
                from,
                to,
                statements,
                nanos,
            } => (
                Timed(nanos),
                "gamma".into(),
                format!("{from} -> {to} ({statements} statements)"),
            ),
            TraceEvent::Translate { statements, nanos } => (
                Timed(nanos),
                "translate".into(),
                format!("{statements} statements"),
            ),
            TraceEvent::Parse {
                variant,
                wire_bytes,
                nanos,
            } => (
                Timed(nanos),
                "parse".into(),
                format!("{variant} ({wire_bytes} B)"),
            ),
            TraceEvent::Compose {
                variant,
                wire_bytes,
                nanos,
            } => (
                Timed(nanos),
                "compose".into(),
                format!("{variant} ({wire_bytes} B)"),
            ),
            TraceEvent::WireIn { color, bytes } => (
                Instant,
                "wire-in".into(),
                format!("color {color}, {bytes} B"),
            ),
            TraceEvent::WireOut { color, bytes } => (
                Instant,
                "wire-out".into(),
                format!("color {color}, {bytes} B"),
            ),
            TraceEvent::MessageSnapshot { stage, message, .. } => (
                Instant,
                "message".into(),
                // Field values stay out of the trace buffer; see the
                // flight recorder for (redacted) payloads.
                format!("{stage}: {message}"),
            ),
            TraceEvent::MonitorViolation { state, action } => (
                Instant,
                "monitor-violation".into(),
                format!("state {state}, action {action}"),
            ),
            TraceEvent::DispatchProbe { outcome } => {
                (Instant, "dispatch-probe".into(), outcome.label().to_owned())
            }
            TraceEvent::ServiceConnected { color } => (
                Instant,
                "service-connected".into(),
                format!("color {color}"),
            ),
            TraceEvent::WireBufReused => (Instant, "wire-buf-reused".into(), String::new()),
            TraceEvent::WireBufAllocated => (Instant, "wire-buf-allocated".into(), String::new()),
            TraceEvent::TransportBytesIn { bytes } => {
                (Instant, "transport-bytes-in".into(), format!("{bytes} B"))
            }
            TraceEvent::TransportBytesOut { bytes } => {
                (Instant, "transport-bytes-out".into(), format!("{bytes} B"))
            }
            TraceEvent::TransportFrameIn { bytes } => {
                (Instant, "transport-frame-in".into(), format!("{bytes} B"))
            }
            TraceEvent::AcceptError => (Instant, "accept-error".into(), String::new()),
            TraceEvent::WorkerPanic => (Instant, "worker-panic".into(), String::new()),
            TraceEvent::ActiveSessions { count } => {
                (Instant, "active-sessions".into(), format!("{count}"))
            }
            TraceEvent::QueueDepth { depth } => (Instant, "queue-depth".into(), format!("{depth}")),
            TraceEvent::SessionStalled { state, waited_ms } => (
                Instant,
                "session-stalled".into(),
                format!("state {state}, waited {waited_ms} ms"),
            ),
            TraceEvent::StalledSessions { count } => {
                (Instant, "stalled-sessions".into(), format!("{count}"))
            }
            TraceEvent::StateDwell { state, nanos } => {
                (Timed(nanos), "state-dwell".into(), format!("state {state}"))
            }
        };
        TraceRecord {
            meta,
            kind,
            name,
            detail,
        }
    }
}

/// One completed session trace: every traced record of one traversal on
/// one client connection, in emission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionTrace {
    /// The session's trace id.
    pub session: SessionTraceId,
    /// Records in emission order (timestamps are monotonic per session).
    pub records: Vec<TraceRecord>,
}

impl SessionTrace {
    /// The names of every span opened in this trace, in open order.
    pub fn span_names(&self) -> Vec<&str> {
        self.records
            .iter()
            .filter(|r| r.kind == TraceRecordKind::SpanOpen)
            .map(|r| r.name.as_str())
            .collect()
    }
}

/// Default number of completed traces the buffer retains.
const DEFAULT_TRACE_CAPACITY: usize = 16;
/// Default per-trace record bound (protects against a runaway session).
const DEFAULT_RECORDS_PER_TRACE: usize = 1024;
/// In-flight sessions tolerated before the oldest is evicted (leaked
/// sessions — e.g. a driver that died without closing the root span —
/// must not pin memory forever).
const MAX_ACTIVE_SESSIONS: usize = 1024;

#[derive(Default)]
struct TraceBufferState {
    active: HashMap<u64, Vec<TraceRecord>>,
    completed: VecDeque<SessionTrace>,
    truncated: u64,
}

/// A [`TelemetrySink`] retaining the last N *completed* session traces
/// (a trace completes when its root span closes). Per-trace record
/// count is bounded; overflowing records are dropped and counted.
///
/// Untraced `record` calls (no session metadata) are ignored — this
/// sink only makes sense downstream of a [`SessionTracer`].
pub struct TraceBuffer {
    capacity: usize,
    records_per_trace: usize,
    state: Mutex<TraceBufferState>,
}

impl TraceBuffer {
    /// A buffer retaining the default number of completed traces.
    pub fn new() -> TraceBuffer {
        TraceBuffer::with_capacity(DEFAULT_TRACE_CAPACITY, DEFAULT_RECORDS_PER_TRACE)
    }

    /// A buffer retaining up to `traces` completed traces of up to
    /// `records_per_trace` records each.
    pub fn with_capacity(traces: usize, records_per_trace: usize) -> TraceBuffer {
        TraceBuffer {
            capacity: traces.max(1),
            records_per_trace: records_per_trace.max(16),
            state: Mutex::new(TraceBufferState::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceBufferState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Completed traces, oldest first.
    pub fn traces(&self) -> Vec<SessionTrace> {
        self.lock().completed.iter().cloned().collect()
    }

    /// The most recently completed trace.
    pub fn latest(&self) -> Option<SessionTrace> {
        self.lock().completed.back().cloned()
    }

    /// The most recently completed trace of the given session.
    pub fn trace(&self, session: SessionTraceId) -> Option<SessionTrace> {
        self.lock()
            .completed
            .iter()
            .rev()
            .find(|t| t.session == session)
            .cloned()
    }

    /// Sessions currently being recorded (root span still open).
    pub fn active_sessions(&self) -> usize {
        self.lock().active.len()
    }

    /// Records dropped because a trace hit its per-trace record bound.
    pub fn truncated_records(&self) -> u64 {
        self.lock().truncated
    }
}

impl Default for TraceBuffer {
    fn default() -> Self {
        TraceBuffer::new()
    }
}

impl TelemetrySink for TraceBuffer {
    fn record(&self, _event: &TraceEvent<'_>) {
        // Session-less events carry no causal metadata; aggregate sinks
        // (the Recorder) own them.
    }

    fn record_traced(&self, meta: &TraceMeta, event: &TraceEvent<'_>) {
        let record = TraceRecord::from_event(*meta, event);
        let root_closed =
            record.kind == TraceRecordKind::SpanClose && record.meta.parent == SpanId::NONE;
        let mut state = self.lock();
        let records = state.active.entry(meta.session.0).or_default();
        if records.len() < self.records_per_trace {
            records.push(record);
        } else {
            state.truncated += 1;
        }
        if root_closed {
            let records = state.active.remove(&meta.session.0).unwrap_or_default();
            if state.completed.len() == self.capacity {
                state.completed.pop_front();
            }
            state.completed.push_back(SessionTrace {
                session: meta.session,
                records,
            });
        } else if state.active.len() > MAX_ACTIVE_SESSIONS {
            // Session ids are monotonic: the smallest key is the oldest.
            if let Some(&oldest) = state.active.keys().min() {
                state.active.remove(&oldest);
            }
        }
    }

    fn wants_spans(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traced_session(buffer: &TraceBuffer, exchanges: usize) -> SessionTraceId {
        let tracer = SessionTracer::new();
        let root = tracer.open(buffer, "session");
        tracer.record(buffer, &TraceEvent::SessionStarted);
        let recv = tracer.open(buffer, "receive");
        tracer.record(
            buffer,
            &TraceEvent::Parse {
                variant: "GIOPRequest",
                wire_bytes: 64,
                nanos: 1_000,
            },
        );
        tracer.close(buffer, recv);
        tracer.record(
            buffer,
            &TraceEvent::SessionFinished {
                final_state: "s9",
                exchanges,
            },
        );
        tracer.close(buffer, root);
        tracer.session()
    }

    #[test]
    fn spans_nest_and_complete_on_root_close() {
        let buffer = TraceBuffer::new();
        let session = traced_session(&buffer, 3);
        assert_eq!(buffer.active_sessions(), 0);
        let trace = buffer.trace(session).expect("trace completed");
        assert_eq!(trace.span_names(), vec!["session", "receive"]);
        // The receive span's parent is the session span.
        let spans: Vec<&TraceRecord> = trace
            .records
            .iter()
            .filter(|r| r.kind == TraceRecordKind::SpanOpen)
            .collect();
        assert_eq!(spans[0].meta.parent, SpanId::NONE);
        assert_eq!(spans[1].meta.parent, spans[0].meta.span);
        // The parse event sits inside the receive span.
        let parse = trace.records.iter().find(|r| r.name == "parse").unwrap();
        assert_eq!(parse.meta.span, spans[1].meta.span);
        assert_eq!(parse.kind, TraceRecordKind::Timed(1_000));
        // Timestamps are monotonic.
        let ts: Vec<u64> = trace.records.iter().map(|r| r.meta.ts_ns).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "non-monotonic: {ts:?}");
    }

    #[test]
    fn buffer_is_bounded_by_completed_traces() {
        let buffer = TraceBuffer::with_capacity(2, 64);
        let first = traced_session(&buffer, 1);
        traced_session(&buffer, 2);
        traced_session(&buffer, 3);
        assert_eq!(buffer.traces().len(), 2);
        assert!(buffer.trace(first).is_none(), "oldest trace evicted");
    }

    #[test]
    fn per_trace_record_bound_truncates() {
        let buffer = TraceBuffer::with_capacity(2, 16);
        let tracer = SessionTracer::new();
        let root = tracer.open(&buffer, "session");
        for _ in 0..64 {
            tracer.record(&buffer, &TraceEvent::WireBufReused);
        }
        tracer.close(&buffer, root);
        let trace = buffer.latest().unwrap();
        assert_eq!(trace.records.len(), 16);
        assert!(buffer.truncated_records() > 0);
    }

    #[test]
    fn plain_records_are_ignored() {
        let buffer = TraceBuffer::new();
        buffer.record(&TraceEvent::SessionStarted);
        assert_eq!(buffer.active_sessions(), 0);
        assert!(buffer.traces().is_empty());
    }

    #[test]
    fn span_scoped_sink_stamps_metadata() {
        let buffer = TraceBuffer::new();
        let tracer = SessionTracer::new();
        let root = tracer.open(&buffer, "session");
        {
            let scoped = SpanScopedSink::new(&tracer, &buffer);
            scoped.record(&TraceEvent::Translate {
                statements: 2,
                nanos: 500,
            });
        }
        tracer.close(&buffer, root);
        let trace = buffer.latest().unwrap();
        let translate = trace
            .records
            .iter()
            .find(|r| r.name == "translate")
            .unwrap();
        assert_eq!(translate.meta.span, trace.records[0].meta.span);
    }
}
