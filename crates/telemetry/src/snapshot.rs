//! Point-in-time metric aggregates and their text exposition.
//!
//! The format is the Prometheus text exposition subset the workspace
//! needs: `# TYPE` comments, `name{label="value"} 123` samples, and
//! histogram `_bucket`/`_sum`/`_count` series with cumulative `le`
//! buckets. [`Snapshot::render_text`] and [`Snapshot::parse_text`] are
//! exact inverses (round-trip tested), so the format can be treated as a
//! stable interchange surface by the `starlink stats` CLI and by external
//! scrapers.

use std::fmt;

/// The exposition type of a metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Cumulative fixed-bucket histogram.
    Histogram,
}

impl MetricKind {
    fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One sample row: label set plus value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Label pairs in render order (possibly empty).
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: u64,
}

impl Sample {
    /// An unlabelled sample.
    pub fn plain(value: u64) -> Sample {
        Sample {
            labels: Vec::new(),
            value,
        }
    }

    /// A sample with one label.
    pub fn labelled(key: &str, value_label: &str, value: u64) -> Sample {
        Sample {
            labels: vec![(key.to_owned(), value_label.to_owned())],
            value,
        }
    }
}

/// A named metric and its samples.
///
/// For histograms, `samples` holds the cumulative `le` buckets (label
/// `le`, values `"256"`, …, `"+Inf"`) and `sum`/`count` carry the
/// `_sum`/`_count` series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricFamily {
    /// Metric name (exposition identifier).
    pub name: String,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// The sample rows.
    pub samples: Vec<Sample>,
    /// Histogram `_sum` (nanoseconds for duration histograms).
    pub sum: Option<u64>,
    /// Histogram `_count`.
    pub count: Option<u64>,
}

impl MetricFamily {
    /// A counter/gauge family.
    pub fn simple(name: &str, kind: MetricKind, samples: Vec<Sample>) -> MetricFamily {
        MetricFamily {
            name: name.to_owned(),
            kind,
            samples,
            sum: None,
            count: None,
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) of a histogram family
    /// from its cumulative `le` buckets, interpolating linearly within
    /// the bucket the quantile falls into (the standard Prometheus
    /// `histogram_quantile` estimate). The `+Inf` bucket has no upper
    /// edge, so a quantile landing there is clamped to the largest
    /// finite bound.
    ///
    /// Returns `None` for non-histograms, empty histograms, or a `q`
    /// outside `0.0 ..= 1.0`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.kind != MetricKind::Histogram || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let buckets: Vec<(f64, u64)> = self
            .samples
            .iter()
            .filter_map(|s| {
                let le = s
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.as_str())?;
                let bound = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().ok()?
                };
                Some((bound, s.value))
            })
            .collect();
        let total = buckets.last().map(|&(_, c)| c).filter(|&c| c > 0)?;
        let rank = q * total as f64;
        let mut prev_bound = 0.0;
        let mut prev_cumulative = 0u64;
        for &(bound, cumulative) in &buckets {
            if (cumulative as f64) >= rank {
                if bound.is_infinite() {
                    // No upper edge to interpolate towards; report the
                    // last finite bound as a lower-bound estimate.
                    return Some(prev_bound);
                }
                let in_bucket = (cumulative - prev_cumulative) as f64;
                if in_bucket == 0.0 {
                    return Some(bound);
                }
                let fraction = (rank - prev_cumulative as f64) / in_bucket;
                return Some(prev_bound + (bound - prev_bound) * fraction);
            }
            prev_bound = bound;
            prev_cumulative = cumulative;
        }
        None
    }
}

/// A point-in-time aggregate of every metric a sink maintains.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Families in stable render order.
    pub families: Vec<MetricFamily>,
}

/// A malformed exposition document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpositionError {
    /// 1-based line the error was found at.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ExpositionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "exposition line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ExpositionError {}

fn escape_label(value: &str, out: &mut String) {
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn unescape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    let mut chars = value.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn render_sample(name: &str, sample: &Sample, out: &mut String) {
    out.push_str(name);
    if !sample.labels.is_empty() {
        out.push('{');
        for (i, (key, value)) in sample.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(key);
            out.push_str("=\"");
            escape_label(value, out);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&sample.value.to_string());
    out.push('\n');
}

impl Snapshot {
    /// Renders the snapshot in the Prometheus text exposition format.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for family in &self.families {
            out.push_str("# TYPE ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(family.kind.label());
            out.push('\n');
            match family.kind {
                MetricKind::Histogram => {
                    let bucket_name = format!("{}_bucket", family.name);
                    for sample in &family.samples {
                        render_sample(&bucket_name, sample, &mut out);
                    }
                    let sum = Sample::plain(family.sum.unwrap_or(0));
                    render_sample(&format!("{}_sum", family.name), &sum, &mut out);
                    let count = Sample::plain(family.count.unwrap_or(0));
                    render_sample(&format!("{}_count", family.name), &count, &mut out);
                }
                _ => {
                    for sample in &family.samples {
                        render_sample(&family.name, sample, &mut out);
                    }
                }
            }
        }
        out
    }

    /// Parses a document produced by [`Snapshot::render_text`] back into
    /// a [`Snapshot`]. Exact inverse: `parse_text(render_text(s)) == s`.
    ///
    /// # Errors
    ///
    /// [`ExpositionError`] on malformed lines, samples preceding their
    /// `# TYPE` header, or sample names not matching the open family.
    pub fn parse_text(text: &str) -> Result<Snapshot, ExpositionError> {
        let mut families: Vec<MetricFamily> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let err = |message: String| ExpositionError {
                line: line_no,
                message,
            };
            let line = raw.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix('#') {
                let mut parts = comment.split_whitespace();
                if parts.next() != Some("TYPE") {
                    continue; // other comments (e.g. HELP) are ignored
                }
                let name = parts
                    .next()
                    .ok_or_else(|| err("TYPE line missing metric name".into()))?;
                let kind = match parts.next() {
                    Some("counter") => MetricKind::Counter,
                    Some("gauge") => MetricKind::Gauge,
                    Some("histogram") => MetricKind::Histogram,
                    other => return Err(err(format!("unknown metric kind {other:?}"))),
                };
                families.push(MetricFamily {
                    name: name.to_owned(),
                    kind,
                    samples: Vec::new(),
                    sum: None,
                    count: None,
                });
                continue;
            }
            let (name_and_labels, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| err("sample line has no value".into()))?;
            let value: u64 = value
                .parse()
                .map_err(|e| err(format!("bad sample value `{value}`: {e}")))?;
            let (name, labels) = parse_labels(name_and_labels).map_err(&err)?;
            let family = families
                .last_mut()
                .ok_or_else(|| err(format!("sample `{name}` before any # TYPE header")))?;
            match family.kind {
                MetricKind::Histogram => {
                    if name == format!("{}_bucket", family.name) {
                        family.samples.push(Sample { labels, value });
                    } else if name == format!("{}_sum", family.name) {
                        family.sum = Some(value);
                    } else if name == format!("{}_count", family.name) {
                        family.count = Some(value);
                    } else {
                        return Err(err(format!(
                            "sample `{name}` does not belong to histogram `{}`",
                            family.name
                        )));
                    }
                }
                _ => {
                    if name != family.name {
                        return Err(err(format!(
                            "sample `{name}` does not belong to family `{}`",
                            family.name
                        )));
                    }
                    family.samples.push(Sample { labels, value });
                }
            }
        }
        Ok(Snapshot { families })
    }

    /// The family with this name, if present.
    pub fn family(&self, name: &str) -> Option<&MetricFamily> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Sum of all sample values of a counter/gauge family (0 when the
    /// family is absent). For labelled counters this is the total across
    /// label sets.
    pub fn counter(&self, name: &str) -> u64 {
        self.family(name)
            .map(|f| f.samples.iter().map(|s| s.value).sum())
            .unwrap_or(0)
    }

    /// The value of the sample carrying exactly these labels.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.family(name)?
            .samples
            .iter()
            .find(|s| {
                s.labels.len() == labels.len()
                    && s.labels
                        .iter()
                        .zip(labels)
                        .all(|((k, v), (lk, lv))| k == lk && v == lv)
            })
            .map(|s| s.value)
    }
}

/// Splits `name{k="v",…}` into the name and its label pairs.
fn parse_labels(input: &str) -> Result<(String, Vec<(String, String)>), String> {
    let Some(brace) = input.find('{') else {
        return Ok((input.to_owned(), Vec::new()));
    };
    let name = input[..brace].to_owned();
    let rest = input[brace + 1..]
        .strip_suffix('}')
        .ok_or_else(|| format!("unterminated label set in `{input}`"))?;
    let mut labels = Vec::new();
    let mut remaining = rest;
    while !remaining.is_empty() {
        let eq = remaining
            .find("=\"")
            .ok_or_else(|| format!("label without `=\"` in `{input}`"))?;
        let key = remaining[..eq].to_owned();
        let mut value_end = None;
        let value_start = eq + 2;
        let bytes = remaining.as_bytes();
        let mut i = value_start;
        while i < remaining.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => {
                    value_end = Some(i);
                    break;
                }
                _ => i += 1,
            }
        }
        let value_end =
            value_end.ok_or_else(|| format!("unterminated label value in `{input}`"))?;
        labels.push((key, unescape_label(&remaining[value_start..value_end])));
        remaining = &remaining[value_end + 1..];
        remaining = remaining.strip_prefix(',').unwrap_or(remaining);
    }
    Ok((name, labels))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            families: vec![
                MetricFamily::simple(
                    "starlink_sessions_started_total",
                    MetricKind::Counter,
                    vec![Sample::plain(7)],
                ),
                MetricFamily::simple(
                    "starlink_transitions_total",
                    MetricKind::Counter,
                    vec![
                        Sample::labelled("kind", "receive", 3),
                        Sample::labelled("kind", "send", 4),
                    ],
                ),
                MetricFamily {
                    name: "starlink_parse_duration_ns".to_owned(),
                    kind: MetricKind::Histogram,
                    samples: vec![
                        Sample::labelled("le", "256", 1),
                        Sample::labelled("le", "+Inf", 3),
                    ],
                    sum: Some(123_456),
                    count: Some(3),
                },
            ],
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let snap = sample_snapshot();
        let text = snap.render_text();
        let back = Snapshot::parse_text(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn accessors_find_values() {
        let snap = sample_snapshot();
        assert_eq!(snap.counter("starlink_sessions_started_total"), 7);
        assert_eq!(snap.counter("starlink_transitions_total"), 7);
        assert_eq!(
            snap.value("starlink_transitions_total", &[("kind", "send")]),
            Some(4)
        );
        assert_eq!(snap.counter("nope"), 0);
    }

    #[test]
    fn label_escaping_round_trips() {
        let snap = Snapshot {
            families: vec![MetricFamily::simple(
                "weird",
                MetricKind::Gauge,
                vec![Sample::labelled("k", "a\"b\\c\nd", 1)],
            )],
        };
        let back = Snapshot::parse_text(&snap.render_text()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Snapshot::parse_text("no_type_header 3").is_err());
        assert!(Snapshot::parse_text("# TYPE x counter\nx notanumber").is_err());
        assert!(Snapshot::parse_text("# TYPE x widget\n").is_err());
        assert!(Snapshot::parse_text("# TYPE x counter\ny 3").is_err());
        assert!(Snapshot::parse_text("# TYPE x histogram\nx_middle 3").is_err());
    }

    #[test]
    fn help_comments_are_ignored() {
        let text = "# HELP x whatever\n# TYPE x counter\nx 1\n";
        let snap = Snapshot::parse_text(text).unwrap();
        assert_eq!(snap.counter("x"), 1);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Snapshot::default();
        let text = snap.render_text();
        assert!(text.is_empty());
        let back = Snapshot::parse_text(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn utf8_label_values_round_trip() {
        let snap = Snapshot {
            families: vec![MetricFamily::simple(
                "utf8",
                MetricKind::Gauge,
                vec![
                    Sample::labelled("op", "photos.getPièces", 2),
                    Sample::labelled("op", "γ-переход→完了", 5),
                ],
            )],
        };
        let back = Snapshot::parse_text(&snap.render_text()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.value("utf8", &[("op", "γ-переход→完了")]), Some(5));
    }

    #[test]
    fn quote_and_backslash_heavy_labels_round_trip() {
        // Every adjacency the escaper must keep apart: backslash before
        // quote, double backslash, trailing backslash, literal `\n` text
        // vs a real newline.
        for value in [
            r#"\""#,
            r#"\\"#,
            "ends-with\\",
            r#"literal\n"#,
            "real\nnewline",
        ] {
            let snap = Snapshot {
                families: vec![MetricFamily::simple(
                    "edge",
                    MetricKind::Counter,
                    vec![Sample::labelled("v", value, 1)],
                )],
            };
            let back = Snapshot::parse_text(&snap.render_text()).unwrap();
            assert_eq!(back, snap, "value {value:?} did not round-trip");
        }
    }

    fn duration_histogram(counts: &[(&str, u64)], count: u64) -> MetricFamily {
        MetricFamily {
            name: "h".to_owned(),
            kind: MetricKind::Histogram,
            samples: counts
                .iter()
                .map(|&(le, v)| Sample::labelled("le", le, v))
                .collect(),
            sum: Some(0),
            count: Some(count),
        }
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        // 10 observations ≤1000, another 10 in (1000, 2000].
        let h = duration_histogram(&[("1000", 10), ("2000", 20), ("+Inf", 20)], 20);
        assert_eq!(h.quantile(0.5), Some(1000.0));
        // p75: rank 15, bucket (1000, 2000] holds ranks 11..=20 →
        // halfway through the bucket.
        assert_eq!(h.quantile(0.75), Some(1500.0));
        // First bucket interpolates from 0.
        assert_eq!(h.quantile(0.25), Some(500.0));
    }

    #[test]
    fn quantile_clamps_at_inf_and_rejects_empty() {
        let h = duration_histogram(&[("1000", 10), ("+Inf", 12)], 12);
        // p99 lands in +Inf: clamped to the largest finite bound.
        assert_eq!(h.quantile(0.99), Some(1000.0));
        let empty = duration_histogram(&[("1000", 0), ("+Inf", 0)], 0);
        assert_eq!(empty.quantile(0.5), None);
        let counter = MetricFamily::simple("c", MetricKind::Counter, vec![Sample::plain(3)]);
        assert_eq!(counter.quantile(0.5), None);
        assert_eq!(h.quantile(1.5), None);
    }
}
