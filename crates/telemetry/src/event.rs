//! The trace-event taxonomy.
//!
//! Events borrow their string data (`&'a str`) so constructing one on the
//! hot path never allocates; sinks that need to retain an event own the
//! copy themselves (see [`crate::Recorder`]'s ring buffer).

/// How a compiled dispatch probe fared for one `parse` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// The probe admitted a variant and that variant parsed the wire.
    Hit,
    /// The probe rejected a variant without running its parser.
    Miss,
    /// No probed variant parsed; the codec fell back to the exhaustive
    /// try-all loop.
    Fallback,
}

impl ProbeOutcome {
    /// Stable label used in metric exposition.
    pub fn label(self) -> &'static str {
        match self {
            ProbeOutcome::Hit => "hit",
            ProbeOutcome::Miss => "miss",
            ProbeOutcome::Fallback => "fallback",
        }
    }
}

/// The kind of automaton transition an engine crossed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionKind {
    /// A receiving state consumed a matching message.
    Receive,
    /// A sending state emitted its message.
    Send,
    /// A no-action (γ) translation state.
    Gamma,
}

impl TransitionKind {
    /// Stable label used in metric exposition.
    pub fn label(self) -> &'static str {
        match self {
            TransitionKind::Receive => "receive",
            TransitionKind::Send => "send",
            TransitionKind::Gamma => "gamma",
        }
    }
}

/// One structured trace event, emitted by an instrumented layer into a
/// [`crate::TelemetrySink`].
///
/// Durations are nanoseconds (`u64` wraps after ~584 years of one span).
/// The taxonomy is `#[non_exhaustive]`: sinks must tolerate events they
/// do not know (typically by ignoring them).
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub enum TraceEvent<'a> {
    /// An automaton traversal began (per traversal, including restarts
    /// on a kept-alive connection).
    SessionStarted,
    /// A traversal reached an accepting state.
    SessionFinished {
        /// The accepting state.
        final_state: &'a str,
        /// Application messages exchanged during the traversal.
        exchanges: usize,
    },
    /// A traversal aborted with an engine, codec, translation or I/O
    /// error.
    SessionFailed {
        /// Coarse failure stage (an error-variant label such as `"mdl"`,
        /// `"net"`, `"unexpected-message"`).
        stage: &'a str,
    },
    /// The engine crossed an automaton transition.
    Transition {
        /// Source state.
        from: &'a str,
        /// Target state.
        to: &'a str,
        /// Receive / send / γ.
        kind: TransitionKind,
        /// The color driving the transition (for γ-transitions at
        /// bi-colored states: the color of the source state's first
        /// coloring).
        color: u8,
    },
    /// A γ-transition's MTL program ran to completion.
    GammaExecuted {
        /// Source state of the γ-transition.
        from: &'a str,
        /// Target state of the γ-transition.
        to: &'a str,
        /// Statements in the translation program.
        statements: usize,
        /// Wall-clock execution time in nanoseconds.
        nanos: u64,
    },
    /// An MTL program execution completed (emitted by the interpreter
    /// itself; γ-executions additionally emit [`TraceEvent::GammaExecuted`]
    /// from the engine).
    Translate {
        /// Statements executed (top-level).
        statements: usize,
        /// Wall-clock execution time in nanoseconds.
        nanos: u64,
    },
    /// A conformance monitor rejected an observed action.
    MonitorViolation {
        /// The monitor's current state.
        state: &'a str,
        /// The offending action label (e.g. `"!flickr.photos.search"`).
        action: &'a str,
    },
    /// A dispatch-probe outcome inside a codec `parse`.
    DispatchProbe {
        /// Hit, miss, or fallback to try-all.
        outcome: ProbeOutcome,
    },
    /// A wire message parsed successfully.
    Parse {
        /// The message variant that matched.
        variant: &'a str,
        /// Wire size in bytes.
        wire_bytes: usize,
        /// Wall-clock parse time in nanoseconds.
        nanos: u64,
    },
    /// An abstract message composed to wire bytes.
    Compose {
        /// The message variant composed.
        variant: &'a str,
        /// Wire size in bytes.
        wire_bytes: usize,
        /// Wall-clock compose time in nanoseconds.
        nanos: u64,
    },
    /// A framed message arrived at the session engine.
    WireIn {
        /// Automaton color the bytes arrived on.
        color: u8,
        /// Frame payload size in bytes.
        bytes: usize,
    },
    /// A framed message left the session engine.
    WireOut {
        /// Automaton color the bytes left on.
        color: u8,
        /// Frame payload size in bytes.
        bytes: usize,
    },
    /// A send reused a pooled wire buffer (allocation-free compose).
    WireBufReused,
    /// A send had to allocate a fresh wire buffer (pool empty).
    WireBufAllocated,
    /// A session opened its connection to a service color.
    ServiceConnected {
        /// The service color connected.
        color: u8,
    },
    /// Raw bytes read from a transport (framing overhead included).
    TransportBytesIn {
        /// Bytes read.
        bytes: usize,
    },
    /// Raw bytes written to a transport (framing overhead included).
    TransportBytesOut {
        /// Bytes written.
        bytes: usize,
    },
    /// A framing layer extracted one complete frame from the stream.
    TransportFrameIn {
        /// Frame payload size in bytes.
        bytes: usize,
    },
    /// A host accepted a client connection.
    SessionAccepted,
    /// A host's accept loop hit a (transient) accept error.
    AcceptError,
    /// A worker thread panicked (observed via a poisoned lock or a
    /// failed join at shutdown).
    WorkerPanic,
    /// Multiplexed-host coordinator: sessions currently parked plus
    /// in-flight (sampled when the count changes).
    ActiveSessions {
        /// Session count.
        count: usize,
    },
    /// Multiplexed-host coordinator: jobs handed to the worker pool and
    /// not yet handed back (sampled when the count changes).
    QueueDepth {
        /// Outstanding job count.
        depth: usize,
    },
    /// A watchdog flagged a session as stalled: the traversal has been
    /// awaiting a receive beyond the configured stall deadline. Emitted
    /// once per stall episode (a session that stays stuck is not
    /// re-flagged until it makes progress and stalls again).
    SessionStalled {
        /// The automaton state the session is stuck in.
        state: &'a str,
        /// How long the session had been awaiting when flagged, in
        /// milliseconds.
        waited_ms: u64,
    },
    /// Watchdog sweep: sessions currently flagged stalled (sampled when
    /// the count changes, like [`TraceEvent::ActiveSessions`]).
    StalledSessions {
        /// Stalled session count.
        count: usize,
    },
    /// The engine left an automaton state, reporting how long the
    /// traversal dwelt in it (state entry to state exit).
    StateDwell {
        /// The state that was exited.
        state: &'a str,
        /// Dwell time in nanoseconds.
        nanos: u64,
    },
    /// A tracing span opened (emitted via
    /// [`crate::SessionTracer::open`]; the span/parent ids travel in the
    /// accompanying [`crate::TraceMeta`], not the event).
    SpanOpened {
        /// Span name (stable, kebab-case: `"session"`, `"receive"`,
        /// `"gamma"`, `"send"`).
        name: &'a str,
    },
    /// A tracing span closed.
    SpanClosed {
        /// Name the span was opened with.
        name: &'a str,
    },
    /// A capture of an abstract message crossing the mediator. Only
    /// emitted when a sink reports
    /// [`crate::TelemetrySink::wants_messages`] — rendering fields is
    /// the most expensive instrumentation the engine does.
    MessageSnapshot {
        /// Pipeline stage: `"received"`, `"pre-gamma"`, `"post-gamma"`,
        /// `"sent"`.
        stage: &'a str,
        /// Abstract message name.
        message: &'a str,
        /// Rendered fields, one `label=value` pair per line.
        fields: &'a str,
    },
}
