//! The message flight recorder: bounded per-session capture of abstract
//! messages as they cross the mediator.
//!
//! A [`crate::TraceBuffer`] answers *when and where* a session went; the
//! flight recorder answers *what the messages said*. The session engine
//! emits [`TraceEvent::MessageSnapshot`] at four stages — `received`
//! (post-parse), `pre-gamma`, `post-gamma` (the two sides of a
//! γ-translation) and `sent` (pre-compose) — but only when a sink
//! reports [`TelemetrySink::wants_messages`], because rendering field
//! values is the most expensive thing the instrumentation does.
//!
//! Field values are payload data, so the recorder owns a redaction
//! hook: every `label=value` pair passes through the hook before being
//! retained, and the default hook keeps values verbatim. Deployments
//! mediating sensitive traffic install their own with
//! [`FlightRecorder::with_redaction`].

use crate::event::TraceEvent;
use crate::sink::TelemetrySink;
use crate::span::{SessionTraceId, TraceMeta};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Rewrites one field value before retention: `(field label, value) ->
/// retained value`. Return the value unchanged to keep it, a fixed
/// marker to censor it.
pub type RedactionFn = dyn Fn(&str, &str) -> String + Send + Sync;

/// One captured abstract message at one pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageCapture {
    /// The session the message belongs to.
    pub session: SessionTraceId,
    /// Monotonic nanoseconds since the session's tracer was minted.
    pub ts_ns: u64,
    /// Pipeline stage (`"received"`, `"pre-gamma"`, `"post-gamma"`,
    /// `"sent"`).
    pub stage: String,
    /// Abstract message name.
    pub message: String,
    /// `(label, value)` pairs after redaction, in message order.
    pub fields: Vec<(String, String)>,
}

/// Default number of captures retained per session.
const DEFAULT_PER_SESSION: usize = 64;
/// Default number of sessions with retained captures.
const DEFAULT_SESSIONS: usize = 16;

struct FlightState {
    /// Per-session capture runs, oldest session first. A `VecDeque` of
    /// `(session, captures)` keeps eviction order without timestamps.
    sessions: VecDeque<(SessionTraceId, Vec<MessageCapture>)>,
    dropped: u64,
}

/// A [`TelemetrySink`] retaining a bounded per-session run of
/// [`MessageCapture`]s, with redaction applied at capture time (values
/// a redaction hook rewrites are never stored).
pub struct FlightRecorder {
    per_session: usize,
    max_sessions: usize,
    redact: Box<RedactionFn>,
    state: Mutex<FlightState>,
}

impl FlightRecorder {
    /// A recorder with default bounds and no redaction.
    pub fn new() -> FlightRecorder {
        FlightRecorder::with_capacity(DEFAULT_SESSIONS, DEFAULT_PER_SESSION)
    }

    /// A recorder keeping up to `per_session` captures for each of the
    /// last `sessions` sessions.
    pub fn with_capacity(sessions: usize, per_session: usize) -> FlightRecorder {
        FlightRecorder {
            per_session: per_session.max(1),
            max_sessions: sessions.max(1),
            redact: Box::new(|_label, value| value.to_owned()),
            state: Mutex::new(FlightState {
                sessions: VecDeque::new(),
                dropped: 0,
            }),
        }
    }

    /// Installs a redaction hook. Applied to every `(label, value)`
    /// pair at capture time — redacted values never reach memory
    /// retained by the recorder.
    pub fn with_redaction<F>(mut self, redact: F) -> FlightRecorder
    where
        F: Fn(&str, &str) -> String + Send + Sync + 'static,
    {
        self.redact = Box::new(redact);
        self
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FlightState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Captures for one session, oldest first.
    pub fn captures(&self, session: SessionTraceId) -> Vec<MessageCapture> {
        self.lock()
            .sessions
            .iter()
            .find(|(s, _)| *s == session)
            .map(|(_, caps)| caps.clone())
            .unwrap_or_default()
    }

    /// All retained captures, grouped by session (oldest session first).
    pub fn all(&self) -> Vec<(SessionTraceId, Vec<MessageCapture>)> {
        self.lock().sessions.iter().cloned().collect()
    }

    /// The most recent session with captures.
    pub fn latest_session(&self) -> Option<SessionTraceId> {
        self.lock().sessions.back().map(|(s, _)| *s)
    }

    /// Captures dropped to per-session or session-count bounds.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl TelemetrySink for FlightRecorder {
    fn record(&self, _event: &TraceEvent<'_>) {
        // Untraced snapshots carry no session identity; nothing to file
        // them under.
    }

    fn record_traced(&self, meta: &TraceMeta, event: &TraceEvent<'_>) {
        let TraceEvent::MessageSnapshot {
            stage,
            message,
            fields,
        } = *event
        else {
            return;
        };
        let parsed: Vec<(String, String)> = fields
            .lines()
            .filter_map(|line| line.split_once('='))
            .map(|(label, value)| (label.to_owned(), (self.redact)(label, value)))
            .collect();
        let capture = MessageCapture {
            session: meta.session,
            ts_ns: meta.ts_ns,
            stage: stage.to_owned(),
            message: message.to_owned(),
            fields: parsed,
        };
        let mut state = self.lock();
        match state.sessions.iter_mut().find(|(s, _)| *s == meta.session) {
            Some((_, caps)) => {
                if caps.len() < self.per_session {
                    caps.push(capture);
                } else {
                    state.dropped += 1;
                }
            }
            None => {
                if state.sessions.len() == self.max_sessions {
                    if let Some((_, evicted)) = state.sessions.pop_front() {
                        state.dropped += evicted.len() as u64;
                    }
                }
                state.sessions.push_back((meta.session, vec![capture]));
            }
        }
    }

    fn wants_spans(&self) -> bool {
        true
    }

    fn wants_messages(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SessionTracer, SpanId};

    fn snapshot_event<'a>(stage: &'a str, message: &'a str, fields: &'a str) -> TraceEvent<'a> {
        TraceEvent::MessageSnapshot {
            stage,
            message,
            fields,
        }
    }

    fn meta(session: u64, ts_ns: u64) -> TraceMeta {
        TraceMeta {
            session: SessionTraceId(session),
            ts_ns,
            span: SpanId(1),
            parent: SpanId::NONE,
        }
    }

    #[test]
    fn captures_pre_and_post_gamma_per_session() {
        let fr = FlightRecorder::new();
        fr.record_traced(
            &meta(7, 10),
            &snapshot_event("pre-gamma", "Add", "a=2\nb=3"),
        );
        fr.record_traced(
            &meta(7, 20),
            &snapshot_event("post-gamma", "Plus", "x=2\ny=3"),
        );
        let caps = fr.captures(SessionTraceId(7));
        assert_eq!(caps.len(), 2);
        assert_eq!(caps[0].stage, "pre-gamma");
        assert_eq!(caps[0].message, "Add");
        assert_eq!(
            caps[0].fields,
            vec![("a".into(), "2".into()), ("b".into(), "3".into())]
        );
        assert_eq!(caps[1].stage, "post-gamma");
        assert_eq!(caps[1].message, "Plus");
        assert!(caps[0].ts_ns < caps[1].ts_ns);
    }

    #[test]
    fn redaction_runs_before_retention() {
        let fr = FlightRecorder::new().with_redaction(|label, value| {
            if label == "password" {
                "<redacted>".to_owned()
            } else {
                value.to_owned()
            }
        });
        fr.record_traced(
            &meta(1, 0),
            &snapshot_event("received", "Login", "user=amel\npassword=hunter2"),
        );
        let caps = fr.captures(SessionTraceId(1));
        assert_eq!(
            caps[0].fields,
            vec![
                ("user".into(), "amel".into()),
                ("password".into(), "<redacted>".into())
            ]
        );
    }

    #[test]
    fn bounds_apply_per_session_and_across_sessions() {
        let fr = FlightRecorder::with_capacity(2, 2);
        for ts in 0..4 {
            fr.record_traced(&meta(1, ts), &snapshot_event("received", "M", "a=1"));
        }
        assert_eq!(fr.captures(SessionTraceId(1)).len(), 2);
        assert_eq!(fr.dropped(), 2);
        fr.record_traced(&meta(2, 0), &snapshot_event("received", "M", "a=1"));
        fr.record_traced(&meta(3, 0), &snapshot_event("received", "M", "a=1"));
        // Session 1 (oldest) evicted to admit session 3.
        assert!(fr.captures(SessionTraceId(1)).is_empty());
        assert_eq!(fr.latest_session(), Some(SessionTraceId(3)));
    }

    #[test]
    fn non_snapshot_events_are_ignored() {
        let fr = FlightRecorder::new();
        let tracer = SessionTracer::new();
        tracer.record(&fr, &TraceEvent::SessionStarted);
        fr.record(&snapshot_event("received", "M", "a=1"));
        assert!(fr.all().is_empty());
    }
}
