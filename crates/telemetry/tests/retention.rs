//! Retention behaviour of the bounded trace stores, plus a property
//! check that the exposition format stays lossless when the operations
//! plane's window and health families ride along in a snapshot.

use proptest::prelude::*;
use starlink_telemetry::{
    evaluate_pair, window_families, HealthInputs, HealthReport, HealthThresholds, Recorder,
    SessionTracer, Snapshot, TelemetrySink, TraceBuffer, TraceEvent, WindowCounts,
};

/// Parses a lifecycle-ring entry's `+<nanos>ns ` prefix.
fn ring_offset_ns(entry: &str) -> u64 {
    let rest = entry.strip_prefix('+').expect("entry starts with +");
    let (digits, _) = rest.split_once("ns ").expect("entry has ns marker");
    digits.parse().expect("offset is an integer")
}

#[test]
fn trace_buffer_counts_every_truncated_record_exactly() {
    // Floor of 16 records per trace: open(1) + 25 events + close(1) is
    // 27 attempts, so exactly 11 must be dropped and tallied.
    let buffer = TraceBuffer::with_capacity(1, 16);
    let tracer = SessionTracer::new();
    let root = tracer.open(&buffer, "session");
    for i in 0..25u64 {
        tracer.record(
            &buffer,
            &TraceEvent::WireOut {
                color: 1,
                bytes: i as usize,
            },
        );
    }
    tracer.close(&buffer, root);

    assert_eq!(buffer.truncated_records(), 11);
    let trace = buffer.latest().expect("root close completes the trace");
    assert_eq!(trace.records.len(), 16);
    // The drop policy is keep-oldest: the root open survives, the close
    // marker is among the truncated tail.
    assert_eq!(buffer.traces().len(), 1);

    // A second, smaller session on the same buffer leaves the tally
    // untouched — truncation is counted per record, not per trace.
    let tracer = SessionTracer::new();
    let root = tracer.open(&buffer, "session");
    tracer.close(&buffer, root);
    assert_eq!(buffer.truncated_records(), 11);
    assert_eq!(buffer.traces().len(), 1, "capacity 1 evicts the old trace");
}

#[test]
fn recorder_lifecycle_ring_wraps_and_stays_monotonic() {
    let recorder = Recorder::with_ring_capacity(4);
    for i in 0..7usize {
        recorder.record(&TraceEvent::SessionFinished {
            final_state: "s9",
            exchanges: i,
        });
    }
    let recent = recorder.recent();
    assert_eq!(recent.len(), 4, "ring keeps only the newest entries");
    // The oldest three entries were evicted: what remains are the
    // records for exchanges 3..=6, in order.
    for (entry, exchanges) in recent.iter().zip(3usize..) {
        assert!(
            entry.contains(&format!("exchanges: {exchanges}")),
            "expected exchanges {exchanges} in {entry}"
        );
    }
    // Offsets are stamped from one epoch, so they never go backwards —
    // even across the wraparound.
    let offsets: Vec<u64> = recent.iter().map(|e| ring_offset_ns(e)).collect();
    assert!(
        offsets.windows(2).all(|w| w[0] <= w[1]),
        "ring offsets must be monotonic: {offsets:?}"
    );
}

const STAGES: [&str; 4] = ["parse", "translate", "net", "stalled"];

proptest! {
    /// A recorder snapshot with window and health families appended —
    /// exactly what the diagnostics endpoint serves — survives
    /// render→parse without loss.
    #[test]
    fn snapshot_with_window_and_health_families_round_trips(
        sessions in 0u64..500,
        failed in 0u64..500,
        accept_errors in 0u64..100,
        stalled in 0u64..50,
        queue_depth in 0u64..64,
        stage_counts in proptest::collection::vec(1u64..1_000, 0..4),
    ) {
        let recorder = Recorder::new();
        for _ in 0..sessions {
            recorder.record(&TraceEvent::SessionStarted);
            recorder.record(&TraceEvent::SessionFinished { final_state: "s9", exchanges: 1 });
        }
        let mut snapshot = TelemetrySink::snapshot(&recorder).expect("recorder snapshots");

        let counts = WindowCounts {
            window_secs: 60,
            started: sessions + failed,
            finished: sessions,
            failed,
            accepted: sessions + failed,
            accept_errors,
            stalled,
            failures_by_stage: stage_counts
                .iter()
                .enumerate()
                .map(|(i, &n)| (STAGES[i].to_owned(), n))
                .collect(),
        };
        snapshot.families.extend(window_families("A~B", &counts));

        let pair = evaluate_pair(
            &HealthInputs {
                pair: "A~B".to_owned(),
                window: counts,
                queue_depth,
                queue_capacity: 64,
                stalled_now: stalled,
            },
            &HealthThresholds::default(),
        );
        let report = HealthReport::single(pair);
        snapshot.families.extend(report.families());

        let text = snapshot.render_text();
        let parsed = Snapshot::parse_text(&text).expect("own exposition parses");
        prop_assert_eq!(parsed, snapshot);

        // The health report's own wire format is lossless too.
        let health_back = HealthReport::parse_text(&report.render_text()).expect("health parses");
        prop_assert_eq!(health_back, report);
    }
}
