//! End-to-end exposition check: a recorder fed a realistic event mix
//! renders text that parses back to the identical snapshot.

use starlink_telemetry::{
    ProbeOutcome, Recorder, Snapshot, TelemetrySink, TraceEvent, TransitionKind,
};

#[test]
fn realistic_event_mix_round_trips() {
    let r = Recorder::new();
    for i in 0..50u64 {
        r.record(&TraceEvent::SessionStarted);
        r.record(&TraceEvent::Transition {
            from: "s0",
            to: "s1",
            kind: TransitionKind::Receive,
            color: 1,
        });
        r.record(&TraceEvent::DispatchProbe {
            outcome: if i % 7 == 0 {
                ProbeOutcome::Fallback
            } else {
                ProbeOutcome::Hit
            },
        });
        r.record(&TraceEvent::Parse {
            variant: "GIOPRequest",
            wire_bytes: 120 + i as usize,
            nanos: 900 * (i + 1),
        });
        r.record(&TraceEvent::GammaExecuted {
            from: "s1",
            to: "s2",
            statements: 4,
            nanos: 40_000 + i,
        });
        r.record(&TraceEvent::Compose {
            variant: "HttpResponse",
            wire_bytes: 300,
            nanos: 2_500,
        });
        r.record(&TraceEvent::WireOut {
            color: 1,
            bytes: 300,
        });
        r.record(&TraceEvent::ActiveSessions {
            count: (i % 9) as usize,
        });
        r.record(&TraceEvent::SessionFinished {
            final_state: "s9",
            exchanges: 2,
        });
    }
    r.record(&TraceEvent::SessionFailed { stage: "net" });

    let snap = TelemetrySink::snapshot(&r).expect("recorder snapshots");
    let text = snap.render_text();
    let parsed = Snapshot::parse_text(&text).expect("own exposition parses");
    assert_eq!(parsed, snap);

    assert_eq!(parsed.counter("starlink_sessions_started_total"), 50);
    assert_eq!(parsed.counter("starlink_sessions_finished_total"), 50);
    assert_eq!(parsed.counter("starlink_sessions_failed_total"), 1);
    assert_eq!(
        parsed.value("starlink_dispatch_probe_total", &[("outcome", "fallback")]),
        Some(8)
    );
    assert_eq!(parsed.counter("starlink_active_sessions_peak"), 8);
    let parse_hist = parsed.family("starlink_parse_duration_ns").unwrap();
    assert_eq!(parse_hist.count, Some(50));
}
