//! Vendored minimal benchmark harness.
//!
//! Implements the subset of the `criterion` API the Starlink benches
//! use — `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros and `black_box` — with a
//! simple wall-clock harness: each benchmark is warmed up, then timed
//! over `sample_size` samples, and the per-iteration mean plus optional
//! element throughput is printed to stdout. No statistics, plots or
//! baselines; the point is that `cargo bench` (and compiling benches
//! under `cargo test --benches`) works in offline environments.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One finished benchmark measurement, kept for [`save_json`].
#[derive(Debug, Clone)]
pub struct Record {
    /// Full benchmark name (`group/function`).
    pub name: String,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Declared per-iteration throughput, if any.
    pub throughput: Option<Throughput>,
}

static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// Whether fast mode is on (`STARLINK_BENCH_FAST=1`): trims warm-up and
/// sample counts so benches double as CI smoke tests.
pub fn fast_mode() -> bool {
    std::env::var("STARLINK_BENCH_FAST").is_ok_and(|v| v == "1")
}

/// All measurements recorded so far in this process, in run order.
pub fn records() -> Vec<Record> {
    RECORDS.lock().expect("records lock").clone()
}

/// Writes every recorded measurement to `path` as a JSON array of
/// `{"name", "ns_per_iter", "throughput"?}` objects (hand-serialised —
/// the harness has no dependencies).
///
/// # Errors
///
/// Propagates the underlying file-write error.
pub fn save_json(path: &std::path::Path) -> std::io::Result<()> {
    let records = records();
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("  {\"name\": \"");
        for c in r.name.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push_str(&format!("\", \"ns_per_iter\": {:.2}", r.ns_per_iter));
        match r.throughput {
            Some(Throughput::Elements(n)) => {
                out.push_str(&format!(", \"throughput\": {{\"elements\": {n}}}"));
            }
            Some(Throughput::Bytes(n)) => {
                out.push_str(&format!(", \"throughput\": {{\"bytes\": {n}}}"));
            }
            None => {}
        }
        out.push('}');
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    std::fs::write(path, out)
}

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function label plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `label/parameter`.
    pub fn new(label: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{label}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> BenchmarkId {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> BenchmarkId {
        BenchmarkId { label }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean time of one iteration, filled in by `iter`.
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Times `routine`, first warming up, then measuring.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the budget is spent or 3 iterations,
        // whichever later (fast mode trims the budget so benches double
        // as smoke tests).
        let warm_budget = if fast_mode() {
            Duration::from_micros(200)
        } else {
            Duration::from_millis(20)
        };
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        while warm_iters < 3 || warm_start.elapsed() < warm_budget {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 10_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1);
        // Choose an iteration count so each sample takes ~1ms (fast
        // mode: ~50µs).
        let target = if fast_mode() {
            Duration::from_micros(50)
        } else {
            Duration::from_millis(1)
        };
        let iters_per_sample = if per_iter.is_zero() {
            1000
        } else {
            (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u32
        };
        let start = Instant::now();
        let mut total_iters: u64 = 0;
        for _ in 0..self.samples {
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            total_iters += u64::from(iters_per_sample);
        }
        self.elapsed_per_iter = start.elapsed() / (total_iters.max(1) as u32);
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

fn report(name: &str, per_iter: Duration, throughput: Option<Throughput>) {
    RECORDS.lock().expect("records lock").push(Record {
        name: name.to_owned(),
        ns_per_iter: per_iter.as_nanos() as f64,
        throughput,
    });
    let mut line = format!("{name:<48} {:>12}/iter", fmt_duration(per_iter));
    if let Some(tp) = throughput {
        let secs = per_iter.as_secs_f64();
        if secs > 0.0 {
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  {:>12.0} elem/s", n as f64 / secs));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  {:>12.0} B/s", n as f64 / secs));
                }
            }
        }
    }
    println!("{line}");
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: if fast_mode() { 2 } else { 20 },
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark. Fast mode
    /// ([`fast_mode`]) clamps the count so smoke runs stay quick.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = if fast_mode() { n.clamp(1, 2) } else { n.max(1) };
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut b);
        report(&id.label, b.elapsed_per_iter, None);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed by one iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a closure under this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.label),
            b.elapsed_per_iter,
            self.throughput,
        );
        self
    }

    /// Benchmarks a closure that receives an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.label),
            b.elapsed_per_iter,
            self.throughput,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("giop", 4).to_string(), "giop/4");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }

    #[test]
    fn harness_times_a_cheap_closure() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("t");
        group.throughput(Throughput::Elements(1));
        let mut n = 0u64;
        group.bench_function("count", |b| b.iter(|| n = n.wrapping_add(1)));
        group.finish();
        assert!(n > 0);
    }

    #[test]
    fn measurements_are_recorded_and_saved_as_json() {
        let mut c = Criterion::default().sample_size(1);
        let mut group = c.benchmark_group("json");
        group.throughput(Throughput::Bytes(16));
        group.bench_function("noop", |b| b.iter(|| 1u32));
        group.finish();
        let recs = records();
        let rec = recs
            .iter()
            .find(|r| r.name == "json/noop")
            .expect("recorded");
        assert!(rec.ns_per_iter >= 0.0);
        let path = std::env::temp_dir().join("starlink_criterion_test.json");
        save_json(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"name\": \"json/noop\""));
        assert!(text.contains("\"bytes\": 16"));
        let _ = std::fs::remove_file(&path);
    }
}
