//! Property-based tests for the abstract message model.

use proptest::prelude::*;
use starlink_message::{
    equiv::SemanticRegistry, get_value_path, set_value_path, AbstractMessage, Field, FieldPath,
    Value,
};

/// Arbitrary primitive values.
fn primitive() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<u64>().prop_map(Value::UInt),
        any::<bool>().prop_map(Value::Bool),
        "[a-zA-Z0-9 _.-]{0,24}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..16).prop_map(Value::Bytes),
    ]
}

/// Arbitrary nested values (bounded depth/size).
fn value() -> impl Strategy<Value = Value> {
    primitive().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Array),
            proptest::collection::vec(("[a-z][a-z0-9]{0,6}", inner), 0..4).prop_map(|fields| {
                Value::Struct(
                    fields
                        .into_iter()
                        .map(|(label, v)| Field::new(label, v))
                        .collect(),
                )
            }),
        ]
    })
}

/// Identifier-shaped path segment names.
fn seg_name() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_-]{0,8}".prop_map(|s| s)
}

proptest! {
    #[test]
    fn set_then_get_roundtrips(name in seg_name(), segs in proptest::collection::vec(seg_name(), 1..4), v in value()) {
        let mut msg = AbstractMessage::new("m");
        let path_text = {
            let mut p = name.clone();
            for s in &segs {
                p.push('.');
                p.push_str(s);
            }
            p
        };
        let path: FieldPath = path_text.parse().unwrap();
        msg.set_path(&path, v.clone()).unwrap();
        prop_assert_eq!(msg.get_path(&path).unwrap(), &v);
    }

    #[test]
    fn field_path_display_parse_roundtrip(segs in proptest::collection::vec(seg_name(), 1..5), idx in proptest::option::of(0usize..5)) {
        let mut text = segs.join(".");
        if let Some(i) = idx {
            text.push_str(&format!("[{i}]"));
        }
        let path: FieldPath = text.parse().unwrap();
        let again: FieldPath = path.to_string().parse().unwrap();
        prop_assert_eq!(path, again);
    }

    #[test]
    fn value_path_set_get_roundtrips(v in value(), name in seg_name()) {
        let mut root = Value::Struct(vec![]);
        let path: FieldPath = name.parse().unwrap();
        set_value_path(&mut root, &path, v.clone()).unwrap();
        prop_assert_eq!(get_value_path(&root, &path).unwrap(), &v);
    }

    #[test]
    fn to_text_never_panics(v in value()) {
        let _ = v.to_text();
        let _ = v.leaf_count();
        let _ = v.kind();
    }

    #[test]
    fn type_compatibility_is_symmetric(a in value(), b in value()) {
        prop_assert_eq!(a.type_compatible(&b), b.type_compatible(&a));
    }

    #[test]
    fn equivalence_is_reflexive(fields in proptest::collection::vec(("[a-z][a-z0-9]{0,6}", primitive()), 0..6)) {
        let mut msg = AbstractMessage::new("m");
        for (label, v) in fields {
            msg.set_field(&label, v);
        }
        let reg = SemanticRegistry::new();
        prop_assert!(reg.messages_equivalent(&msg, &msg));
    }

    #[test]
    fn declared_equivalence_is_symmetric(label_a in seg_name(), label_b in seg_name(), v in primitive()) {
        let mut reg = SemanticRegistry::new();
        reg.declare_field_concept("c", [label_a.as_str(), label_b.as_str()]);
        let fa = Field::new(label_a, v.clone());
        let fb = Field::new(label_b, v);
        prop_assert_eq!(reg.fields_equivalent(&fa, &fb), reg.fields_equivalent(&fb, &fa));
    }

    #[test]
    fn upsert_is_idempotent(name in seg_name(), a in primitive(), b in primitive()) {
        let mut msg = AbstractMessage::new("m");
        msg.set_field(&name, a);
        msg.set_field(&name, b.clone());
        prop_assert_eq!(msg.fields().len(), 1);
        prop_assert_eq!(msg.get(&name).unwrap(), &b);
    }

    #[test]
    fn clone_roundtrip(fields in proptest::collection::vec(("[a-z][a-z0-9]{0,6}", primitive()), 0..5)) {
        // Clone must preserve structural identity for any field set.
        let mut msg = AbstractMessage::new("m");
        for (label, v) in fields {
            msg.set_field(&label, v);
        }
        let cloned = msg.clone();
        prop_assert_eq!(msg, cloned);
    }
}
