use crate::field::Field;
use std::fmt;

/// Dynamic value carried by an abstract-message field.
///
/// The paper's message model distinguishes *primitive* fields (integers,
/// strings, …) from *structured* fields composed of nested fields; protocol
/// payloads such as GIOP's `ParameterArray` additionally need ordered,
/// unnamed element sequences, modelled here by [`Value::Array`].
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// Absent / nil value (e.g. an optional parameter that was omitted).
    #[default]
    Null,
    /// Signed integer of up to 64 bits.
    Int(i64),
    /// Unsigned integer of up to 64 bits.
    UInt(u64),
    /// IEEE-754 double-precision float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// UTF-8 text.
    Str(String),
    /// Raw octets (opaque payloads, CDR-encoded blobs, …).
    Bytes(Vec<u8>),
    /// A structured value: ordered, named sub-fields.
    Struct(Vec<Field>),
    /// An ordered sequence of unnamed values.
    Array(Vec<Value>),
}

impl Value {
    /// Human-readable name of the value's variant, for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) => "int",
            Value::UInt(_) => "uint",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
            Value::Str(_) => "string",
            Value::Bytes(_) => "bytes",
            Value::Struct(_) => "struct",
            Value::Array(_) => "array",
        }
    }

    /// Returns `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// View as a signed integer, coercing from `UInt` when it fits.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// View as an unsigned integer, coercing from non-negative `Int`.
    pub fn as_uint(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::Bool(b) => Some(u64::from(*b)),
            _ => None,
        }
    }

    /// View as a float, coercing from integers.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// View as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Int(i) => Some(*i != 0),
            Value::UInt(u) => Some(*u != 0),
            _ => None,
        }
    }

    /// View as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// View as raw bytes.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            Value::Str(s) => Some(s.as_bytes()),
            _ => None,
        }
    }

    /// View as a structure's fields.
    pub fn as_struct(&self) -> Option<&[Field]> {
        match self {
            Value::Struct(fields) => Some(fields),
            _ => None,
        }
    }

    /// Mutable view as a structure's fields.
    pub fn as_struct_mut(&mut self) -> Option<&mut Vec<Field>> {
        match self {
            Value::Struct(fields) => Some(fields),
            _ => None,
        }
    }

    /// View as an array's elements.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Mutable view as an array's elements.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as display text, the way the MTL `tostring`
    /// builtin and text-protocol composers serialise it.
    pub fn to_text(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Int(i) => i.to_string(),
            Value::UInt(u) => u.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.is_finite() && f.abs() < 1e15 {
                    format!("{f:.1}")
                } else {
                    f.to_string()
                }
            }
            Value::Bool(b) => b.to_string(),
            Value::Str(s) => s.clone(),
            Value::Bytes(b) => b.iter().map(|x| format!("{x:02x}")).collect(),
            Value::Struct(fields) => {
                let inner: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{}={}", f.label(), f.value().to_text()))
                    .collect();
                format!("{{{}}}", inner.join(", "))
            }
            Value::Array(items) => {
                let inner: Vec<String> = items.iter().map(Value::to_text).collect();
                format!("[{}]", inner.join(", "))
            }
        }
    }

    /// Structural "deep size": the number of primitive leaves in the value.
    /// Used by benches and by merge heuristics to weight messages.
    pub fn leaf_count(&self) -> usize {
        match self {
            Value::Struct(fields) => fields.iter().map(|f| f.value().leaf_count()).sum(),
            Value::Array(items) => items.iter().map(Value::leaf_count).sum(),
            _ => 1,
        }
    }

    /// Whether two values are *type compatible* for the semantic-equivalence
    /// operator `≅`: values interchangeable after a lossless-enough
    /// transformation (paper §3.2 reasons about semantic equivalence at the
    /// field level; numeric widths and numeric/text boundaries are bridged
    /// by MTL transformation functions).
    pub fn type_compatible(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => true,
            (Int(_) | UInt(_) | Float(_) | Bool(_), Int(_) | UInt(_) | Float(_) | Bool(_)) => true,
            (Str(_), Str(_)) => true,
            // Text protocols carry numbers as strings; treat as compatible.
            (Str(_), Int(_) | UInt(_) | Float(_) | Bool(_)) => true,
            (Int(_) | UInt(_) | Float(_) | Bool(_), Str(_)) => true,
            (Bytes(_), Bytes(_) | Str(_)) | (Str(_), Bytes(_)) => true,
            (Struct(_), Struct(_)) => true,
            (Array(_), Array(_)) => true,
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::UInt(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::UInt(u64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}

impl From<Vec<Field>> for Value {
    fn from(v: Vec<Field>) -> Self {
        Value::Struct(v)
    }
}

impl FromIterator<Value> for Value {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Value::Array(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_coercions() {
        assert_eq!(Value::Int(7).as_uint(), Some(7));
        assert_eq!(Value::Int(-7).as_uint(), None);
        assert_eq!(Value::UInt(u64::MAX).as_int(), None);
        assert_eq!(Value::Bool(true).as_int(), Some(1));
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
    }

    #[test]
    fn string_views() {
        let v = Value::from("hello");
        assert_eq!(v.as_str(), Some("hello"));
        assert_eq!(v.as_bytes(), Some(b"hello".as_ref()));
        assert_eq!(v.as_int(), None);
    }

    #[test]
    fn display_rendering() {
        assert_eq!(Value::Int(-4).to_text(), "-4");
        assert_eq!(Value::Float(2.0).to_text(), "2.0");
        assert_eq!(Value::Bool(true).to_text(), "true");
        assert_eq!(Value::Null.to_text(), "");
        assert_eq!(Value::Bytes(vec![0xde, 0xad]).to_text(), "dead");
        let arr = Value::Array(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(arr.to_text(), "[1, 2]");
    }

    #[test]
    fn type_compatibility_matrix() {
        assert!(Value::Int(1).type_compatible(&Value::UInt(1)));
        assert!(Value::Int(1).type_compatible(&Value::Str("1".into())));
        assert!(Value::Null.type_compatible(&Value::Struct(vec![])));
        assert!(!Value::Struct(vec![]).type_compatible(&Value::Int(0)));
        assert!(!Value::Array(vec![]).type_compatible(&Value::Struct(vec![])));
    }

    #[test]
    fn leaf_count_nested() {
        let v = Value::Struct(vec![
            Field::new("a", Value::Int(1)),
            Field::new(
                "b",
                Value::Array(vec![Value::Int(2), Value::Str("x".into())]),
            ),
        ]);
        assert_eq!(v.leaf_count(), 3);
    }

    #[test]
    fn default_is_null() {
        assert!(Value::default().is_null());
    }
}
