//! The semantic-equivalence operator `≅` of paper §3.2.
//!
//! Two heterogeneous APIs name the same concepts differently: Flickr's
//! keyword-search parameter is `text`, Picasa's is `q`. Definition 2 of the
//! paper says a message `n` is semantically equivalent to a sequence of
//! messages `m⃗` (`n ≅ m⃗`) iff every *mandatory* field of `n` finds a
//! semantically equivalent field in some message of `m⃗`.
//!
//! Field-level equivalence itself is domain knowledge. Starlink captures it
//! in a [`SemanticRegistry`]: a table mapping field labels and
//! action/message names onto shared *concepts* (in the full CONNECT vision
//! this table would be derived from ontologies; here, as in the paper's
//! case study, the developer declares it as part of the merge model).
//!
//! # Example
//!
//! ```
//! use starlink_message::equiv::SemanticRegistry;
//! use starlink_message::{AbstractMessage, Value};
//!
//! let mut reg = SemanticRegistry::new();
//! reg.declare_field_concept("keyword", ["text", "q"]);
//! reg.declare_message_concept("photo-search", ["flickr.photos.search", "picasa.photo.search"]);
//!
//! let mut flickr = AbstractMessage::new("flickr.photos.search");
//! flickr.set_field("text", Value::from("tree"));
//! let mut picasa = AbstractMessage::new("picasa.photo.search");
//! picasa.set_field("q", Value::from("tree"));
//!
//! assert!(reg.messages_equivalent(&flickr, &picasa));
//! assert!(reg.message_names_equivalent("flickr.photos.search", "picasa.photo.search"));
//! ```

use crate::field::Field;
use crate::message::AbstractMessage;
use crate::value::Value;
use std::collections::HashMap;

/// Normalises a label for comparison: ASCII-lowercase with separator
/// characters (`_`, `-`, `.`, whitespace) removed, so `per_page`,
/// `per-page` and `PerPage` all compare equal.
pub fn normalize_label(label: &str) -> String {
    label
        .chars()
        .filter(|c| !matches!(c, '_' | '-' | '.' | ' ' | '\t'))
        .flat_map(char::to_lowercase)
        .collect()
}

/// Registry of declared semantic equivalences between field labels and
/// between message/action names.
#[derive(Debug, Clone, Default)]
pub struct SemanticRegistry {
    /// normalised field label → concept id
    field_concepts: HashMap<String, String>,
    /// normalised message name → concept id
    message_concepts: HashMap<String, String>,
}

impl SemanticRegistry {
    /// Creates an empty registry: only identical (normalised) labels
    /// compare equivalent.
    pub fn new() -> SemanticRegistry {
        SemanticRegistry::default()
    }

    /// Declares that all the given field labels denote `concept`.
    pub fn declare_field_concept<I, S>(&mut self, concept: &str, labels: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        for label in labels {
            self.field_concepts
                .insert(normalize_label(label.as_ref()), concept.to_owned());
        }
    }

    /// Declares that all the given message/action names denote `concept`.
    pub fn declare_message_concept<I, S>(&mut self, concept: &str, names: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        for name in names {
            self.message_concepts
                .insert(normalize_label(name.as_ref()), concept.to_owned());
        }
    }

    /// The concept a field label maps to, defaulting to its own
    /// normalised form.
    pub fn field_concept(&self, label: &str) -> String {
        let norm = normalize_label(label);
        self.field_concepts.get(&norm).cloned().unwrap_or(norm)
    }

    /// The concept a message name maps to, defaulting to its own
    /// normalised form.
    pub fn message_concept(&self, name: &str) -> String {
        let norm = normalize_label(name);
        self.message_concepts.get(&norm).cloned().unwrap_or(norm)
    }

    /// Field-level `≅`: same concept and type-compatible values.
    pub fn fields_equivalent(&self, a: &Field, b: &Field) -> bool {
        self.field_concept(a.label()) == self.field_concept(b.label())
            && a.value().type_compatible(b.value())
    }

    /// Whether two message/action names denote the same concept.
    pub fn message_names_equivalent(&self, a: &str, b: &str) -> bool {
        self.message_concept(a) == self.message_concept(b)
    }

    /// `n ≅ m` for a single message: every mandatory field of `n` has an
    /// equivalent field somewhere in `m` (searching nested structures).
    pub fn messages_equivalent(&self, n: &AbstractMessage, m: &AbstractMessage) -> bool {
        self.message_equivalent_to_sequence(n, std::slice::from_ref(&m))
    }

    /// `n ≅ m⃗` (Def. 2): every mandatory field of `n` finds an equivalent
    /// field in at least one message of the sequence.
    pub fn message_equivalent_to_sequence<M>(&self, n: &AbstractMessage, seq: &[M]) -> bool
    where
        M: std::borrow::Borrow<AbstractMessage>,
    {
        n.mandatory_fields().all(|needed| {
            seq.iter()
                .any(|m| contains_equivalent_field(self, m.borrow().fields(), needed))
        })
    }

    /// Finds the first field in `m` (searching nested structures,
    /// depth-first) that is semantically equivalent to `needed`.
    pub fn find_equivalent<'m>(&self, m: &'m AbstractMessage, needed: &Field) -> Option<&'m Field> {
        find_equivalent_field(self, m.fields(), needed)
    }
}

/// Infers a [`SemanticRegistry`] from *example exchanges*: pairs of
/// messages known to carry the same request/reply in the two APIs, with
/// real data filled in.
///
/// This is a small, deterministic instance of the paper's §7 outlook
/// ("for full automation, machine learning is required […] to learn the
/// interaction behaviour"): fields are aligned when their rendered
/// values coincide *unambiguously and consistently* across the examples
/// (mutual best match by vote count), and each example pair's message
/// names are declared equivalent.
///
/// The result is a starting point a developer reviews, not ground truth:
/// coincidental value collisions (two fields holding `"3"` in every
/// example) stay ambiguous and are skipped rather than guessed.
///
/// # Example
///
/// ```
/// use starlink_message::equiv::infer_from_examples;
/// use starlink_message::{AbstractMessage, Value};
///
/// let mut flickr = AbstractMessage::new("flickr.photos.search");
/// flickr.set_field("api_key", Value::from("k-123"));
/// flickr.set_field("text", Value::from("tree"));
/// flickr.set_field("per_page", Value::from("7"));
/// let mut picasa = AbstractMessage::new("picasa.photos.search");
/// picasa.set_field("q", Value::from("tree"));
/// picasa.set_field("max-results", Value::from("7"));
///
/// let reg = infer_from_examples([(&flickr, &picasa)]);
/// assert!(reg.message_names_equivalent("flickr.photos.search", "picasa.photos.search"));
/// assert_eq!(reg.field_concept("text"), reg.field_concept("q"));
/// assert_eq!(reg.field_concept("per_page"), reg.field_concept("max-results"));
/// // api_key has no counterpart: left alone.
/// assert_ne!(reg.field_concept("api_key"), reg.field_concept("q"));
/// ```
pub fn infer_from_examples<'a, I>(pairs: I) -> SemanticRegistry
where
    I: IntoIterator<Item = (&'a AbstractMessage, &'a AbstractMessage)>,
{
    let mut reg = SemanticRegistry::new();
    // (label_a, label_b) → number of examples where the pair matched
    // unambiguously.
    let mut votes: HashMap<(String, String), usize> = HashMap::new();

    for (a, b) in pairs {
        reg.declare_message_concept(
            &format!(
                "inferred:{}+{}",
                normalize_label(a.name()),
                normalize_label(b.name())
            ),
            [a.name(), b.name()],
        );
        for fa in a.fields() {
            let value_a = fa.value().to_text();
            if value_a.is_empty() {
                continue;
            }
            let matches: Vec<&Field> = b
                .fields()
                .iter()
                .filter(|fb| fb.value().to_text() == value_a)
                .collect();
            if let [only] = matches.as_slice() {
                // Skip trivial identity (same normalised label): already
                // equivalent without a declaration.
                if normalize_label(fa.label()) != normalize_label(only.label()) {
                    *votes
                        .entry((normalize_label(fa.label()), normalize_label(only.label())))
                        .or_default() += 1;
                }
            }
        }
    }

    // Mutual best match: a→b must be a's top vote AND b's top vote.
    let mut best_a: HashMap<&str, (&str, usize)> = HashMap::new();
    let mut best_b: HashMap<&str, (&str, usize)> = HashMap::new();
    for ((la, lb), n) in &votes {
        if best_a.get(la.as_str()).map(|(_, m)| n > m).unwrap_or(true) {
            best_a.insert(la, (lb, *n));
        }
        if best_b.get(lb.as_str()).map(|(_, m)| n > m).unwrap_or(true) {
            best_b.insert(lb, (la, *n));
        }
    }
    for (la, (lb, _)) in &best_a {
        if best_b.get(*lb).map(|(back, _)| back == la).unwrap_or(false) {
            reg.declare_field_concept(&format!("inferred:{la}-{lb}"), [*la, *lb]);
        }
    }
    reg
}

fn contains_equivalent_field(reg: &SemanticRegistry, fields: &[Field], needed: &Field) -> bool {
    find_equivalent_field(reg, fields, needed).is_some()
}

fn find_equivalent_field<'m>(
    reg: &SemanticRegistry,
    fields: &'m [Field],
    needed: &Field,
) -> Option<&'m Field> {
    for f in fields {
        if reg.fields_equivalent(f, needed) {
            return Some(f);
        }
        if let Value::Struct(inner) = f.value() {
            if let Some(found) = find_equivalent_field(reg, inner, needed) {
                return Some(found);
            }
        }
        if let Value::Array(items) = f.value() {
            for item in items {
                if let Value::Struct(inner) = item {
                    if let Some(found) = find_equivalent_field(reg, inner, needed) {
                        return Some(found);
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation_folds_separators_and_case() {
        assert_eq!(normalize_label("per_page"), "perpage");
        assert_eq!(normalize_label("Per-Page"), "perpage");
        assert_eq!(
            normalize_label("flickr.photos.search"),
            "flickrphotossearch"
        );
    }

    #[test]
    fn identical_labels_equivalent_without_declarations() {
        let reg = SemanticRegistry::new();
        let a = Field::new("photo_id", Value::from("1"));
        let b = Field::new("PhotoId", Value::from("2"));
        assert!(reg.fields_equivalent(&a, &b));
    }

    #[test]
    fn declared_concepts_bridge_labels() {
        let mut reg = SemanticRegistry::new();
        reg.declare_field_concept("keyword", ["text", "q", "tags"]);
        let a = Field::new("text", Value::from("tree"));
        let b = Field::new("q", Value::from("tree"));
        let c = Field::new("unrelated", Value::from("tree"));
        assert!(reg.fields_equivalent(&a, &b));
        assert!(!reg.fields_equivalent(&a, &c));
    }

    #[test]
    fn type_incompatibility_blocks_equivalence() {
        let mut reg = SemanticRegistry::new();
        reg.declare_field_concept("k", ["a", "b"]);
        let a = Field::new("a", Value::Struct(vec![]));
        let b = Field::new("b", Value::Int(1));
        assert!(!reg.fields_equivalent(&a, &b));
    }

    #[test]
    fn def2_requires_all_mandatory_fields() {
        let mut reg = SemanticRegistry::new();
        reg.declare_field_concept("keyword", ["text", "q"]);
        reg.declare_field_concept("limit", ["per_page", "max-results"]);

        let mut flickr = AbstractMessage::new("flickr.photos.search");
        flickr.set_field("text", Value::from("tree"));
        flickr.set_field("per_page", Value::Int(3));

        let mut picasa = AbstractMessage::new("picasa.photo.search");
        picasa.set_field("q", Value::from("tree"));

        // per_page has no counterpart yet.
        assert!(!reg.messages_equivalent(&flickr, &picasa));
        picasa.set_field("max-results", Value::Int(3));
        assert!(reg.messages_equivalent(&flickr, &picasa));
    }

    #[test]
    fn optional_fields_do_not_block() {
        let reg = SemanticRegistry::new();
        let mut n = AbstractMessage::new("n");
        n.push_field(Field::optional("extra", Value::Int(9)));
        n.set_field("shared", Value::Int(1));
        let mut m = AbstractMessage::new("m");
        m.set_field("shared", Value::Int(2));
        assert!(reg.messages_equivalent(&n, &m));
    }

    #[test]
    fn sequence_equivalence_gathers_across_history() {
        // The Picasa photoSearch must be equivalent to the *sequence*
        // (flickr search, flickr getInfo) — a one-to-many mismatch.
        let mut reg = SemanticRegistry::new();
        reg.declare_field_concept("keyword", ["text", "q"]);
        reg.declare_field_concept("photo-ref", ["photo_id", "entry_id"]);

        let mut picasa = AbstractMessage::new("picasa.search");
        picasa.set_field("q", Value::from("tree"));
        picasa.set_field("entry_id", Value::from("e1"));

        let mut f_search = AbstractMessage::new("flickr.search");
        f_search.set_field("text", Value::from("tree"));
        let mut f_getinfo = AbstractMessage::new("flickr.getInfo");
        f_getinfo.set_field("photo_id", Value::from("p1"));

        assert!(!reg.message_equivalent_to_sequence(&picasa, &[f_search.clone()]));
        assert!(reg.message_equivalent_to_sequence(&picasa, &[f_search, f_getinfo]));
    }

    #[test]
    fn nested_fields_are_searched() {
        let reg = SemanticRegistry::new();
        let mut n = AbstractMessage::new("n");
        n.set_field("id", Value::from("x"));
        let mut m = AbstractMessage::new("m");
        m.set_path(&"body.entry.id".parse().unwrap(), Value::from("y"))
            .unwrap();
        assert!(reg.messages_equivalent(&n, &m));
    }

    #[test]
    fn message_name_equivalence() {
        let mut reg = SemanticRegistry::new();
        reg.declare_message_concept("search", ["flickr.photos.search", "picasa.photo.search"]);
        assert!(reg.message_names_equivalent("flickr.photos.search", "picasa.photo.search"));
        assert!(!reg.message_names_equivalent("flickr.photos.search", "other.op"));
        // Identity holds without declaration.
        assert!(reg.message_names_equivalent("a.b", "a.b"));
    }
}
