use crate::error::PathError;
use std::fmt;
use std::str::FromStr;

/// One step of a [`FieldPath`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PathSegment {
    /// Descend into the named field of a message or structure.
    Name(String),
    /// Index into an array value.
    Index(usize),
}

impl fmt::Display for PathSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathSegment::Name(n) => f.write_str(n),
            PathSegment::Index(i) => write!(f, "[{i}]"),
        }
    }
}

/// A selector naming a (possibly nested) field of an abstract message.
///
/// The paper writes `msg . field` for field selection (§3.1) and the MTL
/// examples use chained selectors such as
/// `S22.SOAPRqst → Params.param1` (Fig. 8–10). `FieldPath` is the parsed
/// form of the dotted part: `Params.param1`, `Body.entry[2].id`, ….
///
/// Grammar: `segment ('.' segment)*` where a segment is an identifier
/// (letters, digits, `_`, `-`, `:` — XML tag names may contain `:`)
/// optionally followed by one or more `[index]` suffixes.
///
/// # Example
///
/// ```
/// use starlink_message::FieldPath;
///
/// let p: FieldPath = "Params.param[0].value".parse()?;
/// assert_eq!(p.segments().len(), 4);
/// assert_eq!(p.to_string(), "Params.param[0].value");
/// # Ok::<(), starlink_message::PathError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FieldPath {
    segments: Vec<PathSegment>,
}

impl FieldPath {
    /// Builds a path from pre-parsed segments.
    ///
    /// Returns `None` if `segments` is empty — an empty path selects
    /// nothing and is always a caller bug.
    pub fn from_segments(segments: Vec<PathSegment>) -> Option<FieldPath> {
        if segments.is_empty() {
            None
        } else {
            Some(FieldPath { segments })
        }
    }

    /// Single-name path.
    pub fn name(name: impl Into<String>) -> FieldPath {
        FieldPath {
            segments: vec![PathSegment::Name(name.into())],
        }
    }

    /// The path's segments, in order.
    pub fn segments(&self) -> &[PathSegment] {
        &self.segments
    }

    /// First segment.
    pub fn head(&self) -> &PathSegment {
        &self.segments[0]
    }

    /// Path with the first segment removed; `None` if this was the last.
    pub fn tail(&self) -> Option<FieldPath> {
        if self.segments.len() <= 1 {
            None
        } else {
            Some(FieldPath {
                segments: self.segments[1..].to_vec(),
            })
        }
    }

    /// Appends a name segment, returning the extended path.
    #[must_use]
    pub fn child(&self, name: impl Into<String>) -> FieldPath {
        let mut segments = self.segments.clone();
        segments.push(PathSegment::Name(name.into()));
        FieldPath { segments }
    }

    /// Appends an index segment, returning the extended path.
    #[must_use]
    pub fn at(&self, index: usize) -> FieldPath {
        let mut segments = self.segments.clone();
        segments.push(PathSegment::Index(index));
        FieldPath { segments }
    }
}

impl fmt::Display for FieldPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for seg in &self.segments {
            match seg {
                PathSegment::Name(n) => {
                    if !first {
                        f.write_str(".")?;
                    }
                    f.write_str(n)?;
                }
                PathSegment::Index(i) => write!(f, "[{i}]")?,
            }
            first = false;
        }
        Ok(())
    }
}

impl FromStr for FieldPath {
    type Err = PathError;

    fn from_str(s: &str) -> Result<FieldPath, PathError> {
        if s.is_empty() {
            return Err(PathError::Empty);
        }
        let mut segments = Vec::new();
        let bytes = s.as_bytes();
        let mut i = 0usize;
        let mut expect_name = true;
        while i < bytes.len() {
            match bytes[i] {
                b'.' => {
                    if expect_name {
                        return Err(PathError::EmptySegment { offset: i });
                    }
                    expect_name = true;
                    i += 1;
                }
                b'[' => {
                    if expect_name {
                        // `[0]` directly after `.` or at start is invalid.
                        return Err(PathError::BadCharacter { ch: '[', offset: i });
                    }
                    let close =
                        s[i..]
                            .find(']')
                            .map(|off| i + off)
                            .ok_or_else(|| PathError::BadIndex {
                                text: s[i..].to_owned(),
                            })?;
                    let inner = &s[i + 1..close];
                    let index: usize = inner.parse().map_err(|_| PathError::BadIndex {
                        text: inner.to_owned(),
                    })?;
                    segments.push(PathSegment::Index(index));
                    i = close + 1;
                }
                _ => {
                    if !expect_name {
                        return Err(PathError::BadCharacter {
                            ch: s[i..].chars().next().unwrap_or('?'),
                            offset: i,
                        });
                    }
                    let start = i;
                    while i < bytes.len() && bytes[i] != b'.' && bytes[i] != b'[' {
                        let c = bytes[i] as char;
                        if !(c.is_alphanumeric() || matches!(c, '_' | '-' | ':' | '*')) {
                            return Err(PathError::BadCharacter { ch: c, offset: i });
                        }
                        i += 1;
                    }
                    segments.push(PathSegment::Name(s[start..i].to_owned()));
                    expect_name = false;
                }
            }
        }
        if expect_name {
            return Err(PathError::EmptySegment { offset: s.len() });
        }
        FieldPath::from_segments(segments).ok_or(PathError::Empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_path() {
        let p: FieldPath = "Operation".parse().unwrap();
        assert_eq!(p.segments(), &[PathSegment::Name("Operation".into())]);
    }

    #[test]
    fn dotted_path() {
        let p: FieldPath = "Params.param1".parse().unwrap();
        assert_eq!(p.segments().len(), 2);
        assert_eq!(p.to_string(), "Params.param1");
    }

    #[test]
    fn indexed_path() {
        let p: FieldPath = "Body.entry[3].id".parse().unwrap();
        assert_eq!(
            p.segments(),
            &[
                PathSegment::Name("Body".into()),
                PathSegment::Name("entry".into()),
                PathSegment::Index(3),
                PathSegment::Name("id".into()),
            ]
        );
        assert_eq!(p.to_string(), "Body.entry[3].id");
    }

    #[test]
    fn xml_style_names() {
        let p: FieldPath = "soap:Envelope.soap:Body".parse().unwrap();
        assert_eq!(p.segments().len(), 2);
    }

    #[test]
    fn rejects_malformed() {
        assert!("".parse::<FieldPath>().is_err());
        assert!("a..b".parse::<FieldPath>().is_err());
        assert!("a.".parse::<FieldPath>().is_err());
        assert!(".a".parse::<FieldPath>().is_err());
        assert!("a[".parse::<FieldPath>().is_err());
        assert!("a[x]".parse::<FieldPath>().is_err());
        assert!("[0]".parse::<FieldPath>().is_err());
        assert!("a b".parse::<FieldPath>().is_err());
    }

    #[test]
    fn head_tail_decomposition() {
        let p: FieldPath = "a.b.c".parse().unwrap();
        assert_eq!(p.head(), &PathSegment::Name("a".into()));
        let t = p.tail().unwrap();
        assert_eq!(t.to_string(), "b.c");
        assert!(t.tail().unwrap().tail().is_none());
    }

    #[test]
    fn builders_extend() {
        let p = FieldPath::name("Params").child("param").at(0);
        assert_eq!(p.to_string(), "Params.param[0]");
    }

    #[test]
    fn roundtrip_display_parse() {
        for text in ["a", "a.b", "a[0].b", "ns:tag.x[12]"] {
            let p: FieldPath = text.parse().unwrap();
            assert_eq!(p.to_string(), text);
            let again: FieldPath = p.to_string().parse().unwrap();
            assert_eq!(again, p);
        }
    }
}
