use crate::message::AbstractMessage;
use std::fmt;

/// Whether a message was sent (`!`) or received (`?`) — the `Act` set of
/// the automaton definition (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `!m` — the message was sent (an operation was invoked).
    Sent,
    /// `?m` — the message was received (an invocation reply arrived).
    Received,
}

impl Direction {
    /// The paper's one-character notation: `!` for sent, `?` for received.
    pub fn symbol(self) -> char {
        match self {
            Direction::Sent => '!',
            Direction::Received => '?',
        }
    }

    /// The opposite direction.
    #[must_use]
    pub fn flipped(self) -> Direction {
        match self {
            Direction::Sent => Direction::Received,
            Direction::Received => Direction::Sent,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// One entry of a message history: a message observed at a given automaton
/// state, with its direction.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Identifier of the state at which the message was observed.
    pub state: String,
    /// Whether the message was sent or received.
    pub direction: Direction,
    /// The observed message.
    pub message: AbstractMessage,
}

/// The sequence of abstract messages exchanged so far along an automaton
/// run — the domain of the history operator `⇒` (paper Def. 4).
///
/// `s1 !m⟹ s2` "gives the sequence of abstract messages sent from state s1
/// to s2"; at runtime the automata engine records every send/receive here
/// so that MTL translations and the `≅` operator can draw on earlier
/// messages (one-to-many mismatches, the Flickr `getInfo` case).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct History {
    entries: Vec<HistoryEntry>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> History {
        History::default()
    }

    /// Records a message observation.
    pub fn record(
        &mut self,
        state: impl Into<String>,
        direction: Direction,
        message: AbstractMessage,
    ) {
        self.entries.push(HistoryEntry {
            state: state.into(),
            direction,
            message,
        });
    }

    /// All entries in observation order.
    pub fn entries(&self) -> &[HistoryEntry] {
        &self.entries
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no message has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Messages observed with the given direction, oldest first —
    /// the `s0 !m⟹ si` / `s0 ?m⟹ si` sequences of Def. 4.
    pub fn with_direction(&self, direction: Direction) -> impl Iterator<Item = &HistoryEntry> {
        self.entries
            .iter()
            .filter(move |e| e.direction == direction)
    }

    /// The most recent message observed at the given state, if any.
    pub fn at_state(&self, state: &str) -> Option<&HistoryEntry> {
        self.entries.iter().rev().find(|e| e.state == state)
    }

    /// The most recent message with the given name, if any.
    pub fn by_name(&self, name: &str) -> Option<&HistoryEntry> {
        self.entries.iter().rev().find(|e| e.message.name() == name)
    }

    /// The most recent entry, if any.
    pub fn last(&self) -> Option<&HistoryEntry> {
        self.entries.last()
    }

    /// Drops all entries (a mediator session reset).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return f.write_str("(empty history)");
        }
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                f.write_str(" ; ")?;
            }
            write!(f, "{}{}@{}", e.direction, e.message.name(), e.state)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn msg(name: &str) -> AbstractMessage {
        let mut m = AbstractMessage::new(name);
        m.set_field("f", Value::Int(1));
        m
    }

    #[test]
    fn direction_symbols() {
        assert_eq!(Direction::Sent.symbol(), '!');
        assert_eq!(Direction::Received.symbol(), '?');
        assert_eq!(Direction::Sent.flipped(), Direction::Received);
    }

    #[test]
    fn record_and_query() {
        let mut h = History::new();
        h.record("s0", Direction::Sent, msg("search"));
        h.record("s1", Direction::Received, msg("searchReply"));
        h.record("s1", Direction::Received, msg("searchReply2"));

        assert_eq!(h.len(), 2 + 1);
        assert_eq!(h.with_direction(Direction::Sent).count(), 1);
        assert_eq!(h.at_state("s1").unwrap().message.name(), "searchReply2");
        assert_eq!(h.by_name("search").unwrap().state, "s0");
        assert!(h.by_name("absent").is_none());
    }

    #[test]
    fn latest_entry_wins_for_state_lookup() {
        let mut h = History::new();
        h.record("s", Direction::Sent, msg("a"));
        h.record("s", Direction::Sent, msg("b"));
        assert_eq!(h.at_state("s").unwrap().message.name(), "b");
    }

    #[test]
    fn display_compact() {
        let mut h = History::new();
        assert_eq!(h.to_string(), "(empty history)");
        h.record("s0", Direction::Sent, msg("add"));
        h.record("s1", Direction::Received, msg("addReply"));
        assert_eq!(h.to_string(), "!add@s0 ; ?addReply@s1");
    }

    #[test]
    fn clear_resets() {
        let mut h = History::new();
        h.record("s0", Direction::Sent, msg("a"));
        h.clear();
        assert!(h.is_empty());
        assert!(h.last().is_none());
    }
}
