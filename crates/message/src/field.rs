use crate::value::Value;
use std::fmt;

/// Declared wire type of a primitive field, as written in MDL specs.
///
/// The paper's primitive field carries "a type describing the type of the
/// data content" and "a length defining the length in bits of the field"
/// (§3.1). `FieldType` captures the former; the latter lives on
/// [`Field::length_bits`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FieldType {
    /// Signed integer (width given by the field length).
    Int,
    /// Unsigned integer (width given by the field length).
    UInt,
    /// IEEE-754 float (32- or 64-bit per the field length).
    Float,
    /// Boolean (one octet on the wire unless stated otherwise).
    Bool,
    /// UTF-8 (or ASCII) text.
    Text,
    /// Opaque octets.
    Opaque,
    /// A structured field composed of sub-fields.
    Structured,
    /// A repeated sequence of values.
    Sequence,
}

impl FieldType {
    /// Infers the most natural declared type for a value.
    pub fn of(value: &Value) -> FieldType {
        match value {
            Value::Null => FieldType::Opaque,
            Value::Int(_) => FieldType::Int,
            Value::UInt(_) => FieldType::UInt,
            Value::Float(_) => FieldType::Float,
            Value::Bool(_) => FieldType::Bool,
            Value::Str(_) => FieldType::Text,
            Value::Bytes(_) => FieldType::Opaque,
            Value::Struct(_) => FieldType::Structured,
            Value::Array(_) => FieldType::Sequence,
        }
    }
}

impl fmt::Display for FieldType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FieldType::Int => "int",
            FieldType::UInt => "uint",
            FieldType::Float => "float",
            FieldType::Bool => "bool",
            FieldType::Text => "text",
            FieldType::Opaque => "opaque",
            FieldType::Structured => "structured",
            FieldType::Sequence => "sequence",
        };
        f.write_str(s)
    }
}

/// A labelled field of an abstract message.
///
/// Per paper §3.1 a primitive field is `(label, type, length, value)`;
/// a structured field is "composed of multiple primitive fields"
/// (represented by a [`Value::Struct`] value). The `mandatory` flag feeds
/// the `Mfields(n)` set used by the semantic-equivalence operator `≅`
/// (Def. 2): only mandatory fields must find an equivalent counterpart.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    label: String,
    field_type: FieldType,
    length_bits: Option<u32>,
    value: Value,
    mandatory: bool,
}

impl Field {
    /// Creates a mandatory field with a type inferred from the value.
    pub fn new(label: impl Into<String>, value: Value) -> Field {
        let field_type = FieldType::of(&value);
        Field {
            label: label.into(),
            field_type,
            length_bits: None,
            value,
            mandatory: true,
        }
    }

    /// Creates an optional field (not counted in `Mfields`).
    pub fn optional(label: impl Into<String>, value: Value) -> Field {
        let mut f = Field::new(label, value);
        f.mandatory = false;
        f
    }

    /// Builder-style: declares the wire length in bits.
    #[must_use]
    pub fn with_length_bits(mut self, bits: u32) -> Field {
        self.length_bits = Some(bits);
        self
    }

    /// Builder-style: overrides the declared type.
    #[must_use]
    pub fn with_type(mut self, field_type: FieldType) -> Field {
        self.field_type = field_type;
        self
    }

    /// Builder-style: sets the mandatory flag.
    #[must_use]
    pub fn with_mandatory(mut self, mandatory: bool) -> Field {
        self.mandatory = mandatory;
        self
    }

    /// The field's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The field's declared wire type.
    pub fn field_type(&self) -> FieldType {
        self.field_type
    }

    /// Declared wire length in bits, when fixed.
    pub fn length_bits(&self) -> Option<u32> {
        self.length_bits
    }

    /// The field's value.
    pub fn value(&self) -> &Value {
        &self.value
    }

    /// Mutable access to the field's value.
    pub fn value_mut(&mut self) -> &mut Value {
        &mut self.value
    }

    /// Replaces the value, keeping label and metadata.
    pub fn set_value(&mut self, value: Value) {
        self.value = value;
    }

    /// Consumes the field, returning its value.
    pub fn into_value(self) -> Value {
        self.value
    }

    /// Whether the field is mandatory (member of `Mfields`).
    pub fn is_mandatory(&self) -> bool {
        self.mandatory
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} = {}", self.label, self.field_type, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inferred_types() {
        assert_eq!(Field::new("a", Value::Int(1)).field_type(), FieldType::Int);
        assert_eq!(
            Field::new("a", Value::from("s")).field_type(),
            FieldType::Text
        );
        assert_eq!(
            Field::new("a", Value::Struct(vec![])).field_type(),
            FieldType::Structured
        );
    }

    #[test]
    fn builder_chain() {
        let f = Field::new("RequestID", Value::UInt(7))
            .with_length_bits(32)
            .with_mandatory(false);
        assert_eq!(f.length_bits(), Some(32));
        assert!(!f.is_mandatory());
    }

    #[test]
    fn optional_constructor() {
        assert!(!Field::optional("per_page", Value::Int(10)).is_mandatory());
    }

    #[test]
    fn display_format() {
        let f = Field::new("op", Value::from("add"));
        assert_eq!(f.to_string(), "op: text = add");
    }
}
