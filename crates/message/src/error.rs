use std::fmt;

/// Errors produced when manipulating abstract messages.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MessageError {
    /// A field named by a selector does not exist in the message.
    FieldNotFound {
        /// Name of the message that was searched.
        message: String,
        /// The path that failed to resolve.
        path: String,
    },
    /// A path step tried to descend into a value that has no children.
    NotAStructure {
        /// The path that failed to resolve.
        path: String,
        /// Human-readable description of the value actually found.
        found: &'static str,
    },
    /// An array index was out of bounds.
    IndexOutOfBounds {
        /// The path that failed to resolve.
        path: String,
        /// The requested index.
        index: usize,
        /// The actual array length.
        len: usize,
    },
    /// A value had a different type than the operation required.
    TypeMismatch {
        /// What the operation expected.
        expected: &'static str,
        /// Description of the value actually found.
        found: &'static str,
    },
    /// A malformed field path string.
    Path(PathError),
}

impl fmt::Display for MessageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MessageError::FieldNotFound { message, path } => {
                write!(f, "field `{path}` not found in message `{message}`")
            }
            MessageError::NotAStructure { path, found } => {
                write!(
                    f,
                    "path `{path}` descends into non-structured value ({found})"
                )
            }
            MessageError::IndexOutOfBounds { path, index, len } => {
                write!(f, "index {index} out of bounds (len {len}) at `{path}`")
            }
            MessageError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            MessageError::Path(e) => write!(f, "invalid field path: {e}"),
        }
    }
}

impl std::error::Error for MessageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MessageError::Path(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PathError> for MessageError {
    fn from(e: PathError) -> Self {
        MessageError::Path(e)
    }
}

/// Errors produced when parsing a [`crate::FieldPath`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PathError {
    /// The path string was empty.
    Empty,
    /// A path segment was empty (e.g. `a..b`).
    EmptySegment {
        /// Byte offset of the offending segment.
        offset: usize,
    },
    /// An index bracket was malformed (e.g. `a[`, `a[x]`).
    BadIndex {
        /// The text inside (or around) the brackets.
        text: String,
    },
    /// Unexpected character in a segment.
    BadCharacter {
        /// The offending character.
        ch: char,
        /// Byte offset of the character.
        offset: usize,
    },
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Empty => write!(f, "empty path"),
            PathError::EmptySegment { offset } => {
                write!(f, "empty path segment at offset {offset}")
            }
            PathError::BadIndex { text } => write!(f, "malformed index `{text}`"),
            PathError::BadCharacter { ch, offset } => {
                write!(f, "unexpected character `{ch}` at offset {offset}")
            }
        }
    }
}

impl std::error::Error for PathError {}
