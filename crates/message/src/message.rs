use crate::error::MessageError;
use crate::field::Field;
use crate::path::{FieldPath, PathSegment};
use crate::value::Value;
use crate::Result;
use std::fmt;

/// An abstract message: the protocol- and application-neutral unit of
/// interaction in Starlink.
///
/// A message has a *name* (the paper abstracts the invocation
/// `rvalue operation(arg1..argn)` as a sent message named `operation` and a
/// received message named `rvalue`, §3.1) and an ordered list of fields.
/// Field order matters because binary composers emit fields in order.
///
/// # Example
///
/// ```
/// use starlink_message::{AbstractMessage, Field, Value};
///
/// let mut msg = AbstractMessage::new("GIOPRequest");
/// msg.push_field(Field::new("RequestID", Value::UInt(42)).with_length_bits(32));
/// msg.set_path(&"Params.param1".parse()?, Value::Int(7))?;
///
/// assert_eq!(msg.get_path(&"Params.param1".parse()?)?.as_int(), Some(7));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AbstractMessage {
    name: String,
    fields: Vec<Field>,
}

impl AbstractMessage {
    /// Creates an empty message with the given name.
    pub fn new(name: impl Into<String>) -> AbstractMessage {
        AbstractMessage {
            name: name.into(),
            fields: Vec::new(),
        }
    }

    /// The message name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the message (used when a mediator re-labels an action).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The message's top-level fields, in wire order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Mutable access to the top-level fields.
    pub fn fields_mut(&mut self) -> &mut Vec<Field> {
        &mut self.fields
    }

    /// Appends a field (keeps duplicates; see [`AbstractMessage::set_field`]
    /// for upsert semantics).
    pub fn push_field(&mut self, field: Field) {
        self.fields.push(field);
    }

    /// Upserts a top-level field by label.
    pub fn set_field(&mut self, label: &str, value: Value) {
        if let Some(f) = self.fields.iter_mut().find(|f| f.label() == label) {
            f.set_value(value);
        } else {
            self.fields.push(Field::new(label, value));
        }
    }

    /// Looks up a top-level field's value by label.
    pub fn get(&self, label: &str) -> Option<&Value> {
        self.fields
            .iter()
            .find(|f| f.label() == label)
            .map(Field::value)
    }

    /// Looks up a top-level field by label.
    pub fn field(&self, label: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.label() == label)
    }

    /// Mutable top-level field lookup.
    pub fn field_mut(&mut self, label: &str) -> Option<&mut Field> {
        self.fields.iter_mut().find(|f| f.label() == label)
    }

    /// Removes a top-level field by label, returning it if present.
    pub fn remove_field(&mut self, label: &str) -> Option<Field> {
        let idx = self.fields.iter().position(|f| f.label() == label)?;
        Some(self.fields.remove(idx))
    }

    /// The mandatory fields of the message — `Mfields(n)` in Def. 2.
    pub fn mandatory_fields(&self) -> impl Iterator<Item = &Field> {
        self.fields.iter().filter(|f| f.is_mandatory())
    }

    /// Resolves a (possibly nested) path to a value.
    ///
    /// # Errors
    ///
    /// Returns [`MessageError::FieldNotFound`], [`MessageError::NotAStructure`]
    /// or [`MessageError::IndexOutOfBounds`] when the path does not resolve.
    pub fn get_path(&self, path: &FieldPath) -> Result<&Value> {
        let mut segments = path.segments().iter();
        let first = segments.next().expect("FieldPath is never empty");
        let mut current: &Value = match first {
            PathSegment::Name(n) => self.get(n).ok_or_else(|| MessageError::FieldNotFound {
                message: self.name.clone(),
                path: path.to_string(),
            })?,
            PathSegment::Index(_) => {
                return Err(MessageError::NotAStructure {
                    path: path.to_string(),
                    found: "message root",
                })
            }
        };
        for seg in segments {
            current = descend(current, seg, path)?;
        }
        Ok(current)
    }

    /// Mutable variant of [`AbstractMessage::get_path`].
    ///
    /// # Errors
    ///
    /// Same as [`AbstractMessage::get_path`].
    pub fn get_path_mut(&mut self, path: &FieldPath) -> Result<&mut Value> {
        let segments = path.segments();
        let name = match &segments[0] {
            PathSegment::Name(n) => n.clone(),
            PathSegment::Index(_) => {
                return Err(MessageError::NotAStructure {
                    path: path.to_string(),
                    found: "message root",
                })
            }
        };
        let message_name = self.name.clone();
        let field = self.field_mut(&name).ok_or(MessageError::FieldNotFound {
            message: message_name,
            path: path.to_string(),
        })?;
        let mut current = field.value_mut();
        for seg in &segments[1..] {
            current = descend_mut(current, seg, path)?;
        }
        Ok(current)
    }

    /// Resolves a path, walking into structures/arrays, creating missing
    /// intermediate structures, and sets the final value.
    ///
    /// Missing *name* segments are created as new fields (with `Struct`
    /// values for intermediates). Index segments extend arrays with `Null`
    /// padding when the index is exactly one past the end, so sequential
    /// `set_path(..[0]..)`, `set_path(..[1]..)` builds an array naturally.
    ///
    /// # Errors
    ///
    /// Returns [`MessageError::NotAStructure`] when descending into a
    /// primitive, or [`MessageError::IndexOutOfBounds`] for a sparse index.
    pub fn set_path(&mut self, path: &FieldPath, value: Value) -> Result<()> {
        let segments = path.segments();
        let first = &segments[0];
        let name = match first {
            PathSegment::Name(n) => n.clone(),
            PathSegment::Index(_) => {
                return Err(MessageError::NotAStructure {
                    path: path.to_string(),
                    found: "message root",
                })
            }
        };
        if segments.len() == 1 {
            self.set_field(&name, value);
            return Ok(());
        }
        if self.field(&name).is_none() {
            let placeholder = match segments[1] {
                PathSegment::Index(_) => Value::Array(Vec::new()),
                PathSegment::Name(_) => Value::Struct(Vec::new()),
            };
            self.push_field(Field::new(name.clone(), placeholder));
        }
        let field = self
            .field_mut(&name)
            .expect("field was just ensured to exist");
        set_in_value(field.value_mut(), &segments[1..], value, path)
    }

    /// Total number of primitive leaves across all fields.
    pub fn leaf_count(&self) -> usize {
        self.fields.iter().map(|f| f.value().leaf_count()).sum()
    }
}

impl fmt::Display for AbstractMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{field}")?;
        }
        f.write_str(")")
    }
}

/// Resolves a path *inside* a bare [`Value`] (for callers holding values
/// outside any message, e.g. MTL local variables).
///
/// # Errors
///
/// Same as [`AbstractMessage::get_path`].
pub fn get_value_path<'a>(value: &'a Value, path: &FieldPath) -> Result<&'a Value> {
    let mut current = value;
    for seg in path.segments() {
        current = descend(current, seg, path)?;
    }
    Ok(current)
}

/// Sets a path *inside* a bare [`Value`], creating intermediate
/// structures the same way [`AbstractMessage::set_path`] does. The root
/// value is auto-vivified from `Null` when needed.
///
/// # Errors
///
/// Same as [`AbstractMessage::set_path`].
pub fn set_value_path(target: &mut Value, path: &FieldPath, value: Value) -> Result<()> {
    set_in_value(target, path.segments(), value, path)
}

fn descend<'a>(value: &'a Value, seg: &PathSegment, full: &FieldPath) -> Result<&'a Value> {
    match seg {
        PathSegment::Name(n) => match value {
            Value::Struct(fields) => fields
                .iter()
                .find(|f| f.label() == n)
                .map(Field::value)
                .ok_or_else(|| MessageError::FieldNotFound {
                    message: String::new(),
                    path: full.to_string(),
                }),
            other => Err(MessageError::NotAStructure {
                path: full.to_string(),
                found: other.kind(),
            }),
        },
        PathSegment::Index(i) => match value {
            Value::Array(items) => items.get(*i).ok_or_else(|| MessageError::IndexOutOfBounds {
                path: full.to_string(),
                index: *i,
                len: items.len(),
            }),
            other => Err(MessageError::NotAStructure {
                path: full.to_string(),
                found: other.kind(),
            }),
        },
    }
}

/// Mutable variant of [`get_value_path`].
///
/// # Errors
///
/// Same as [`AbstractMessage::get_path`].
pub fn get_value_path_mut<'a>(value: &'a mut Value, path: &FieldPath) -> Result<&'a mut Value> {
    let mut current = value;
    for seg in path.segments() {
        current = descend_mut(current, seg, path)?;
    }
    Ok(current)
}

fn descend_mut<'a>(
    value: &'a mut Value,
    seg: &PathSegment,
    full: &FieldPath,
) -> Result<&'a mut Value> {
    let kind = value.kind();
    match seg {
        PathSegment::Name(n) => match value {
            Value::Struct(fields) => fields
                .iter_mut()
                .find(|f| f.label() == n)
                .map(Field::value_mut)
                .ok_or_else(|| MessageError::FieldNotFound {
                    message: String::new(),
                    path: full.to_string(),
                }),
            _ => Err(MessageError::NotAStructure {
                path: full.to_string(),
                found: kind,
            }),
        },
        PathSegment::Index(i) => match value {
            Value::Array(items) => {
                let len = items.len();
                items.get_mut(*i).ok_or(MessageError::IndexOutOfBounds {
                    path: full.to_string(),
                    index: *i,
                    len,
                })
            }
            _ => Err(MessageError::NotAStructure {
                path: full.to_string(),
                found: kind,
            }),
        },
    }
}

fn set_in_value(
    current: &mut Value,
    rest: &[PathSegment],
    value: Value,
    full: &FieldPath,
) -> Result<()> {
    let (seg, remaining) = rest.split_first().expect("rest is non-empty");
    match seg {
        PathSegment::Name(n) => {
            // Auto-vivify nulls into structures so deep sets "just work".
            if current.is_null() {
                *current = Value::Struct(Vec::new());
            }
            let kind = current.kind();
            let fields = current
                .as_struct_mut()
                .ok_or_else(|| MessageError::NotAStructure {
                    path: full.to_string(),
                    found: kind,
                })?;
            if !fields.iter().any(|f| f.label() == n) {
                let placeholder = if remaining.is_empty() {
                    Value::Null
                } else {
                    match remaining[0] {
                        PathSegment::Index(_) => Value::Array(Vec::new()),
                        PathSegment::Name(_) => Value::Struct(Vec::new()),
                    }
                };
                fields.push(Field::new(n.clone(), placeholder));
            }
            let slot = fields
                .iter_mut()
                .find(|f| f.label() == n)
                .expect("field was just ensured to exist");
            if remaining.is_empty() {
                slot.set_value(value);
                Ok(())
            } else {
                set_in_value(slot.value_mut(), remaining, value, full)
            }
        }
        PathSegment::Index(i) => {
            if current.is_null() {
                *current = Value::Array(Vec::new());
            }
            let kind = current.kind();
            let items = current
                .as_array_mut()
                .ok_or_else(|| MessageError::NotAStructure {
                    path: full.to_string(),
                    found: kind,
                })?;
            if *i == items.len() {
                items.push(Value::Null);
            } else if *i > items.len() {
                return Err(MessageError::IndexOutOfBounds {
                    path: full.to_string(),
                    index: *i,
                    len: items.len(),
                });
            }
            let slot = &mut items[*i];
            if remaining.is_empty() {
                *slot = value;
                Ok(())
            } else {
                set_in_value(slot, remaining, value, full)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(s: &str) -> FieldPath {
        s.parse().unwrap()
    }

    #[test]
    fn upsert_semantics() {
        let mut m = AbstractMessage::new("m");
        m.set_field("a", Value::Int(1));
        m.set_field("a", Value::Int(2));
        assert_eq!(m.fields().len(), 1);
        assert_eq!(m.get("a").unwrap().as_int(), Some(2));
    }

    #[test]
    fn nested_get_set() {
        let mut m = AbstractMessage::new("GIOPRequest");
        m.set_path(&path("Params.param1"), Value::Int(7)).unwrap();
        m.set_path(&path("Params.param2"), Value::Int(8)).unwrap();
        assert_eq!(
            m.get_path(&path("Params.param1")).unwrap().as_int(),
            Some(7)
        );
        assert_eq!(
            m.get_path(&path("Params.param2")).unwrap().as_int(),
            Some(8)
        );
        // Intermediate is a struct field.
        assert_eq!(m.get("Params").unwrap().as_struct().unwrap().len(), 2);
    }

    #[test]
    fn array_building_by_sequential_indexes() {
        let mut m = AbstractMessage::new("feed");
        m.set_path(&path("entries[0].id"), Value::from("p1"))
            .unwrap();
        m.set_path(&path("entries[1].id"), Value::from("p2"))
            .unwrap();
        let arr = m.get_path(&path("entries")).unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(
            m.get_path(&path("entries[1].id")).unwrap().as_str(),
            Some("p2")
        );
    }

    #[test]
    fn sparse_index_rejected() {
        let mut m = AbstractMessage::new("m");
        let err = m.set_path(&path("a[3]"), Value::Int(1)).unwrap_err();
        assert!(matches!(err, MessageError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn descend_into_primitive_fails() {
        let mut m = AbstractMessage::new("m");
        m.set_field("a", Value::Int(1));
        let err = m.get_path(&path("a.b")).unwrap_err();
        assert!(matches!(err, MessageError::NotAStructure { .. }));
        let err = m.set_path(&path("a.b"), Value::Int(2)).unwrap_err();
        assert!(matches!(err, MessageError::NotAStructure { .. }));
    }

    #[test]
    fn missing_field_error_names_message() {
        let m = AbstractMessage::new("GIOPReply");
        let err = m.get_path(&path("nope")).unwrap_err();
        match err {
            MessageError::FieldNotFound { message, .. } => assert_eq!(message, "GIOPReply"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn mandatory_fields_iterator() {
        let mut m = AbstractMessage::new("m");
        m.push_field(Field::new("must", Value::Int(1)));
        m.push_field(Field::optional("may", Value::Int(2)));
        let labels: Vec<&str> = m.mandatory_fields().map(Field::label).collect();
        assert_eq!(labels, vec!["must"]);
    }

    #[test]
    fn display_is_readable() {
        let mut m = AbstractMessage::new("Add");
        m.set_field("x", Value::Int(1));
        m.set_field("y", Value::Int(2));
        assert_eq!(m.to_string(), "Add(x: int = 1, y: int = 2)");
    }

    #[test]
    fn remove_field_roundtrip() {
        let mut m = AbstractMessage::new("m");
        m.set_field("a", Value::Int(1));
        let f = m.remove_field("a").unwrap();
        assert_eq!(f.label(), "a");
        assert!(m.get("a").is_none());
        assert!(m.remove_field("a").is_none());
    }

    #[test]
    fn null_autovivifies_on_deep_set() {
        let mut m = AbstractMessage::new("m");
        m.set_path(&path("a[0]"), Value::Null).unwrap();
        m.set_path(&path("a[0].inner"), Value::Int(5)).unwrap();
        assert_eq!(m.get_path(&path("a[0].inner")).unwrap().as_int(), Some(5));
    }
}
