//! Abstract message representation for the Starlink interoperability
//! framework.
//!
//! Starlink (Bromberg et al., MIDDLEWARE 2011) models every interaction —
//! whether an application-level operation invocation or a middleware
//! protocol packet — as an **abstract message**: a named, ordered set of
//! fields. A *primitive* field carries a label, a type, an optional wire
//! length and a value; a *structured* field is composed of nested fields
//! (paper §3.1).
//!
//! This crate provides:
//!
//! * [`Value`] — the dynamic value model (integers, floats, booleans,
//!   strings, byte blobs, structures and arrays),
//! * [`Field`] — a labelled value with wire metadata and a mandatory flag,
//! * [`AbstractMessage`] — the message itself,
//! * [`FieldPath`] — `msg.field.sub[2]` selectors used by the MTL
//!   translation language and the protocol binding rules,
//! * [`equiv`] — the semantic-equivalence operator `≅` of paper §3.2,
//! * [`History`] — the message history used by the `⇒` operator of §3.3.
//!
//! # Example
//!
//! ```
//! use starlink_message::{AbstractMessage, Value};
//!
//! // The paper abstracts `rvalue operation(arg1..argn)` as two messages:
//! // an outgoing `operation` message and an incoming `rvalue` message.
//! let mut search = AbstractMessage::new("flickr.photos.search");
//! search.set_field("api_key", Value::from("abc123"));
//! search.set_field("text", Value::from("tree"));
//! search.set_field("per_page", Value::from(3i64));
//!
//! assert_eq!(search.get("text").unwrap().as_str(), Some("tree"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod field;
mod history;
mod message;
mod path;
mod value;

pub mod equiv;

pub use error::{MessageError, PathError};
pub use field::{Field, FieldType};
pub use history::{Direction, History, HistoryEntry};
pub use message::{get_value_path, get_value_path_mut, set_value_path, AbstractMessage};
pub use path::{FieldPath, PathSegment};
pub use value::Value;

/// Convenience result alias used across this crate.
pub type Result<T> = std::result::Result<T, MessageError>;
