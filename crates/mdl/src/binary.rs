//! The binary MDL dialect engine: Fig. 5-style bit-level message specs.
//!
//! Supported field items inside a `<Message:…>` block:
//!
//! * `<Name:32>` — fixed-length field, length in **bits**; optional type
//!   suffix `<Name:32:int>` (`uint` default, `int`, `float`, `text`,
//!   `opaque`),
//! * `<Name:OtherField>` — variable-length field whose length in **bytes**
//!   is the value of the previously read field `OtherField` (the composer
//!   fills the length field in automatically),
//! * `<Name:eof>` — the field extends to the end of the message; type
//!   suffix `opaque` (default), `text`, or `valueseq` (a self-describing
//!   tagged encoding of a [`Value`] sequence, standing in for CDR-encoded
//!   GIOP parameter arrays — see [`encode_value`]),
//! * `<Name:32:remaining>` — the field's value is the number of bytes that
//!   follow it (GIOP's `MessageSize`); checked on parse, computed on
//!   compose (at most one per message),
//! * `<align:64>` — advance/pad to the next 64-bit boundary,
//! * `<Rule:Name=Value>` — guard: when parsing, the field `Name` must hold
//!   `Value` for this variant to match; when composing, supplies the value
//!   if the abstract message omits the field.

use crate::ast::{Endian, MessageSpec, SpecItem};
use crate::bits::{BitReader, BitWriter};
use crate::dispatch::{BitTest, Probe};
use crate::error::MdlError;
use crate::Result;
use starlink_message::{AbstractMessage, Field, FieldType, Value};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BinType {
    Int,
    UInt,
    Float,
    Text,
    Opaque,
    ValueSeq,
}

impl BinType {
    fn parse(s: &str, line: usize) -> Result<BinType> {
        match s {
            "int" => Ok(BinType::Int),
            "uint" => Ok(BinType::UInt),
            "float" => Ok(BinType::Float),
            "text" => Ok(BinType::Text),
            "opaque" => Ok(BinType::Opaque),
            "valueseq" => Ok(BinType::ValueSeq),
            other => Err(MdlError::SpecSyntax {
                message: format!("unknown binary field type `{other}`"),
                line,
            }),
        }
    }

    fn field_type(self) -> FieldType {
        match self {
            BinType::Int => FieldType::Int,
            BinType::UInt => FieldType::UInt,
            BinType::Float => FieldType::Float,
            BinType::Text => FieldType::Text,
            BinType::Opaque => FieldType::Opaque,
            BinType::ValueSeq => FieldType::Sequence,
        }
    }
}

#[derive(Debug, Clone)]
enum BinItem {
    Fixed {
        name: String,
        bits: usize,
        ty: BinType,
    },
    VarLen {
        name: String,
        len_field: String,
        ty: BinType,
    },
    Eof {
        name: String,
        ty: BinType,
    },
    Remaining {
        name: String,
        bits: usize,
    },
    Align {
        bits: usize,
    },
}

#[derive(Debug, Clone)]
struct BinRule {
    field: String,
    value: String,
}

/// A compiled binary message variant.
#[derive(Debug, Clone)]
pub(crate) struct BinaryProgram {
    pub(crate) name: String,
    endian: Endian,
    items: Vec<BinItem>,
    rules: Vec<BinRule>,
    /// name of length field → name of the sized field
    length_roles: HashMap<String, String>,
}

impl BinaryProgram {
    pub(crate) fn compile(spec: &MessageSpec, endian: Endian) -> Result<BinaryProgram> {
        let mut items = Vec::new();
        let mut rules = Vec::new();
        let mut remaining_seen = false;
        for item in &spec.items {
            match item.key.as_str() {
                "Rule" => {
                    let (field, value) = item.name_value().ok_or_else(|| MdlError::SpecSyntax {
                        message: "Rule needs `Field=Value`".into(),
                        line: item.line,
                    })?;
                    rules.push(BinRule {
                        field: field.to_owned(),
                        value: value.to_owned(),
                    });
                }
                "align" => {
                    let bits: usize = item.rest.parse().map_err(|_| MdlError::SpecSyntax {
                        message: format!("bad alignment `{}`", item.rest),
                        line: item.line,
                    })?;
                    if bits == 0 || !bits.is_multiple_of(8) {
                        return Err(MdlError::SpecSyntax {
                            message: "alignment must be a positive multiple of 8 bits".into(),
                            line: item.line,
                        });
                    }
                    items.push(BinItem::Align { bits });
                }
                name => {
                    items.push(compile_field(name, item, &mut remaining_seen)?);
                }
            }
        }
        let mut length_roles = HashMap::new();
        for it in &items {
            if let BinItem::VarLen {
                name, len_field, ..
            } = it
            {
                length_roles.insert(len_field.clone(), name.clone());
            }
        }
        // Every referenced length field must be a fixed uint declared earlier.
        for it in &items {
            if let BinItem::VarLen {
                len_field, name, ..
            } = it
            {
                let found = items.iter().any(|x| {
                    matches!(x, BinItem::Fixed { name: n, ty, .. }
                             if n == len_field && matches!(ty, BinType::UInt | BinType::Int))
                });
                if !found {
                    return Err(MdlError::SpecSemantics {
                        message: format!(
                            "field `{name}` references length field `{len_field}` which is not a fixed integer field"
                        ),
                        message_name: spec.name.clone(),
                    });
                }
            }
        }
        Ok(BinaryProgram {
            name: spec.name.clone(),
            endian,
            items,
            rules,
            length_roles,
        })
    }

    /// Parses wire bytes into an abstract message, enforcing the variant's
    /// rule guards.
    pub(crate) fn parse(&self, data: &[u8]) -> Result<AbstractMessage> {
        let mut reader = BitReader::new(data);
        let mut msg = AbstractMessage::new(&self.name);
        for item in &self.items {
            match item {
                BinItem::Align { bits } => reader.align_to(*bits, "align")?,
                BinItem::Fixed { name, bits, ty } => {
                    let value = self.read_fixed(&mut reader, name, *bits, *ty)?;
                    // Early rule check lets mismatched variants fail fast.
                    for rule in self.rules.iter().filter(|r| &r.field == name) {
                        check_rule(&self.name, rule, &value)?;
                    }
                    msg.push_field(
                        Field::new(name.clone(), value)
                            .with_length_bits(*bits as u32)
                            .with_type(ty.field_type()),
                    );
                }
                BinItem::VarLen {
                    name,
                    len_field,
                    ty,
                } => {
                    let len = msg.get(len_field).and_then(Value::as_uint).ok_or_else(|| {
                        MdlError::BadValue {
                            field: len_field.clone(),
                            message: "length field missing or not an integer".into(),
                        }
                    })?;
                    let bytes = reader.read_bytes(len as usize, name)?;
                    msg.push_field(Field::new(name.clone(), bytes_value(bytes, *ty, name)?));
                }
                BinItem::Eof { name, ty } => {
                    let bytes = reader.read_to_end(name)?;
                    let value = match ty {
                        BinType::ValueSeq => decode_value_seq(bytes, name)?,
                        _ => bytes_value(bytes, *ty, name)?,
                    };
                    msg.push_field(Field::new(name.clone(), value));
                }
                BinItem::Remaining { name, bits } => {
                    let declared = reader.read_bits(*bits, name)?;
                    let actual = (reader.remaining_bits() / 8) as u64;
                    if declared != actual {
                        return Err(MdlError::BadValue {
                            field: name.clone(),
                            message: format!(
                                "remaining-length mismatch: declared {declared}, actual {actual}"
                            ),
                        });
                    }
                    msg.push_field(
                        Field::new(name.clone(), Value::UInt(declared))
                            .with_length_bits(*bits as u32),
                    );
                }
            }
        }
        for rule in &self.rules {
            let value = msg.get(&rule.field).ok_or_else(|| MdlError::RuleFailed {
                message_name: self.name.clone(),
                field: rule.field.clone(),
                expected: rule.value.clone(),
                actual: "<absent>".into(),
            })?;
            check_rule(&self.name, rule, value)?;
        }
        Ok(msg)
    }

    /// Test-only convenience over [`Self::compose_into`].
    #[cfg(test)]
    pub(crate) fn compose(&self, msg: &AbstractMessage) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.compose_into(msg, &mut out)?;
        Ok(out)
    }

    /// Composes an abstract message into a caller-provided buffer,
    /// clearing it first and reusing its capacity. Length fields and
    /// rule-constrained fields are filled in automatically. On error the
    /// buffer contents are unspecified.
    pub(crate) fn compose_into(&self, msg: &AbstractMessage, out: &mut Vec<u8>) -> Result<()> {
        // Pre-encode variable-length payloads so length fields can be
        // computed when they are reached (they precede their payloads).
        let mut encoded: HashMap<&str, Vec<u8>> = HashMap::new();
        for item in &self.items {
            match item {
                BinItem::VarLen { name, ty, .. } => {
                    let value = self.required(msg, name)?;
                    encoded.insert(name.as_str(), value_bytes(value, *ty, name)?);
                }
                BinItem::Eof { name, ty } => {
                    let value = self.required(msg, name)?;
                    let bytes = match ty {
                        BinType::ValueSeq => encode_value_seq(value)?,
                        _ => value_bytes(value, *ty, name)?,
                    };
                    encoded.insert(name.as_str(), bytes);
                }
                _ => {}
            }
        }

        let mut w = BitWriter::with_buffer(std::mem::take(out));
        // A `remaining` field declares the byte length of everything after
        // it: write a placeholder, compose the tail in place, back-patch.
        if let Some(pos) = self
            .items
            .iter()
            .position(|i| matches!(i, BinItem::Remaining { .. }))
        {
            let (name, bits) = match &self.items[pos] {
                BinItem::Remaining { name, bits } => (name, *bits),
                _ => unreachable!("position() matched Remaining"),
            };
            self.compose_items_into(&mut w, &self.items[..pos], msg, &encoded)?;
            w.align_to(8);
            if !bits.is_multiple_of(8) {
                return Err(MdlError::BadValue {
                    field: name.clone(),
                    message: "`remaining` length fields must be byte-sized".into(),
                });
            }
            let len_at = w.position_bits() / 8;
            w.write_bits(0, bits);
            let body_start = len_at + bits / 8;
            self.compose_items_into(&mut w, &self.items[pos + 1..], msg, &encoded)?;
            w.align_to(8);
            let tail_len = (w.position_bits() / 8 - body_start) as u64;
            w.patch_bytes_be(len_at, bits / 8, tail_len);
        } else {
            self.compose_items_into(&mut w, &self.items, msg, &encoded)?;
        }
        *out = w.into_bytes();
        Ok(())
    }

    fn compose_items_into(
        &self,
        w: &mut BitWriter,
        items: &[BinItem],
        msg: &AbstractMessage,
        encoded: &HashMap<&str, Vec<u8>>,
    ) -> Result<()> {
        for item in items {
            match item {
                BinItem::Align { bits } => w.align_to(*bits),
                BinItem::Fixed { name, bits, ty } => {
                    let value = if let Some(sized) = self.length_roles.get(name) {
                        // Auto-computed length field.
                        let payload =
                            encoded
                                .get(sized.as_str())
                                .ok_or_else(|| MdlError::MissingField {
                                    message_name: self.name.clone(),
                                    field: sized.clone(),
                                })?;
                        Value::UInt(payload.len() as u64)
                    } else if let Some(v) = msg.get(name) {
                        v.clone()
                    } else if let Some(rule) = self.rules.iter().find(|r| &r.field == name) {
                        rule_value(&rule.value)
                    } else {
                        return Err(MdlError::MissingField {
                            message_name: self.name.clone(),
                            field: name.clone(),
                        });
                    };
                    self.write_fixed(w, name, *bits, *ty, &value)?;
                }
                BinItem::VarLen { name, .. } | BinItem::Eof { name, .. } => {
                    let bytes =
                        encoded
                            .get(name.as_str())
                            .ok_or_else(|| MdlError::MissingField {
                                message_name: self.name.clone(),
                                field: name.clone(),
                            })?;
                    w.write_bytes(bytes, name)?;
                }
                BinItem::Remaining { name, .. } => {
                    return Err(MdlError::SpecSemantics {
                        message: format!("multiple `remaining` fields (second: `{name}`)"),
                        message_name: self.name.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Lowers this variant's rules on statically-positioned fixed unsigned
    /// fields into wire-byte tests (see [`crate::dispatch`]). Offsets stay
    /// static only while every preceding item has a spec-known width, so
    /// derivation stops at the first variable-length or `eof` field.
    pub(crate) fn probe(&self) -> Probe {
        let mut tests = Vec::new();
        let mut bit = 0usize;
        for item in &self.items {
            match item {
                BinItem::Align { bits } => {
                    let rem = bit % bits;
                    if rem != 0 {
                        bit += bits - rem;
                    }
                }
                BinItem::Fixed { name, bits, ty } => {
                    if *ty == BinType::UInt && *bits <= 64 {
                        for rule in self.rules.iter().filter(|r| &r.field == name) {
                            let Some(expect) = rule_value(&rule.value).as_uint() else {
                                continue;
                            };
                            let little = self.endian == Endian::Little
                                && bits.is_multiple_of(8)
                                && *bits > 8;
                            // The little-endian read path requires byte
                            // alignment; parse enforces the same.
                            if little && !bit.is_multiple_of(8) {
                                continue;
                            }
                            tests.push(BitTest {
                                bit_offset: bit,
                                bits: *bits,
                                expect,
                                little_endian: little,
                            });
                        }
                    }
                    bit += *bits;
                }
                BinItem::Remaining { bits, .. } => bit += *bits,
                BinItem::VarLen { .. } | BinItem::Eof { .. } => break,
            }
        }
        if tests.is_empty() {
            Probe::Always
        } else {
            Probe::Binary(tests)
        }
    }

    fn required<'m>(&self, msg: &'m AbstractMessage, name: &str) -> Result<&'m Value> {
        msg.get(name).ok_or_else(|| MdlError::MissingField {
            message_name: self.name.clone(),
            field: name.to_owned(),
        })
    }

    fn read_fixed(
        &self,
        reader: &mut BitReader<'_>,
        name: &str,
        bits: usize,
        ty: BinType,
    ) -> Result<Value> {
        match ty {
            BinType::UInt | BinType::Int | BinType::Float if bits <= 64 => {
                let raw = if self.endian == Endian::Little && bits.is_multiple_of(8) && bits > 8 {
                    let bytes = reader.read_bytes(bits / 8, name)?;
                    let mut v: u64 = 0;
                    for (i, b) in bytes.iter().enumerate() {
                        v |= u64::from(*b) << (8 * i);
                    }
                    v
                } else {
                    reader.read_bits(bits, name)?
                };
                Ok(match ty {
                    BinType::UInt => Value::UInt(raw),
                    BinType::Int => Value::Int(sign_extend(raw, bits)),
                    BinType::Float => match bits {
                        32 => Value::Float(f64::from(f32::from_bits(raw as u32))),
                        64 => Value::Float(f64::from_bits(raw)),
                        _ => {
                            return Err(MdlError::BadValue {
                                field: name.to_owned(),
                                message: "float fields must be 32 or 64 bits".into(),
                            })
                        }
                    },
                    _ => unreachable!("outer match restricts ty"),
                })
            }
            BinType::Text | BinType::Opaque => {
                if !bits.is_multiple_of(8) {
                    return Err(MdlError::BadValue {
                        field: name.to_owned(),
                        message: "text/opaque fields must be byte-sized".into(),
                    });
                }
                let bytes = reader.read_bytes(bits / 8, name)?;
                bytes_value(bytes, ty, name)
            }
            _ => Err(MdlError::BadValue {
                field: name.to_owned(),
                message: format!("unsupported fixed field ({bits} bits)"),
            }),
        }
    }

    fn write_fixed(
        &self,
        w: &mut BitWriter,
        name: &str,
        bits: usize,
        ty: BinType,
        value: &Value,
    ) -> Result<()> {
        match ty {
            BinType::UInt | BinType::Int | BinType::Float if bits <= 64 => {
                let raw: u64 = match ty {
                    BinType::UInt => value.as_uint().ok_or_else(|| MdlError::BadValue {
                        field: name.to_owned(),
                        message: format!("expected unsigned integer, found {}", value.kind()),
                    })?,
                    BinType::Int => {
                        let v = value.as_int().ok_or_else(|| MdlError::BadValue {
                            field: name.to_owned(),
                            message: format!("expected integer, found {}", value.kind()),
                        })?;
                        (v as u64) & mask(bits)
                    }
                    BinType::Float => {
                        let f = value.as_float().ok_or_else(|| MdlError::BadValue {
                            field: name.to_owned(),
                            message: format!("expected float, found {}", value.kind()),
                        })?;
                        match bits {
                            32 => u64::from((f as f32).to_bits()),
                            64 => f.to_bits(),
                            _ => {
                                return Err(MdlError::BadValue {
                                    field: name.to_owned(),
                                    message: "float fields must be 32 or 64 bits".into(),
                                })
                            }
                        }
                    }
                    _ => unreachable!("outer match restricts ty"),
                };
                if ty == BinType::UInt && bits < 64 && raw > mask(bits) {
                    return Err(MdlError::BadValue {
                        field: name.to_owned(),
                        message: format!("value {raw} does not fit in {bits} bits"),
                    });
                }
                if self.endian == Endian::Little && bits.is_multiple_of(8) && bits > 8 {
                    let mut bytes = Vec::with_capacity(bits / 8);
                    for i in 0..bits / 8 {
                        bytes.push(((raw >> (8 * i)) & 0xFF) as u8);
                    }
                    w.write_bytes(&bytes, name)?;
                } else {
                    w.write_bits(raw & mask(bits), bits);
                }
                Ok(())
            }
            BinType::Text | BinType::Opaque => {
                if !bits.is_multiple_of(8) {
                    return Err(MdlError::BadValue {
                        field: name.to_owned(),
                        message: "text/opaque fields must be byte-sized".into(),
                    });
                }
                let mut bytes = value_bytes(value, ty, name)?;
                let want = bits / 8;
                if bytes.len() > want {
                    return Err(MdlError::BadValue {
                        field: name.to_owned(),
                        message: format!("{} bytes exceed fixed size {want}", bytes.len()),
                    });
                }
                bytes.resize(want, 0);
                w.write_bytes(&bytes, name)
            }
            _ => Err(MdlError::BadValue {
                field: name.to_owned(),
                message: "unsupported fixed field".into(),
            }),
        }
    }
}

fn compile_field(name: &str, item: &SpecItem, remaining_seen: &mut bool) -> Result<BinItem> {
    let parts = item.rest_parts();
    let len_spec = parts[0].trim();
    let ty_spec = parts.get(1).map(|s| s.trim());
    if parts.len() > 2 {
        return Err(MdlError::SpecSyntax {
            message: format!("too many `:` parts in field `{name}`"),
            line: item.line,
        });
    }
    if len_spec == "eof" {
        let ty = match ty_spec {
            None => BinType::Opaque,
            Some(t) => BinType::parse(t, item.line)?,
        };
        return Ok(BinItem::Eof {
            name: name.to_owned(),
            ty,
        });
    }
    if let Ok(bits) = len_spec.parse::<usize>() {
        if bits == 0 {
            return Err(MdlError::SpecSyntax {
                message: format!("field `{name}` has zero length"),
                line: item.line,
            });
        }
        if ty_spec == Some("remaining") {
            if *remaining_seen {
                return Err(MdlError::SpecSyntax {
                    message: "at most one `remaining` field per message".into(),
                    line: item.line,
                });
            }
            *remaining_seen = true;
            return Ok(BinItem::Remaining {
                name: name.to_owned(),
                bits,
            });
        }
        let ty = match ty_spec {
            None => BinType::UInt,
            Some(t) => BinType::parse(t, item.line)?,
        };
        return Ok(BinItem::Fixed {
            name: name.to_owned(),
            bits,
            ty,
        });
    }
    // Length is a field reference (bytes).
    let ty = match ty_spec {
        None => BinType::Text,
        Some(t) => BinType::parse(t, item.line)?,
    };
    Ok(BinItem::VarLen {
        name: name.to_owned(),
        len_field: len_spec.to_owned(),
        ty,
    })
}

fn mask(bits: usize) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

fn sign_extend(raw: u64, bits: usize) -> i64 {
    if bits >= 64 {
        return raw as i64;
    }
    let sign = 1u64 << (bits - 1);
    if raw & sign != 0 {
        (raw | !mask(bits)) as i64
    } else {
        raw as i64
    }
}

fn bytes_value(bytes: &[u8], ty: BinType, field: &str) -> Result<Value> {
    match ty {
        BinType::Text => {
            let s = std::str::from_utf8(bytes).map_err(|_| MdlError::NotUtf8 {
                field: field.to_owned(),
            })?;
            // Fixed-size text fields may carry zero padding.
            Ok(Value::Str(s.trim_end_matches('\0').to_owned()))
        }
        BinType::Opaque => Ok(Value::Bytes(bytes.to_vec())),
        _ => Err(MdlError::BadValue {
            field: field.to_owned(),
            message: "variable-length fields must be text or opaque".into(),
        }),
    }
}

fn value_bytes(value: &Value, ty: BinType, field: &str) -> Result<Vec<u8>> {
    match ty {
        BinType::Text => match value {
            Value::Str(s) => Ok(s.clone().into_bytes()),
            other => Ok(other.to_text().into_bytes()),
        },
        BinType::Opaque => value
            .as_bytes()
            .map(<[u8]>::to_vec)
            .ok_or_else(|| MdlError::BadValue {
                field: field.to_owned(),
                message: format!("expected bytes, found {}", value.kind()),
            }),
        _ => Err(MdlError::BadValue {
            field: field.to_owned(),
            message: "variable-length fields must be text or opaque".into(),
        }),
    }
}

fn rule_value(text: &str) -> Value {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        if let Ok(v) = u64::from_str_radix(hex, 16) {
            return Value::UInt(v);
        }
    }
    if let Ok(v) = text.parse::<u64>() {
        return Value::UInt(v);
    }
    if let Ok(v) = text.parse::<i64>() {
        return Value::Int(v);
    }
    Value::Str(text.to_owned())
}

fn check_rule(message_name: &str, rule: &BinRule, actual: &Value) -> Result<()> {
    let expected = rule_value(&rule.value);
    let matches = match (&expected, actual) {
        (a, b) if a == b => true,
        _ => match (expected.as_uint(), actual.as_uint()) {
            (Some(a), Some(b)) => a == b,
            _ => expected.to_text() == actual.to_text(),
        },
    };
    if matches {
        Ok(())
    } else {
        Err(MdlError::RuleFailed {
            message_name: message_name.to_owned(),
            field: rule.field.clone(),
            expected: rule.value.clone(),
            actual: actual.to_text(),
        })
    }
}

// --- The `valueseq` tagged encoding (simplified CDR) -----------------------
//
// GIOP encodes operation parameters with CDR, which needs out-of-band type
// information from an IDL. Starlink's abstract messages are self-contained,
// so the reproduction uses a compact self-describing encoding instead:
// u32 count, then per element a 1-byte tag and a payload. Integers are 8
// bytes big-endian; strings/bytes are u32-length-prefixed; structs encode
// (name, value) pairs; arrays nest. Both endpoints of every experiment
// speak this encoding, so the substitution is behaviour-preserving
// (DESIGN.md §2).

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_UINT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_BOOL: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_BYTES: u8 = 6;
const TAG_STRUCT: u8 = 7;
const TAG_ARRAY: u8 = 8;

/// Encodes one [`Value`] with the `valueseq` tagged encoding.
pub(crate) fn encode_value(value: &Value, out: &mut Vec<u8>) -> Result<()> {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_be_bytes());
        }
        Value::UInt(u) => {
            out.push(TAG_UINT);
            out.extend_from_slice(&u.to_be_bytes());
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_be_bytes());
        }
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            write_blob(out, s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            write_blob(out, b);
        }
        Value::Struct(fields) => {
            out.push(TAG_STRUCT);
            out.extend_from_slice(&(fields.len() as u32).to_be_bytes());
            for f in fields {
                write_blob(out, f.label().as_bytes());
                encode_value(f.value(), out)?;
            }
        }
        Value::Array(items) => {
            out.push(TAG_ARRAY);
            out.extend_from_slice(&(items.len() as u32).to_be_bytes());
            for item in items {
                encode_value(item, out)?;
            }
        }
    }
    Ok(())
}

fn write_blob(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(bytes);
}

fn encode_value_seq(value: &Value) -> Result<Vec<u8>> {
    let items: &[Value] = match value {
        Value::Array(items) => items,
        // Tolerate a single non-array value as a 1-element sequence.
        other => std::slice::from_ref(other),
    };
    let mut out = Vec::new();
    out.extend_from_slice(&(items.len() as u32).to_be_bytes());
    for item in items {
        encode_value(item, &mut out)?;
    }
    Ok(out)
}

struct SeqReader<'a> {
    data: &'a [u8],
    pos: usize,
    field: String,
}

impl<'a> SeqReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.data.len() - self.pos < n {
            return Err(MdlError::Truncated {
                field: self.field.clone(),
                needed_bits: n * 8,
                available_bits: (self.data.len() - self.pos) * 8,
            });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    fn blob(&mut self) -> Result<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    fn value(&mut self) -> Result<Value> {
        let tag = self.take(1)?[0];
        Ok(match tag {
            TAG_NULL => Value::Null,
            TAG_INT => Value::Int(self.u64()? as i64),
            TAG_UINT => Value::UInt(self.u64()?),
            TAG_FLOAT => Value::Float(f64::from_bits(self.u64()?)),
            TAG_BOOL => Value::Bool(self.take(1)?[0] != 0),
            TAG_STR => {
                let b = self.blob()?;
                Value::Str(
                    std::str::from_utf8(b)
                        .map_err(|_| MdlError::NotUtf8 {
                            field: self.field.clone(),
                        })?
                        .to_owned(),
                )
            }
            TAG_BYTES => Value::Bytes(self.blob()?.to_vec()),
            TAG_STRUCT => {
                let count = self.u32()? as usize;
                let mut fields = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    let name = std::str::from_utf8(self.blob()?)
                        .map_err(|_| MdlError::NotUtf8 {
                            field: self.field.clone(),
                        })?
                        .to_owned();
                    let v = self.value()?;
                    fields.push(Field::new(name, v));
                }
                Value::Struct(fields)
            }
            TAG_ARRAY => {
                let count = self.u32()? as usize;
                let mut items = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    items.push(self.value()?);
                }
                Value::Array(items)
            }
            other => {
                return Err(MdlError::BadValue {
                    field: self.field.clone(),
                    message: format!("unknown valueseq tag {other}"),
                })
            }
        })
    }
}

fn decode_value_seq(bytes: &[u8], field: &str) -> Result<Value> {
    let mut r = SeqReader {
        data: bytes,
        pos: 0,
        field: field.to_owned(),
    };
    let count = r.u32()? as usize;
    let mut items = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        items.push(r.value()?);
    }
    if r.pos != bytes.len() {
        return Err(MdlError::BadValue {
            field: field.to_owned(),
            message: format!("{} trailing bytes after sequence", bytes.len() - r.pos),
        });
    }
    Ok(Value::Array(items))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::MdlDocument;

    fn program(spec: &str) -> BinaryProgram {
        let doc = MdlDocument::parse(spec).unwrap();
        BinaryProgram::compile(&doc.messages[0], doc.endian).unwrap()
    }

    const GIOP_REQ: &str = "\
<Message:GIOPRequest>\n\
<Rule:MessageType=0>\n\
<MessageType:8>\n\
<RequestID:32>\n\
<ObjectKeyLength:32><ObjectKey:ObjectKeyLength:opaque>\n\
<OperationLength:32><Operation:OperationLength>\n\
<align:64>\n\
<ParameterArray:eof:valueseq>\n\
<End:Message>";

    fn giop_request() -> AbstractMessage {
        let mut m = AbstractMessage::new("GIOPRequest");
        m.set_field("RequestID", Value::UInt(42));
        m.set_field("ObjectKey", Value::Bytes(vec![1, 2, 3]));
        m.set_field("Operation", Value::from("Add"));
        m.set_field(
            "ParameterArray",
            Value::Array(vec![Value::Int(3), Value::Int(4)]),
        );
        m
    }

    #[test]
    fn giop_roundtrip() {
        let p = program(GIOP_REQ);
        let bytes = p.compose(&giop_request()).unwrap();
        let back = p.parse(&bytes).unwrap();
        assert_eq!(back.get("RequestID").unwrap().as_uint(), Some(42));
        assert_eq!(back.get("MessageType").unwrap().as_uint(), Some(0));
        assert_eq!(back.get("Operation").unwrap().as_str(), Some("Add"));
        assert_eq!(
            back.get("ObjectKey").unwrap().as_bytes(),
            Some([1u8, 2, 3].as_ref())
        );
        let params = back.get("ParameterArray").unwrap().as_array().unwrap();
        assert_eq!(params, &[Value::Int(3), Value::Int(4)]);
    }

    #[test]
    fn alignment_is_applied() {
        let p = program(GIOP_REQ);
        let bytes = p.compose(&giop_request()).unwrap();
        // Header: 1 + 4 + 4 + 3 + 4 + 3 = 19 bytes, aligned to 24 before
        // the parameter array.
        let expect_body_at = 24;
        let count = u32::from_be_bytes([
            bytes[expect_body_at],
            bytes[expect_body_at + 1],
            bytes[expect_body_at + 2],
            bytes[expect_body_at + 3],
        ]);
        assert_eq!(count, 2);
    }

    #[test]
    fn rule_guard_rejects_wrong_variant() {
        let p = program(GIOP_REQ);
        let mut bytes = p.compose(&giop_request()).unwrap();
        bytes[0] = 1; // flip MessageType
        let err = p.parse(&bytes).unwrap_err();
        assert!(matches!(err, MdlError::RuleFailed { .. }));
    }

    #[test]
    fn rule_fills_missing_field_on_compose() {
        let p = program(GIOP_REQ);
        let bytes = p.compose(&giop_request()).unwrap();
        assert_eq!(bytes[0], 0, "MessageType supplied by rule");
    }

    #[test]
    fn length_fields_autocomputed() {
        let p = program(GIOP_REQ);
        let bytes = p.compose(&giop_request()).unwrap();
        // ObjectKeyLength at offset 5..9.
        let okl = u32::from_be_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]);
        assert_eq!(okl, 3);
    }

    #[test]
    fn signed_and_float_fixed_fields() {
        let p = program("<Message:M><A:16:int><B:32:float><C:64:float><End:Message>");
        let mut m = AbstractMessage::new("M");
        m.set_field("A", Value::Int(-5));
        m.set_field("B", Value::Float(1.5));
        m.set_field("C", Value::Float(-2.25));
        let bytes = p.compose(&m).unwrap();
        let back = p.parse(&bytes).unwrap();
        assert_eq!(back.get("A").unwrap().as_int(), Some(-5));
        assert_eq!(back.get("B").unwrap().as_float(), Some(1.5));
        assert_eq!(back.get("C").unwrap().as_float(), Some(-2.25));
    }

    #[test]
    fn sub_byte_fields() {
        let p = program("<Message:M><Version:4><Flags:4><Body:eof:text><End:Message>");
        let mut m = AbstractMessage::new("M");
        m.set_field("Version", Value::UInt(2));
        m.set_field("Flags", Value::UInt(9));
        m.set_field("Body", Value::from("hi"));
        let bytes = p.compose(&m).unwrap();
        assert_eq!(bytes[0], 0x29);
        let back = p.parse(&bytes).unwrap();
        assert_eq!(back.get("Flags").unwrap().as_uint(), Some(9));
        assert_eq!(back.get("Body").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn little_endian_fixed_fields() {
        let p = program("<Dialect:binary><Endian:little>\n<Message:M><A:32><End:Message>");
        let mut m = AbstractMessage::new("M");
        m.set_field("A", Value::UInt(0x0102_0304));
        let bytes = p.compose(&m).unwrap();
        assert_eq!(bytes, vec![0x04, 0x03, 0x02, 0x01]);
        assert_eq!(
            p.parse(&bytes).unwrap().get("A").unwrap().as_uint(),
            Some(0x0102_0304)
        );
    }

    #[test]
    fn remaining_field_roundtrip() {
        let p =
            program("<Message:M><Kind:8><MessageSize:32:remaining><Body:eof:text><End:Message>");
        let mut m = AbstractMessage::new("M");
        m.set_field("Kind", Value::UInt(1));
        m.set_field("Body", Value::from("hello"));
        let bytes = p.compose(&m).unwrap();
        assert_eq!(bytes[1..5], 5u32.to_be_bytes());
        let back = p.parse(&bytes).unwrap();
        assert_eq!(back.get("MessageSize").unwrap().as_uint(), Some(5));
        assert_eq!(back.get("Body").unwrap().as_str(), Some("hello"));
        // Corrupt the size: parse must fail.
        let mut bad = bytes;
        bad[4] = 99;
        assert!(p.parse(&bad).is_err());
    }

    #[test]
    fn value_overflow_detected() {
        let p = program("<Message:M><A:8><End:Message>");
        let mut m = AbstractMessage::new("M");
        m.set_field("A", Value::UInt(300));
        assert!(matches!(p.compose(&m), Err(MdlError::BadValue { .. })));
    }

    #[test]
    fn missing_field_reported() {
        let p = program("<Message:M><A:8><End:Message>");
        let m = AbstractMessage::new("M");
        assert!(matches!(p.compose(&m), Err(MdlError::MissingField { .. })));
    }

    #[test]
    fn truncated_input_reported() {
        let p = program("<Message:M><A:32><End:Message>");
        assert!(matches!(p.parse(&[1, 2]), Err(MdlError::Truncated { .. })));
    }

    #[test]
    fn valueseq_all_types_roundtrip() {
        let p = program("<Message:M><P:eof:valueseq><End:Message>");
        let nested = Value::Struct(vec![
            Field::new("id", Value::from("p1")),
            Field::new("views", Value::UInt(10)),
        ]);
        let mut m = AbstractMessage::new("M");
        m.set_field(
            "P",
            Value::Array(vec![
                Value::Null,
                Value::Int(-1),
                Value::UInt(2),
                Value::Float(2.5),
                Value::Bool(true),
                Value::Str("s".into()),
                Value::Bytes(vec![9]),
                nested.clone(),
                Value::Array(vec![Value::Int(1)]),
            ]),
        );
        let bytes = p.compose(&m).unwrap();
        let back = p.parse(&bytes).unwrap();
        let arr = back.get("P").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 9);
        assert_eq!(arr[7], nested);
        assert_eq!(arr[8], Value::Array(vec![Value::Int(1)]));
    }

    #[test]
    fn valueseq_trailing_garbage_rejected() {
        let p = program("<Message:M><P:eof:valueseq><End:Message>");
        let mut m = AbstractMessage::new("M");
        m.set_field("P", Value::Array(vec![]));
        let mut bytes = p.compose(&m).unwrap();
        bytes.push(0xFF);
        assert!(p.parse(&bytes).is_err());
    }

    #[test]
    fn bad_length_reference_rejected_at_compile() {
        let doc = MdlDocument::parse("<Message:M><Body:NoSuchLen><End:Message>").unwrap();
        assert!(matches!(
            BinaryProgram::compile(&doc.messages[0], Endian::Big),
            Err(MdlError::SpecSemantics { .. })
        ));
    }

    #[test]
    fn fixed_text_zero_padded() {
        let p = program("<Message:M><Tag:32:text><End:Message>");
        let mut m = AbstractMessage::new("M");
        m.set_field("Tag", Value::from("ab"));
        let bytes = p.compose(&m).unwrap();
        assert_eq!(bytes, b"ab\0\0");
        assert_eq!(
            p.parse(&bytes).unwrap().get("Tag").unwrap().as_str(),
            Some("ab")
        );
    }
}
