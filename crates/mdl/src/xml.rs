//! The XML MDL dialect engine: element/attribute templates for SOAP,
//! XML-RPC and GData-feed messages.
//!
//! Supported items inside a `<Message:…>` block:
//!
//! * `<Root:methodCall>` — the document's root element name (local-name
//!   matched on parse, created verbatim on compose),
//! * `<RootAttr:name=value>` — a literal attribute emitted on the root
//!   (namespace declarations); not checked on parse,
//! * `<Name:Field=path>` — binds `Field` to the *element name* of the
//!   first element child of the element at `path` (SOAP's operation
//!   element); later paths may reference it as a `{Field}` step,
//! * `<Text:Field=path>` — binds `Field` to the text content at `path`,
//! * `<Attr:Field=path@attr>` — binds `Field` to an attribute value,
//! * `<List:Field=path>` — binds `Field` to an array; the last path step
//!   names the repeated element (`*` matches any child element). Without
//!   item rules each element's text becomes one array item; with item
//!   rules each element becomes a structure:
//! * `<ItemText:Field.sub=relpath>` / `<ItemAttr:Field.sub=relpath@attr>` /
//!   `<ItemName:Field.sub>` — sub-field extraction relative to each list
//!   item element (`.` = the item element itself),
//! * `<Rule:Field=Value>` — guard after extraction (`=`, `^=` prefix,
//!   `*=` contains), used to discriminate message variants (e.g. the
//!   SOAP operation name or an XML-RPC method name).
//!
//! A field name ending in `?` is optional: missing elements are skipped on
//! parse, missing fields are skipped on compose.

use crate::ast::MessageSpec;
use crate::dispatch::{Probe, XmlProbe};
use crate::error::MdlError;
use crate::Result;
use starlink_message::{AbstractMessage, Field, Value};
use starlink_xml::Element;
use std::collections::HashMap;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Step {
    /// A literal element local name.
    Name(String),
    /// `{Field}` — the element whose name was bound by a `<Name:…>` rule.
    Dynamic(String),
    /// `*` — any element (first child on parse).
    Any,
}

type XPath = Vec<Step>;

fn parse_path(text: &str, line: usize) -> Result<XPath> {
    let mut steps = Vec::new();
    for raw in text.split('/') {
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        if raw == "*" {
            steps.push(Step::Any);
        } else if let Some(inner) = raw.strip_prefix('{').and_then(|s| s.strip_suffix('}')) {
            if inner.is_empty() {
                return Err(MdlError::SpecSyntax {
                    message: "empty `{}` path step".into(),
                    line,
                });
            }
            steps.push(Step::Dynamic(inner.to_owned()));
        } else {
            steps.push(Step::Name(raw.to_owned()));
        }
    }
    Ok(steps)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GuardOp {
    Equals,
    StartsWith,
    Contains,
}

#[derive(Debug, Clone)]
struct Guard {
    field: String,
    op: GuardOp,
    value: String,
}

#[derive(Debug, Clone)]
enum XmlBinding {
    Name {
        field: String,
        path: XPath,
        optional: bool,
    },
    Text {
        field: String,
        path: XPath,
        optional: bool,
    },
    Attr {
        field: String,
        path: XPath,
        attr: String,
        optional: bool,
    },
    List {
        field: String,
        parent: XPath,
        item: Step,
    },
}

#[derive(Debug, Clone)]
enum ItemRule {
    Text {
        sub: String,
        rel: XPath,
    },
    /// Structured sub-field ↔ nested XML tree (see `tree_to_value`).
    Tree {
        sub: String,
        rel: XPath,
    },
    Attr {
        sub: String,
        rel: XPath,
        attr: String,
    },
    Name {
        sub: String,
    },
}

/// A compiled XML message variant.
#[derive(Debug, Clone)]
pub(crate) struct XmlProgram {
    pub(crate) name: String,
    root: String,
    root_attrs: Vec<(String, String)>,
    bindings: Vec<XmlBinding>,
    /// list field name → its item rules, in declaration order
    item_rules: HashMap<String, Vec<ItemRule>>,
    guards: Vec<Guard>,
}

fn split_field(text: &str) -> (String, bool) {
    match text.strip_suffix('?') {
        Some(f) => (f.to_owned(), true),
        None => (text.to_owned(), false),
    }
}

fn split_attr_path(text: &str, line: usize) -> Result<(XPath, String)> {
    let (path, attr) = text.rsplit_once('@').ok_or_else(|| MdlError::SpecSyntax {
        message: format!("attribute binding `{text}` lacks `@attr`"),
        line,
    })?;
    Ok((parse_path(path, line)?, attr.trim().to_owned()))
}

impl XmlProgram {
    pub(crate) fn compile(spec: &MessageSpec) -> Result<XmlProgram> {
        let mut root = None;
        let mut root_attrs = Vec::new();
        let mut bindings = Vec::new();
        let mut item_rules: HashMap<String, Vec<ItemRule>> = HashMap::new();
        let mut guards = Vec::new();
        for item in &spec.items {
            match item.key.as_str() {
                "Root" => root = Some(item.rest.trim().to_owned()),
                "RootAttr" => {
                    let (n, v) = item.name_value().ok_or_else(|| MdlError::SpecSyntax {
                        message: "RootAttr needs `name=value`".into(),
                        line: item.line,
                    })?;
                    root_attrs.push((n.trim().to_owned(), v.trim().to_owned()));
                }
                "Name" | "Text" | "Attr" | "List" => {
                    let (field_text, rest) =
                        item.name_value().ok_or_else(|| MdlError::SpecSyntax {
                            message: format!("{} needs `Field=path`", item.key),
                            line: item.line,
                        })?;
                    let (field, optional) = split_field(field_text.trim());
                    match item.key.as_str() {
                        "Name" => bindings.push(XmlBinding::Name {
                            field,
                            path: parse_path(rest, item.line)?,
                            optional,
                        }),
                        "Text" => bindings.push(XmlBinding::Text {
                            field,
                            path: parse_path(rest, item.line)?,
                            optional,
                        }),
                        "Attr" => {
                            let (path, attr) = split_attr_path(rest, item.line)?;
                            bindings.push(XmlBinding::Attr {
                                field,
                                path,
                                attr,
                                optional,
                            });
                        }
                        "List" => {
                            let mut path = parse_path(rest, item.line)?;
                            let item_step = path.pop().ok_or_else(|| MdlError::SpecSyntax {
                                message: "List path must name the repeated element".into(),
                                line: item.line,
                            })?;
                            bindings.push(XmlBinding::List {
                                field,
                                parent: path,
                                item: item_step,
                            });
                        }
                        _ => unreachable!("outer match restricts keys"),
                    }
                }
                "ItemText" | "ItemTree" | "ItemAttr" | "ItemName" => {
                    let rest = item.rest.as_str();
                    let (target, rel_text) = match item.key.as_str() {
                        "ItemName" => (rest, ""),
                        _ => item.name_value().ok_or_else(|| MdlError::SpecSyntax {
                            message: format!("{} needs `List.sub=relpath`", item.key),
                            line: item.line,
                        })?,
                    };
                    let (list, sub) =
                        target
                            .trim()
                            .split_once('.')
                            .ok_or_else(|| MdlError::SpecSyntax {
                                message: format!("{} target must be `List.sub`", item.key),
                                line: item.line,
                            })?;
                    let rule = match item.key.as_str() {
                        "ItemText" => ItemRule::Text {
                            sub: sub.to_owned(),
                            rel: if rel_text.trim() == "." {
                                Vec::new()
                            } else {
                                parse_path(rel_text, item.line)?
                            },
                        },
                        "ItemTree" => ItemRule::Tree {
                            sub: sub.to_owned(),
                            rel: if rel_text.trim() == "." {
                                Vec::new()
                            } else {
                                parse_path(rel_text, item.line)?
                            },
                        },
                        "ItemAttr" => {
                            let (rel, attr) = split_attr_path(rel_text, item.line)?;
                            ItemRule::Attr {
                                sub: sub.to_owned(),
                                rel,
                                attr,
                            }
                        }
                        "ItemName" => ItemRule::Name {
                            sub: sub.to_owned(),
                        },
                        _ => unreachable!("outer match restricts keys"),
                    };
                    item_rules.entry(list.to_owned()).or_default().push(rule);
                }
                "Rule" => {
                    let rest = &item.rest;
                    let mut parsed = None;
                    for (needle, op) in [
                        ("^=", GuardOp::StartsWith),
                        ("*=", GuardOp::Contains),
                        ("=", GuardOp::Equals),
                    ] {
                        if let Some(i) = rest.find(needle) {
                            parsed = Some(Guard {
                                field: rest[..i].trim().to_owned(),
                                op,
                                value: rest[i + needle.len()..].trim().to_owned(),
                            });
                            break;
                        }
                    }
                    guards.push(parsed.ok_or_else(|| MdlError::SpecSyntax {
                        message: format!("malformed rule `{rest}`"),
                        line: item.line,
                    })?);
                }
                other => {
                    return Err(MdlError::SpecSemantics {
                        message: format!("unknown xml-dialect item `<{other}:…>`"),
                        message_name: spec.name.clone(),
                    })
                }
            }
        }
        let root = root.ok_or_else(|| MdlError::SpecSemantics {
            message: "xml message needs a <Root:…> item".into(),
            message_name: spec.name.clone(),
        })?;
        // Item rules must reference declared lists.
        for list in item_rules.keys() {
            let declared = bindings
                .iter()
                .any(|b| matches!(b, XmlBinding::List { field, .. } if field == list));
            if !declared {
                return Err(MdlError::SpecSemantics {
                    message: format!("item rules reference undeclared list `{list}`"),
                    message_name: spec.name.clone(),
                });
            }
        }
        Ok(XmlProgram {
            name: spec.name.clone(),
            root,
            root_attrs,
            bindings,
            item_rules,
            guards,
        })
    }

    // --- parse --------------------------------------------------------

    pub(crate) fn parse(&self, data: &[u8]) -> Result<AbstractMessage> {
        let text = std::str::from_utf8(data).map_err(|_| MdlError::NotUtf8 {
            field: self.name.clone(),
        })?;
        let root = Element::parse(text)?;
        self.parse_element(&root)
    }

    /// Parses from an already-built DOM (used when the XML payload is
    /// embedded in an HTTP body that was parsed separately).
    pub(crate) fn parse_element(&self, root: &Element) -> Result<AbstractMessage> {
        if root.local_name() != local(&self.root) {
            return Err(MdlError::RuleFailed {
                message_name: self.name.clone(),
                field: "Root".into(),
                expected: self.root.clone(),
                actual: root.name.clone(),
            });
        }
        let mut msg = AbstractMessage::new(&self.name);
        let mut dynamic: HashMap<String, String> = HashMap::new();
        for binding in &self.bindings {
            match binding {
                XmlBinding::Name {
                    field,
                    path,
                    optional,
                } => {
                    let parent = match self.resolve(root, path, &dynamic) {
                        Some(e) => e,
                        None if *optional => continue,
                        None => return Err(self.not_found(field, path)),
                    };
                    let child = match parent.child_elements().next() {
                        Some(c) => c,
                        None if *optional => continue,
                        None => return Err(self.not_found(field, path)),
                    };
                    dynamic.insert(field.clone(), child.local_name().to_owned());
                    msg.push_field(Field::new(
                        field.clone(),
                        Value::Str(child.local_name().to_owned()),
                    ));
                }
                XmlBinding::Text {
                    field,
                    path,
                    optional,
                } => match self.resolve(root, path, &dynamic) {
                    Some(e) => msg.push_field(Field::new(field.clone(), Value::Str(e.text()))),
                    None if *optional => {}
                    None => return Err(self.not_found(field, path)),
                },
                XmlBinding::Attr {
                    field,
                    path,
                    attr,
                    optional,
                } => match self
                    .resolve(root, path, &dynamic)
                    .and_then(|e| e.attr(attr))
                {
                    Some(v) => msg.push_field(Field::new(field.clone(), Value::Str(v.to_owned()))),
                    None if *optional => {}
                    None => return Err(self.not_found(field, path)),
                },
                XmlBinding::List {
                    field,
                    parent,
                    item,
                } => {
                    let parent_el = match self.resolve(root, parent, &dynamic) {
                        Some(e) => e,
                        // A missing list parent is an empty list.
                        None => {
                            msg.push_field(Field::new(field.clone(), Value::Array(vec![])));
                            continue;
                        }
                    };
                    let mut items = Vec::new();
                    for child in parent_el.child_elements() {
                        let matches = match item {
                            Step::Any => true,
                            Step::Name(n) => child.local_name() == local(n),
                            Step::Dynamic(f) => dynamic
                                .get(f)
                                .map(|n| child.local_name() == n)
                                .unwrap_or(false),
                        };
                        if !matches {
                            continue;
                        }
                        items.push(self.parse_item(field, child)?);
                    }
                    msg.push_field(Field::new(field.clone(), Value::Array(items)));
                }
            }
        }
        for guard in &self.guards {
            let actual =
                msg.get(&guard.field)
                    .map(Value::to_text)
                    .ok_or_else(|| MdlError::RuleFailed {
                        message_name: self.name.clone(),
                        field: guard.field.clone(),
                        expected: guard.value.clone(),
                        actual: "<absent>".into(),
                    })?;
            let ok = match guard.op {
                GuardOp::Equals => actual == guard.value,
                GuardOp::StartsWith => actual.starts_with(&guard.value),
                GuardOp::Contains => actual.contains(&guard.value),
            };
            if !ok {
                return Err(MdlError::RuleFailed {
                    message_name: self.name.clone(),
                    field: guard.field.clone(),
                    expected: guard.value.clone(),
                    actual,
                });
            }
        }
        Ok(msg)
    }

    fn parse_item(&self, list_field: &str, el: &Element) -> Result<Value> {
        match self.item_rules.get(list_field) {
            None => Ok(tree_to_value(el)),
            Some(rules) => {
                let mut fields = Vec::new();
                for rule in rules {
                    match rule {
                        ItemRule::Text { sub, rel } => {
                            if let Some(target) = resolve_static(el, rel) {
                                fields.push(Field::new(sub.clone(), Value::Str(target.text())));
                            }
                        }
                        ItemRule::Tree { sub, rel } => {
                            if let Some(target) = resolve_static(el, rel) {
                                fields.push(Field::new(sub.clone(), tree_to_value(target)));
                            }
                        }
                        ItemRule::Attr { sub, rel, attr } => {
                            if let Some(v) = resolve_static(el, rel).and_then(|t| t.attr(attr)) {
                                fields.push(Field::new(sub.clone(), Value::Str(v.to_owned())));
                            }
                        }
                        ItemRule::Name { sub } => {
                            fields.push(Field::new(
                                sub.clone(),
                                Value::Str(el.local_name().to_owned()),
                            ));
                        }
                    }
                }
                Ok(Value::Struct(fields))
            }
        }
    }

    fn resolve<'e>(
        &self,
        root: &'e Element,
        path: &XPath,
        dynamic: &HashMap<String, String>,
    ) -> Option<&'e Element> {
        let mut current = root;
        for step in path {
            current = match step {
                Step::Name(n) => current.child(local(n))?,
                Step::Any => current.child_elements().next()?,
                Step::Dynamic(f) => {
                    let name = dynamic.get(f)?;
                    current.child(name)?
                }
            };
        }
        Some(current)
    }

    fn not_found(&self, field: &str, path: &XPath) -> MdlError {
        let path_text: Vec<String> = path
            .iter()
            .map(|s| match s {
                Step::Name(n) => n.clone(),
                Step::Dynamic(f) => format!("{{{f}}}"),
                Step::Any => "*".into(),
            })
            .collect();
        MdlError::BadValue {
            field: field.to_owned(),
            message: format!(
                "path `{}` not found in {} document",
                path_text.join("/"),
                self.name
            ),
        }
    }

    // --- compose ------------------------------------------------------

    /// Test-only convenience over [`Self::compose_into`].
    #[cfg(test)]
    pub(crate) fn compose(&self, msg: &AbstractMessage) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.compose_into(msg, &mut out)?;
        Ok(out)
    }

    /// Composes into a caller-provided buffer, clearing it first and
    /// reusing its capacity for the serialised document. On error the
    /// buffer contents are unspecified.
    pub(crate) fn compose_into(&self, msg: &AbstractMessage, out: &mut Vec<u8>) -> Result<()> {
        let root = self.compose_element(msg)?;
        out.clear();
        // Round-trip the byte buffer through String to reuse its
        // allocation; a cleared buffer is trivially valid UTF-8.
        let mut text =
            String::from_utf8(std::mem::take(out)).expect("cleared buffer is valid UTF-8");
        root.write_document_into(&mut text);
        *out = text.into_bytes();
        Ok(())
    }

    /// Lowers the root-element name and guards on `<Name:…>`-bound fields
    /// into wire-byte tests (see [`crate::dispatch`]). Guards on text or
    /// attribute bindings are left to the parser: their wire form may be
    /// entity-escaped, so a byte search could unsoundly reject.
    pub(crate) fn probe(&self) -> Probe {
        let mut name_contains = Vec::new();
        for guard in &self.guards {
            let first_binding = self.bindings.iter().find(|b| {
                let field = match b {
                    XmlBinding::Name { field, .. }
                    | XmlBinding::Text { field, .. }
                    | XmlBinding::Attr { field, .. }
                    | XmlBinding::List { field, .. } => field,
                };
                field == &guard.field
            });
            // Element names appear literally in the document, so any guard
            // on a name-bound field implies the document contains the
            // guarded value (equals and starts-with imply contains).
            if matches!(first_binding, Some(XmlBinding::Name { .. })) && !guard.value.is_empty() {
                name_contains.push(guard.value.clone().into_bytes());
            }
        }
        Probe::Xml(XmlProbe {
            root_local: local(&self.root).to_owned(),
            name_contains,
        })
    }

    /// Composes to a DOM (used when embedding in an HTTP body).
    pub(crate) fn compose_element(&self, msg: &AbstractMessage) -> Result<Element> {
        let mut root = Element::new(self.root.clone());
        for (n, v) in &self.root_attrs {
            root.set_attr(n.clone(), v.clone());
        }
        let mut dynamic: HashMap<String, String> = HashMap::new();
        for binding in &self.bindings {
            match binding {
                XmlBinding::Name {
                    field,
                    path,
                    optional,
                    ..
                } => {
                    let value = match self.field_text(msg, field) {
                        Some(v) => v,
                        None if *optional => continue,
                        None => {
                            return Err(MdlError::MissingField {
                                message_name: self.name.clone(),
                                field: field.clone(),
                            })
                        }
                    };
                    let parent = ensure_path(&mut root, path, &dynamic);
                    if parent.child(&value).is_none() {
                        parent
                            .children
                            .push(starlink_xml::Node::Element(Element::new(value.clone())));
                    }
                    dynamic.insert(field.clone(), value);
                }
                XmlBinding::Text {
                    field,
                    path,
                    optional,
                    ..
                } => {
                    let value = match self.field_text(msg, field) {
                        Some(v) => v,
                        None if *optional => continue,
                        None => {
                            return Err(MdlError::MissingField {
                                message_name: self.name.clone(),
                                field: field.clone(),
                            })
                        }
                    };
                    let el = ensure_path(&mut root, path, &dynamic);
                    el.children.push(starlink_xml::Node::Text(value));
                }
                XmlBinding::Attr {
                    field,
                    path,
                    attr,
                    optional,
                } => {
                    let value = match self.field_text(msg, field) {
                        Some(v) => v,
                        None if *optional => continue,
                        None => {
                            return Err(MdlError::MissingField {
                                message_name: self.name.clone(),
                                field: field.clone(),
                            })
                        }
                    };
                    let el = ensure_path(&mut root, path, &dynamic);
                    el.set_attr(attr.clone(), value);
                }
                XmlBinding::List {
                    field,
                    parent,
                    item,
                } => {
                    let items: Vec<Value> = match msg.get(field) {
                        Some(Value::Array(items)) => items.clone(),
                        Some(other) => vec![other.clone()],
                        None => Vec::new(),
                    };
                    let rules = self.item_rules.get(field);
                    let parent_el = ensure_path(&mut root, parent, &dynamic);
                    for (i, value) in items.iter().enumerate() {
                        let el = self.compose_item(field, item, rules, value, i)?;
                        parent_el.children.push(starlink_xml::Node::Element(el));
                    }
                }
            }
        }
        // Guards supply constant fields that the abstract message omitted
        // (e.g. a fixed method name for this variant). Nothing to emit —
        // the Text/Name bindings already consumed them via field_text.
        Ok(root)
    }

    fn compose_item(
        &self,
        list_field: &str,
        item: &Step,
        rules: Option<&Vec<ItemRule>>,
        value: &Value,
        index: usize,
    ) -> Result<Element> {
        // Element name: ItemName rule > static step name > positional.
        let mut name = match item {
            Step::Name(n) => n.clone(),
            Step::Any | Step::Dynamic(_) => format!("param{}", index + 1),
        };
        let mut el;
        match rules {
            None => {
                el = Element::new(String::new());
                value_to_tree(&mut el, value);
            }
            Some(rules) => {
                let fields = value.as_struct().ok_or_else(|| MdlError::BadValue {
                    field: list_field.to_owned(),
                    message: format!(
                        "list with item rules needs struct items, found {}",
                        value.kind()
                    ),
                })?;
                el = Element::new(String::new());
                for rule in rules {
                    match rule {
                        ItemRule::Name { sub } => {
                            if let Some(v) = struct_text(fields, sub) {
                                name = v;
                            }
                        }
                        ItemRule::Text { sub, rel } => {
                            if let Some(v) = struct_text(fields, sub) {
                                let target = ensure_path(&mut el, rel, &HashMap::new());
                                target.children.push(starlink_xml::Node::Text(v));
                            }
                        }
                        ItemRule::Tree { sub, rel } => {
                            if let Some(f) = fields.iter().find(|f| f.label() == sub.as_str()) {
                                let target = ensure_path(&mut el, rel, &HashMap::new());
                                value_to_tree(target, f.value());
                            }
                        }
                        ItemRule::Attr { sub, rel, attr } => {
                            if let Some(v) = struct_text(fields, sub) {
                                let target = ensure_path(&mut el, rel, &HashMap::new());
                                target.set_attr(attr.clone(), v);
                            }
                        }
                    }
                }
            }
        }
        el.name = name;
        Ok(el)
    }

    /// A field's text value, falling back to an equality guard's constant.
    fn field_text(&self, msg: &AbstractMessage, field: &str) -> Option<String> {
        msg.get(field).map(Value::to_text).or_else(|| {
            self.guards
                .iter()
                .find(|g| g.field == field && g.op == GuardOp::Equals)
                .map(|g| g.value.clone())
        })
    }
}

/// Canonical XML ↔ [`Value`] tree mapping, used by list items without
/// explicit rules and by `ItemTree` rules:
///
/// * a leaf element ↔ its text ([`Value::Str`]),
/// * an element whose children are all named `item` ↔ [`Value::Array`],
/// * any other element with children ↔ [`Value::Struct`] (one field per
///   child element, named by its local name).
fn tree_to_value(el: &Element) -> Value {
    let children: Vec<&Element> = el.child_elements().collect();
    if children.is_empty() {
        return Value::Str(el.text());
    }
    if children.iter().all(|c| c.local_name() == "item") {
        return Value::Array(children.into_iter().map(tree_to_value).collect());
    }
    Value::Struct(
        children
            .into_iter()
            .map(|c| Field::new(c.local_name().to_owned(), tree_to_value(c)))
            .collect(),
    )
}

/// Inverse of [`tree_to_value`]: renders a value into child nodes of
/// `parent`.
fn value_to_tree(parent: &mut Element, value: &Value) {
    match value {
        Value::Struct(fields) => {
            for f in fields {
                let mut child = Element::new(f.label().to_owned());
                value_to_tree(&mut child, f.value());
                parent.children.push(starlink_xml::Node::Element(child));
            }
        }
        Value::Array(items) => {
            for item in items {
                let mut child = Element::new("item");
                value_to_tree(&mut child, item);
                parent.children.push(starlink_xml::Node::Element(child));
            }
        }
        Value::Null => {}
        other => parent
            .children
            .push(starlink_xml::Node::Text(other.to_text())),
    }
}

fn local(name: &str) -> &str {
    match name.rfind(':') {
        Some(i) => &name[i + 1..],
        None => name,
    }
}

fn resolve_static<'e>(root: &'e Element, path: &XPath) -> Option<&'e Element> {
    let mut current = root;
    for step in path {
        current = match step {
            Step::Name(n) => current.child(local(n))?,
            Step::Any => current.child_elements().next()?,
            Step::Dynamic(_) => return None,
        };
    }
    Some(current)
}

fn struct_text(fields: &[Field], sub: &str) -> Option<String> {
    fields
        .iter()
        .find(|f| f.label() == sub)
        .map(|f| f.value().to_text())
}

/// Walks `path` from `root`, creating missing elements, and returns the
/// final element. `Dynamic` steps resolve through the bound-name map and
/// create an element with the bound name when missing.
fn ensure_path<'e>(
    root: &'e mut Element,
    path: &XPath,
    dynamic: &HashMap<String, String>,
) -> &'e mut Element {
    let mut current = root;
    for step in path {
        let name: String = match step {
            Step::Name(n) => n.clone(),
            Step::Dynamic(f) => dynamic.get(f).cloned().unwrap_or_else(|| f.clone()),
            Step::Any => {
                // First element child, creating a generic one if empty.
                let has_el = current.child_elements().next().is_some();
                if !has_el {
                    current
                        .children
                        .push(starlink_xml::Node::Element(Element::new("item")));
                }
                let idx = current
                    .children
                    .iter()
                    .position(|c| matches!(c, starlink_xml::Node::Element(_)))
                    .expect("element child ensured above");
                current = match &mut current.children[idx] {
                    starlink_xml::Node::Element(e) => e,
                    starlink_xml::Node::Text(_) => unreachable!("position matched an element"),
                };
                continue;
            }
        };
        let pos = current.children.iter().position(
            |c| matches!(c, starlink_xml::Node::Element(e) if e.local_name() == local(&name)),
        );
        let idx = match pos {
            Some(i) => i,
            None => {
                current
                    .children
                    .push(starlink_xml::Node::Element(Element::new(name.clone())));
                current.children.len() - 1
            }
        };
        current = match &mut current.children[idx] {
            starlink_xml::Node::Element(e) => e,
            starlink_xml::Node::Text(_) => unreachable!("index selects an element"),
        };
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::MdlDocument;

    fn program(spec: &str) -> XmlProgram {
        let doc = MdlDocument::parse(spec).unwrap();
        XmlProgram::compile(&doc.messages[0]).unwrap()
    }

    const XMLRPC_CALL: &str = "\
<Dialect:xml>\n\
<Message:MethodCall>\n\
<Root:methodCall>\n\
<Text:MethodName=methodName>\n\
<List:Params=params/param>\n\
<ItemText:Params.value=value>\n\
<End:Message>";

    #[test]
    fn xmlrpc_methodcall_roundtrip() {
        let p = program(XMLRPC_CALL);
        let mut msg = AbstractMessage::new("MethodCall");
        msg.set_field("MethodName", Value::from("flickr.photos.search"));
        msg.set_field(
            "Params",
            Value::Array(vec![
                Value::Struct(vec![Field::new("value", Value::from("tree"))]),
                Value::Struct(vec![Field::new("value", Value::from("3"))]),
            ]),
        );
        let bytes = p.compose(&msg).unwrap();
        let text = String::from_utf8(bytes.clone()).unwrap();
        assert!(text.contains("<methodName>flickr.photos.search</methodName>"));
        assert!(text.contains("<param><value>tree</value></param>"));
        let back = p.parse(&bytes).unwrap();
        assert_eq!(
            back.get("MethodName").unwrap().as_str(),
            Some("flickr.photos.search")
        );
        let params = back.get("Params").unwrap().as_array().unwrap();
        assert_eq!(params.len(), 2);
        assert_eq!(
            params[1].as_struct().unwrap()[0].value().as_str(),
            Some("3")
        );
    }

    #[test]
    fn xmlrpc_typed_values_transparent_on_parse() {
        let p = program(XMLRPC_CALL);
        let wire = b"<methodCall><methodName>m</methodName><params>\
<param><value><string>hello</string></value></param>\
<param><value><int>4</int></value></param>\
</params></methodCall>";
        let msg = p.parse(wire).unwrap();
        let params = msg.get("Params").unwrap().as_array().unwrap();
        assert_eq!(
            params[0].as_struct().unwrap()[0].value().as_str(),
            Some("hello")
        );
        assert_eq!(
            params[1].as_struct().unwrap()[0].value().as_str(),
            Some("4")
        );
    }

    const SOAP_REQ: &str = "\
<Dialect:xml>\n\
<Message:SOAPRequest>\n\
<Root:soap:Envelope>\n\
<RootAttr:xmlns:soap=http://schemas.xmlsoap.org/soap/envelope/>\n\
<Name:MethodName=Body>\n\
<List:Params=Body/{MethodName}/*>\n\
<End:Message>";

    #[test]
    fn soap_dynamic_operation_name() {
        let p = program(SOAP_REQ);
        let mut msg = AbstractMessage::new("SOAPRequest");
        msg.set_field("MethodName", Value::from("Plus"));
        msg.set_field(
            "Params",
            Value::Array(vec![Value::from("3"), Value::from("4")]),
        );
        let bytes = p.compose(&msg).unwrap();
        let text = String::from_utf8(bytes.clone()).unwrap();
        assert!(text.contains("<Plus>"));
        assert!(text.contains("<param1>3</param1>"));
        let back = p.parse(&bytes).unwrap();
        assert_eq!(back.get("MethodName").unwrap().as_str(), Some("Plus"));
        let params = back.get("Params").unwrap().as_array().unwrap();
        assert_eq!(params, &[Value::Str("3".into()), Value::Str("4".into())]);
    }

    #[test]
    fn soap_parse_foreign_prefixes() {
        let p = program(SOAP_REQ);
        let wire = b"<soapenv:Envelope xmlns:soapenv=\"http://schemas.xmlsoap.org/soap/envelope/\">\
<soapenv:Body><m:Add xmlns:m=\"urn:calc\"><x>1</x><y>2</y></m:Add></soapenv:Body></soapenv:Envelope>";
        let msg = p.parse(wire).unwrap();
        assert_eq!(msg.get("MethodName").unwrap().as_str(), Some("Add"));
        let params = msg.get("Params").unwrap().as_array().unwrap();
        assert_eq!(params.len(), 2);
    }

    const GDATA_FEED: &str = "\
<Dialect:xml>\n\
<Message:Feed>\n\
<Root:feed>\n\
<Text:Title?=title>\n\
<List:Entries=entry>\n\
<ItemText:Entries.id=id>\n\
<ItemText:Entries.title=title>\n\
<ItemAttr:Entries.url=content@src>\n\
<End:Message>";

    #[test]
    fn gdata_feed_structured_entries() {
        let p = program(GDATA_FEED);
        let wire = b"<feed><title>Search Results</title>\
<entry><id>photo1</id><title>Tree</title><content type=\"image/jpeg\" src=\"http://x/1.jpg\"/></entry>\
<entry><id>photo2</id><title>Oak</title><content src=\"http://x/2.jpg\"/></entry>\
</feed>";
        let msg = p.parse(wire).unwrap();
        assert_eq!(msg.get("Title").unwrap().as_str(), Some("Search Results"));
        let entries = msg.get("Entries").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 2);
        let e0 = entries[0].as_struct().unwrap();
        assert_eq!(struct_text(e0, "id"), Some("photo1".into()));
        assert_eq!(struct_text(e0, "url"), Some("http://x/1.jpg".into()));
        // Roundtrip.
        let bytes = p.compose(&msg).unwrap();
        let back = p.parse(&bytes).unwrap();
        assert_eq!(back.get("Entries").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn optional_fields_skippable() {
        let p = program(GDATA_FEED);
        let msg = p.parse(b"<feed><entry><id>a</id></entry></feed>").unwrap();
        assert!(msg.get("Title").is_none());
        // Compose without the optional field also works.
        let bytes = p.compose(&msg).unwrap();
        assert!(p.parse(&bytes).is_ok());
    }

    #[test]
    fn missing_mandatory_text_is_error() {
        let p = program(XMLRPC_CALL);
        assert!(matches!(
            p.parse(b"<methodCall></methodCall>"),
            Err(MdlError::BadValue { .. })
        ));
        let msg = AbstractMessage::new("MethodCall");
        assert!(matches!(
            p.compose(&msg),
            Err(MdlError::MissingField { .. })
        ));
    }

    #[test]
    fn wrong_root_is_rule_failure() {
        let p = program(XMLRPC_CALL);
        assert!(matches!(
            p.parse(b"<other/>"),
            Err(MdlError::RuleFailed { .. })
        ));
    }

    #[test]
    fn guards_discriminate_variants() {
        let spec = "\
<Dialect:xml>\n\
<Message:SearchCall>\n\
<Root:methodCall>\n\
<Text:MethodName=methodName>\n\
<Rule:MethodName=flickr.photos.search>\n\
<End:Message>";
        let p = program(spec);
        assert!(p
            .parse(b"<methodCall><methodName>flickr.photos.search</methodName></methodCall>")
            .is_ok());
        assert!(matches!(
            p.parse(b"<methodCall><methodName>flickr.photos.getInfo</methodName></methodCall>"),
            Err(MdlError::RuleFailed { .. })
        ));
    }

    #[test]
    fn guard_constant_fills_compose() {
        let spec = "\
<Dialect:xml>\n\
<Message:SearchCall>\n\
<Root:methodCall>\n\
<Text:MethodName=methodName>\n\
<Rule:MethodName=flickr.photos.search>\n\
<End:Message>";
        let p = program(spec);
        let msg = AbstractMessage::new("SearchCall");
        let bytes = p.compose(&msg).unwrap();
        assert!(String::from_utf8(bytes)
            .unwrap()
            .contains("<methodName>flickr.photos.search</methodName>"));
    }

    #[test]
    fn item_name_rule_names_elements() {
        let spec = "\
<Dialect:xml>\n\
<Message:Typed>\n\
<Root:r>\n\
<List:Items=list/*>\n\
<ItemName:Items.kind>\n\
<ItemText:Items.text=.>\n\
<End:Message>";
        let p = program(spec);
        let mut msg = AbstractMessage::new("Typed");
        msg.set_field(
            "Items",
            Value::Array(vec![Value::Struct(vec![
                Field::new("kind", Value::from("int")),
                Field::new("text", Value::from("42")),
            ])]),
        );
        let bytes = p.compose(&msg).unwrap();
        let text = String::from_utf8(bytes.clone()).unwrap();
        assert!(text.contains("<int>42</int>"));
        let back = p.parse(&bytes).unwrap();
        let items = back.get("Items").unwrap().as_array().unwrap();
        let fields = items[0].as_struct().unwrap();
        assert_eq!(struct_text(fields, "kind"), Some("int".into()));
        assert_eq!(struct_text(fields, "text"), Some("42".into()));
    }

    #[test]
    fn empty_list_composes_and_parses() {
        let p = program(XMLRPC_CALL);
        let mut msg = AbstractMessage::new("MethodCall");
        msg.set_field("MethodName", Value::from("noargs"));
        msg.set_field("Params", Value::Array(vec![]));
        let bytes = p.compose(&msg).unwrap();
        let back = p.parse(&bytes).unwrap();
        assert_eq!(back.get("Params").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn compile_rejects_bad_specs() {
        let no_root =
            MdlDocument::parse("<Dialect:xml><Message:M><Text:F=p><End:Message>").unwrap();
        assert!(matches!(
            XmlProgram::compile(&no_root.messages[0]),
            Err(MdlError::SpecSemantics { .. })
        ));
        let orphan_item =
            MdlDocument::parse("<Dialect:xml><Message:M><Root:r><ItemText:L.s=p><End:Message>")
                .unwrap();
        assert!(matches!(
            XmlProgram::compile(&orphan_item.messages[0]),
            Err(MdlError::SpecSemantics { .. })
        ));
        let bad_attr =
            MdlDocument::parse("<Dialect:xml><Message:M><Root:r><Attr:F=path-no-at><End:Message>")
                .unwrap();
        assert!(matches!(
            XmlProgram::compile(&bad_attr.messages[0]),
            Err(MdlError::SpecSyntax { .. })
        ));
    }
}
