//! The text MDL dialect engine: line-oriented protocols such as HTTP.
//!
//! Supported items inside a `<Message:…>` block:
//!
//! * `<Request:Method RequestURI Version>` — the first line, split on
//!   single spaces into the named fields; a trailing `+` on the last name
//!   (`Reason+`) captures the rest of the line including spaces,
//! * `<Status:Version Code Reason+>` — alias of `Request` for response
//!   messages (the engine treats both as a line template),
//! * `<Headers:Name>` — the header block parsed into a structured field
//!   `Name` (one sub-field per header, duplicates preserved in order),
//! * `<Body:Name>` — everything after the blank line into text field
//!   `Name`; when composing, a `Content-Length` header is set
//!   automatically if the message has a header block,
//! * `<Rule:Field=Value>` — parse guard; also supports `Field^=Prefix`
//!   (starts-with) and `Field*=Substring` (contains), which REST messages
//!   need to discriminate on URI shapes.
//!
//! Wire form uses CRLF line endings; bare LF is tolerated on input.

use crate::ast::{MessageSpec, SpecItem};
use crate::dispatch::{Probe, TextProbe};
use crate::error::MdlError;
use crate::Result;
use starlink_message::{AbstractMessage, Field, Value};
use std::borrow::Cow;
use std::io::Write;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RuleOp {
    Equals,
    StartsWith,
    Contains,
}

#[derive(Debug, Clone)]
struct TextRule {
    field: String,
    op: RuleOp,
    value: String,
}

#[derive(Debug, Clone)]
enum TextItem {
    Line {
        fields: Vec<String>,
        rest_last: bool,
    },
    Headers {
        name: String,
    },
    Body {
        name: String,
    },
}

/// A compiled text message variant.
#[derive(Debug, Clone)]
pub(crate) struct TextProgram {
    pub(crate) name: String,
    items: Vec<TextItem>,
    rules: Vec<TextRule>,
}

impl TextProgram {
    pub(crate) fn compile(spec: &MessageSpec) -> Result<TextProgram> {
        let mut items = Vec::new();
        let mut rules = Vec::new();
        for item in &spec.items {
            match item.key.as_str() {
                "Request" | "Status" | "Line" => items.push(compile_line(item)?),
                "Headers" => items.push(TextItem::Headers {
                    name: item.rest.trim().to_owned(),
                }),
                "Body" => items.push(TextItem::Body {
                    name: item.rest.trim().to_owned(),
                }),
                "Rule" => rules.push(compile_rule(item)?),
                other => {
                    return Err(MdlError::SpecSemantics {
                        message: format!("unknown text-dialect item `<{other}:…>`"),
                        message_name: spec.name.clone(),
                    })
                }
            }
        }
        let line_count = items
            .iter()
            .filter(|i| matches!(i, TextItem::Line { .. }))
            .count();
        if line_count != 1 {
            return Err(MdlError::SpecSemantics {
                message: format!(
                    "text message needs exactly one Request/Status line, found {line_count}"
                ),
                message_name: spec.name.clone(),
            });
        }
        Ok(TextProgram {
            name: spec.name.clone(),
            items,
            rules,
        })
    }

    pub(crate) fn parse(&self, data: &[u8]) -> Result<AbstractMessage> {
        let text = std::str::from_utf8(data).map_err(|_| MdlError::NotUtf8 {
            field: self.name.clone(),
        })?;
        // Split head from body at the first blank line.
        let (head, body) = match text.find("\r\n\r\n") {
            Some(i) => (&text[..i], &text[i + 4..]),
            None => match text.find("\n\n") {
                Some(i) => (&text[..i], &text[i + 2..]),
                None => (text, ""),
            },
        };
        let mut lines = head.lines();
        let first = lines.next().unwrap_or("");
        let mut msg = AbstractMessage::new(&self.name);
        for item in &self.items {
            match item {
                TextItem::Line { fields, rest_last } => {
                    parse_line(first, fields, *rest_last, &mut msg, &self.name)?;
                }
                TextItem::Headers { name } => {
                    let mut headers = Vec::new();
                    for line in lines.by_ref() {
                        let line = line.trim_end_matches('\r');
                        if line.is_empty() {
                            continue;
                        }
                        let (hname, hvalue) =
                            line.split_once(':').ok_or_else(|| MdlError::BadValue {
                                field: name.clone(),
                                message: format!("malformed header line `{line}`"),
                            })?;
                        headers.push(Field::new(
                            hname.trim().to_owned(),
                            Value::Str(hvalue.trim().to_owned()),
                        ));
                    }
                    msg.push_field(Field::new(name.clone(), Value::Struct(headers)));
                }
                TextItem::Body { name } => {
                    msg.push_field(Field::new(name.clone(), Value::Str(body.to_owned())));
                }
            }
        }
        for rule in &self.rules {
            self.check_rule(rule, &msg)?;
        }
        Ok(msg)
    }

    /// Test-only convenience over [`Self::compose_into`].
    #[cfg(test)]
    pub(crate) fn compose(&self, msg: &AbstractMessage) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.compose_into(msg, &mut out)?;
        Ok(out)
    }

    /// Composes into a caller-provided buffer, clearing it first and
    /// reusing its capacity. Field text is written directly — string
    /// values are borrowed, not cloned. On error the buffer contents are
    /// unspecified.
    pub(crate) fn compose_into(&self, msg: &AbstractMessage, out: &mut Vec<u8>) -> Result<()> {
        out.clear();
        let body: Option<Cow<'_, str>> = self.items.iter().find_map(|i| match i {
            TextItem::Body { name } => {
                Some(msg.get(name).map(value_text).unwrap_or(Cow::Borrowed("")))
            }
            _ => None,
        });
        for item in &self.items {
            match item {
                TextItem::Line { fields, .. } => {
                    for (i, f) in fields.iter().enumerate() {
                        if i > 0 {
                            out.push(b' ');
                        }
                        match msg.get(f) {
                            Some(v) => out.extend_from_slice(value_text(v).as_bytes()),
                            None => {
                                let rule = self
                                    .rules
                                    .iter()
                                    .find(|r| &r.field == f && r.op == RuleOp::Equals)
                                    .ok_or_else(|| MdlError::MissingField {
                                        message_name: self.name.clone(),
                                        field: f.clone(),
                                    })?;
                                out.extend_from_slice(rule.value.as_bytes());
                            }
                        }
                    }
                    out.extend_from_slice(b"\r\n");
                }
                TextItem::Headers { name } => {
                    if let Some(Value::Struct(headers)) = msg.get(name) {
                        for h in headers {
                            if h.label().eq_ignore_ascii_case("content-length") {
                                // Recomputed below from the actual body.
                                continue;
                            }
                            out.extend_from_slice(h.label().as_bytes());
                            out.extend_from_slice(b": ");
                            out.extend_from_slice(value_text(h.value()).as_bytes());
                            out.extend_from_slice(b"\r\n");
                        }
                    }
                    if let Some(b) = &body {
                        write!(out, "Content-Length: {}\r\n", b.len())
                            .expect("writing to a Vec cannot fail");
                    }
                }
                TextItem::Body { .. } => {}
            }
        }
        out.extend_from_slice(b"\r\n");
        if let Some(b) = body {
            out.extend_from_slice(b.as_bytes());
        }
        Ok(())
    }

    /// Lowers rules on first-line fields into literal byte tests (see
    /// [`crate::dispatch`]): an equality/prefix rule on the line's first
    /// field becomes a message-prefix test, a rule on a later line field
    /// becomes a first-line substring test.
    pub(crate) fn probe(&self) -> Probe {
        let fields = match self.items.iter().find_map(|i| match i {
            TextItem::Line { fields, .. } => Some(fields),
            _ => None,
        }) {
            Some(fields) => fields,
            None => return Probe::Always,
        };
        let mut probe = TextProbe::default();
        for rule in &self.rules {
            let Some(pos) = fields.iter().position(|f| f == &rule.field) else {
                continue;
            };
            let value = rule.value.as_bytes();
            if value.is_empty() || value.contains(&b'\r') || value.contains(&b'\n') {
                continue;
            }
            if pos == 0 && probe.prefix.is_empty() {
                match rule.op {
                    RuleOp::Equals if fields.len() > 1 => {
                        // The first token ends at the first space.
                        probe.prefix = [value, b" "].concat();
                    }
                    RuleOp::Equals => {
                        // A single-field line IS the whole first line.
                        probe.prefix = value.to_vec();
                        probe.line_end_after_prefix = true;
                    }
                    RuleOp::StartsWith => probe.prefix = value.to_vec(),
                    RuleOp::Contains => {
                        if probe.line_contains.is_empty() {
                            probe.line_contains = value.to_vec();
                        }
                    }
                }
            } else if pos > 0 && probe.line_contains.is_empty() {
                match rule.op {
                    // Later fields are always preceded by a space.
                    RuleOp::Equals | RuleOp::StartsWith => {
                        probe.line_contains = [b" ", value].concat();
                    }
                    RuleOp::Contains => probe.line_contains = value.to_vec(),
                }
            }
        }
        if probe.prefix.is_empty() && probe.line_contains.is_empty() {
            Probe::Always
        } else {
            Probe::Text(probe)
        }
    }

    fn check_rule(&self, rule: &TextRule, msg: &AbstractMessage) -> Result<()> {
        let actual =
            msg.get(&rule.field)
                .map(Value::to_text)
                .ok_or_else(|| MdlError::RuleFailed {
                    message_name: self.name.clone(),
                    field: rule.field.clone(),
                    expected: rule.value.clone(),
                    actual: "<absent>".into(),
                })?;
        let ok = match rule.op {
            RuleOp::Equals => actual == rule.value,
            RuleOp::StartsWith => actual.starts_with(&rule.value),
            RuleOp::Contains => actual.contains(&rule.value),
        };
        if ok {
            Ok(())
        } else {
            Err(MdlError::RuleFailed {
                message_name: self.name.clone(),
                field: rule.field.clone(),
                expected: rule.value.clone(),
                actual,
            })
        }
    }
}

/// A value's wire text, borrowing when it is already a string.
fn value_text(v: &Value) -> Cow<'_, str> {
    match v.as_str() {
        Some(s) => Cow::Borrowed(s),
        None => Cow::Owned(v.to_text()),
    }
}

fn compile_line(item: &SpecItem) -> Result<TextItem> {
    let mut fields: Vec<String> = item.rest.split_whitespace().map(str::to_owned).collect();
    if fields.is_empty() {
        return Err(MdlError::SpecSyntax {
            message: "line template has no fields".into(),
            line: item.line,
        });
    }
    let mut rest_last = false;
    if let Some(last) = fields.last_mut() {
        if let Some(stripped) = last.strip_suffix('+') {
            *last = stripped.to_owned();
            rest_last = true;
        }
    }
    Ok(TextItem::Line { fields, rest_last })
}

fn compile_rule(item: &SpecItem) -> Result<TextRule> {
    for (needle, op) in [
        ("^=", RuleOp::StartsWith),
        ("*=", RuleOp::Contains),
        ("=", RuleOp::Equals),
    ] {
        if let Some(i) = item.rest.find(needle) {
            let field = item.rest[..i].trim().to_owned();
            let value = item.rest[i + needle.len()..].trim().to_owned();
            if field.is_empty() {
                break;
            }
            return Ok(TextRule { field, op, value });
        }
    }
    Err(MdlError::SpecSyntax {
        message: format!("malformed rule `{}`", item.rest),
        line: item.line,
    })
}

fn parse_line(
    line: &str,
    fields: &[String],
    rest_last: bool,
    msg: &mut AbstractMessage,
    message_name: &str,
) -> Result<()> {
    let mut remainder = line.trim_end_matches('\r');
    for (i, fname) in fields.iter().enumerate() {
        let is_last = i == fields.len() - 1;
        if is_last {
            if remainder.is_empty() && !rest_last {
                return Err(MdlError::BadValue {
                    field: fname.clone(),
                    message: format!("line of `{message_name}` too short"),
                });
            }
            msg.push_field(Field::new(fname.clone(), Value::Str(remainder.to_owned())));
            return Ok(());
        }
        match remainder.split_once(' ') {
            Some((head, tail)) => {
                msg.push_field(Field::new(fname.clone(), Value::Str(head.to_owned())));
                remainder = tail;
            }
            None => {
                return Err(MdlError::BadValue {
                    field: fname.clone(),
                    message: format!("line of `{message_name}` too short"),
                })
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::MdlDocument;

    const HTTP: &str = "\
<Dialect:text>\n\
<Message:HTTPRequest>\n\
<Request:Method RequestURI Version>\n\
<Headers:Headers>\n\
<Body:Body>\n\
<End:Message>\n\
<Message:HTTPResponse>\n\
<Status:Version Code Reason+>\n\
<Headers:Headers>\n\
<Body:Body>\n\
<End:Message>";

    fn programs() -> Vec<TextProgram> {
        let doc = MdlDocument::parse(HTTP).unwrap();
        doc.messages
            .iter()
            .map(|m| TextProgram::compile(m).unwrap())
            .collect()
    }

    #[test]
    fn parse_get_request() {
        let p = &programs()[0];
        let wire = b"GET /data/feed/api/all?q=tree HTTP/1.1\r\nHost: picasaweb.google.com\r\nAccept: */*\r\n\r\n";
        let msg = p.parse(wire).unwrap();
        assert_eq!(msg.get("Method").unwrap().as_str(), Some("GET"));
        assert_eq!(
            msg.get("RequestURI").unwrap().as_str(),
            Some("/data/feed/api/all?q=tree")
        );
        let headers = msg.get("Headers").unwrap().as_struct().unwrap();
        assert_eq!(headers.len(), 2);
        assert_eq!(headers[0].label(), "Host");
        assert_eq!(msg.get("Body").unwrap().as_str(), Some(""));
    }

    #[test]
    fn compose_sets_content_length() {
        let p = &programs()[0];
        let mut msg = AbstractMessage::new("HTTPRequest");
        msg.set_field("Method", Value::from("POST"));
        msg.set_field("RequestURI", Value::from("/xml-rpc"));
        msg.set_field("Version", Value::from("HTTP/1.1"));
        msg.set_field(
            "Headers",
            Value::Struct(vec![Field::new("Host", Value::from("flickr.com"))]),
        );
        msg.set_field("Body", Value::from("<methodCall/>"));
        let wire = String::from_utf8(p.compose(&msg).unwrap()).unwrap();
        assert!(wire.starts_with("POST /xml-rpc HTTP/1.1\r\n"));
        assert!(wire.contains("Content-Length: 13\r\n"));
        assert!(wire.ends_with("\r\n\r\n<methodCall/>"));
    }

    #[test]
    fn roundtrip_response_with_reason_spaces() {
        let p = &programs()[1];
        let mut msg = AbstractMessage::new("HTTPResponse");
        msg.set_field("Version", Value::from("HTTP/1.1"));
        msg.set_field("Code", Value::from("404"));
        msg.set_field("Reason", Value::from("Not Found"));
        msg.set_field("Headers", Value::Struct(vec![]));
        msg.set_field("Body", Value::from("missing"));
        let wire = p.compose(&msg).unwrap();
        let back = p.parse(&wire).unwrap();
        assert_eq!(back.get("Reason").unwrap().as_str(), Some("Not Found"));
        assert_eq!(back.get("Body").unwrap().as_str(), Some("missing"));
    }

    #[test]
    fn stale_content_length_is_recomputed() {
        let p = &programs()[0];
        let mut msg = AbstractMessage::new("HTTPRequest");
        msg.set_field("Method", Value::from("POST"));
        msg.set_field("RequestURI", Value::from("/x"));
        msg.set_field("Version", Value::from("HTTP/1.1"));
        msg.set_field(
            "Headers",
            Value::Struct(vec![Field::new("Content-Length", Value::from("9999"))]),
        );
        msg.set_field("Body", Value::from("ab"));
        let wire = String::from_utf8(p.compose(&msg).unwrap()).unwrap();
        assert!(wire.contains("Content-Length: 2\r\n"));
        assert!(!wire.contains("9999"));
    }

    #[test]
    fn lf_only_input_tolerated() {
        let p = &programs()[0];
        let wire = b"GET /x HTTP/1.1\nHost: h\n\nbody";
        let msg = p.parse(wire).unwrap();
        assert_eq!(msg.get("Body").unwrap().as_str(), Some("body"));
        let headers = msg.get("Headers").unwrap().as_struct().unwrap();
        assert_eq!(headers[0].value().as_str(), Some("h"));
    }

    #[test]
    fn short_line_rejected() {
        let p = &programs()[0];
        assert!(matches!(
            p.parse(b"GET\r\n\r\n"),
            Err(MdlError::BadValue { .. })
        ));
    }

    #[test]
    fn rules_guard_variants() {
        let spec = "\
<Dialect:text>\n\
<Message:SearchRequest>\n\
<Request:Method RequestURI Version>\n\
<Rule:Method=GET>\n\
<Rule:RequestURI^=/data/feed>\n\
<Headers:Headers>\n\
<Body:Body>\n\
<End:Message>";
        let doc = MdlDocument::parse(spec).unwrap();
        let p = TextProgram::compile(&doc.messages[0]).unwrap();
        assert!(p
            .parse(b"GET /data/feed/api/all?q=x HTTP/1.1\r\n\r\n")
            .is_ok());
        assert!(matches!(
            p.parse(b"POST /data/feed/api/all HTTP/1.1\r\n\r\n"),
            Err(MdlError::RuleFailed { .. })
        ));
        assert!(matches!(
            p.parse(b"GET /other HTTP/1.1\r\n\r\n"),
            Err(MdlError::RuleFailed { .. })
        ));
    }

    #[test]
    fn rule_supplies_line_field_on_compose() {
        let spec = "\
<Dialect:text>\n\
<Message:SearchRequest>\n\
<Request:Method RequestURI Version>\n\
<Rule:Method=GET>\n\
<Headers:Headers>\n\
<Body:Body>\n\
<End:Message>";
        let doc = MdlDocument::parse(spec).unwrap();
        let p = TextProgram::compile(&doc.messages[0]).unwrap();
        let mut msg = AbstractMessage::new("SearchRequest");
        msg.set_field("RequestURI", Value::from("/data/feed/all"));
        msg.set_field("Version", Value::from("HTTP/1.1"));
        let wire = String::from_utf8(p.compose(&msg).unwrap()).unwrap();
        assert!(wire.starts_with("GET /data/feed/all HTTP/1.1"));
    }

    #[test]
    fn missing_line_template_rejected() {
        let doc = MdlDocument::parse("<Dialect:text><Message:M><Body:B><End:Message>").unwrap();
        assert!(matches!(
            TextProgram::compile(&doc.messages[0]),
            Err(MdlError::SpecSemantics { .. })
        ));
    }

    #[test]
    fn duplicate_headers_preserved() {
        let p = &programs()[0];
        let wire = b"GET / HTTP/1.1\r\nSet-Thing: a\r\nSet-Thing: b\r\n\r\n";
        let msg = p.parse(wire).unwrap();
        let headers = msg.get("Headers").unwrap().as_struct().unwrap();
        assert_eq!(headers.len(), 2);
        assert_eq!(headers[1].value().as_str(), Some("b"));
    }
}
