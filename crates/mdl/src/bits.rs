//! Bit-level reading and writing for the binary MDL dialect.
//!
//! MDL field lengths are expressed in **bits** (paper §3.1: "a length
//! defining the length in bits of the field"), so the binary engine works
//! on a bit cursor. Bytes are filled most-significant-bit first, matching
//! how packed binary protocol headers are conventionally drawn.

use crate::error::MdlError;
use crate::Result;

/// A bit-granular cursor over an input buffer.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Cursor position in bits from the start of `data`.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader at bit offset 0.
    pub fn new(data: &'a [u8]) -> BitReader<'a> {
        BitReader { data, pos: 0 }
    }

    /// Bits remaining until the end of the buffer.
    pub fn remaining_bits(&self) -> usize {
        self.data.len() * 8 - self.pos
    }

    /// Current position in bits.
    pub fn position_bits(&self) -> usize {
        self.pos
    }

    /// Whether the cursor is on a byte boundary.
    pub fn is_byte_aligned(&self) -> bool {
        self.pos.is_multiple_of(8)
    }

    /// Reads `n` bits (0 < n ≤ 64) as a big-endian unsigned integer.
    ///
    /// # Errors
    ///
    /// [`MdlError::Truncated`] when fewer than `n` bits remain.
    pub fn read_bits(&mut self, n: usize, field: &str) -> Result<u64> {
        debug_assert!((1..=64).contains(&n), "read_bits supports 1..=64 bits");
        if self.remaining_bits() < n {
            return Err(MdlError::Truncated {
                field: field.to_owned(),
                needed_bits: n,
                available_bits: self.remaining_bits(),
            });
        }
        let mut out: u64 = 0;
        for _ in 0..n {
            let byte = self.data[self.pos / 8];
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            out = (out << 1) | u64::from(bit);
            self.pos += 1;
        }
        Ok(out)
    }

    /// Reads `n` whole bytes; requires byte alignment.
    ///
    /// # Errors
    ///
    /// [`MdlError::Truncated`] on short input; [`MdlError::BadValue`] when
    /// the cursor is mid-byte.
    pub fn read_bytes(&mut self, n: usize, field: &str) -> Result<&'a [u8]> {
        if !self.is_byte_aligned() {
            return Err(MdlError::BadValue {
                field: field.to_owned(),
                message: "byte read at non-byte-aligned position".into(),
            });
        }
        if self.remaining_bits() < n * 8 {
            return Err(MdlError::Truncated {
                field: field.to_owned(),
                needed_bits: n * 8,
                available_bits: self.remaining_bits(),
            });
        }
        let start = self.pos / 8;
        self.pos += n * 8;
        Ok(&self.data[start..start + n])
    }

    /// Reads every remaining byte; requires byte alignment.
    ///
    /// # Errors
    ///
    /// [`MdlError::BadValue`] when the cursor is mid-byte.
    pub fn read_to_end(&mut self, field: &str) -> Result<&'a [u8]> {
        let n = self.remaining_bits() / 8;
        self.read_bytes(n, field)
    }

    /// Advances to the next multiple of `bits` from the start of the
    /// buffer (GIOP bodies are 8-byte aligned: `align_to(64)`).
    ///
    /// # Errors
    ///
    /// [`MdlError::Truncated`] if the padding would run past the buffer.
    pub fn align_to(&mut self, bits: usize, field: &str) -> Result<()> {
        debug_assert!(bits > 0);
        let rem = self.pos % bits;
        if rem == 0 {
            return Ok(());
        }
        let pad = bits - rem;
        if self.remaining_bits() < pad {
            return Err(MdlError::Truncated {
                field: field.to_owned(),
                needed_bits: pad,
                available_bits: self.remaining_bits(),
            });
        }
        self.pos += pad;
        Ok(())
    }
}

/// A bit-granular output buffer.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    data: Vec<u8>,
    /// Number of valid bits in `data` (the final byte may be partial).
    bits: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Creates a writer over a recycled buffer, keeping its capacity but
    /// clearing its contents — the allocation-reuse entry point for
    /// `compose_into` paths.
    pub fn with_buffer(mut buf: Vec<u8>) -> BitWriter {
        buf.clear();
        BitWriter { data: buf, bits: 0 }
    }

    /// Number of bits written so far.
    pub fn position_bits(&self) -> usize {
        self.bits
    }

    /// Whether the cursor is on a byte boundary.
    pub fn is_byte_aligned(&self) -> bool {
        self.bits.is_multiple_of(8)
    }

    /// Writes the low `n` bits of `value`, most significant first.
    pub fn write_bits(&mut self, value: u64, n: usize) {
        debug_assert!((1..=64).contains(&n));
        for i in (0..n).rev() {
            let bit = ((value >> i) & 1) as u8;
            if self.bits.is_multiple_of(8) {
                self.data.push(0);
            }
            let byte = self.data.last_mut().expect("pushed above");
            *byte |= bit << (7 - (self.bits % 8));
            self.bits += 1;
        }
    }

    /// Writes whole bytes; requires byte alignment.
    ///
    /// # Errors
    ///
    /// [`MdlError::BadValue`] when the cursor is mid-byte.
    pub fn write_bytes(&mut self, bytes: &[u8], field: &str) -> Result<()> {
        if !self.is_byte_aligned() {
            return Err(MdlError::BadValue {
                field: field.to_owned(),
                message: "byte write at non-byte-aligned position".into(),
            });
        }
        self.data.extend_from_slice(bytes);
        self.bits += bytes.len() * 8;
        Ok(())
    }

    /// Zero-pads to the next multiple of `bits`.
    pub fn align_to(&mut self, bits: usize) {
        debug_assert!(bits > 0);
        let rem = self.bits % bits;
        if rem != 0 {
            let pad = bits - rem;
            for _ in 0..pad {
                if self.bits.is_multiple_of(8) {
                    self.data.push(0);
                }
                self.bits += 1;
            }
        }
    }

    /// Overwrites `nbytes` already-written bytes at `byte_offset` with the
    /// big-endian encoding of `value` — back-patching for length fields
    /// whose value is only known once the tail is composed.
    ///
    /// # Panics
    ///
    /// Panics if the range was not written yet.
    pub fn patch_bytes_be(&mut self, byte_offset: usize, nbytes: usize, value: u64) {
        for i in 0..nbytes {
            self.data[byte_offset + i] = (value >> (8 * (nbytes - 1 - i))) as u8;
        }
    }

    /// Finishes writing, zero-padding any partial final byte.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.align_to(8);
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bit_fields() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0x1F, 5);
        w.write_bits(0xDEAD, 16);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3, "a").unwrap(), 0b101);
        assert_eq!(r.read_bits(5, "b").unwrap(), 0x1F);
        assert_eq!(r.read_bits(16, "c").unwrap(), 0xDEAD);
    }

    #[test]
    fn sixty_four_bit_values() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 64);
        w.write_bits(0x0123_4567_89AB_CDEF, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(64, "x").unwrap(), u64::MAX);
        assert_eq!(r.read_bits(64, "y").unwrap(), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn truncation_detected() {
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        r.read_bits(4, "a").unwrap();
        let err = r.read_bits(8, "b").unwrap_err();
        assert!(matches!(
            err,
            MdlError::Truncated {
                available_bits: 4,
                ..
            }
        ));
    }

    #[test]
    fn alignment_reader_writer_agree() {
        let mut w = BitWriter::new();
        w.write_bits(1, 8);
        w.align_to(64);
        w.write_bytes(b"XY", "tail").unwrap();
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 10);
        let mut r = BitReader::new(&bytes);
        r.read_bits(8, "head").unwrap();
        r.align_to(64, "pad").unwrap();
        assert_eq!(r.read_bytes(2, "tail").unwrap(), b"XY");
    }

    #[test]
    fn unaligned_byte_access_rejected() {
        let mut w = BitWriter::new();
        w.write_bits(1, 3);
        assert!(w.write_bytes(b"z", "f").is_err());

        let data = [0u8; 2];
        let mut r = BitReader::new(&data);
        r.read_bits(3, "a").unwrap();
        assert!(r.read_bytes(1, "f").is_err());
        assert!(r.read_to_end("f").is_err());
    }

    #[test]
    fn read_to_end_consumes_all() {
        let data = b"hello";
        let mut r = BitReader::new(data);
        assert_eq!(r.read_to_end("f").unwrap(), b"hello");
        assert_eq!(r.remaining_bits(), 0);
    }

    #[test]
    fn align_when_already_aligned_is_noop() {
        let data = [1u8, 2, 3, 4, 5, 6, 7, 8];
        let mut r = BitReader::new(&data);
        r.align_to(64, "pad").unwrap();
        assert_eq!(r.position_bits(), 0);
        let mut w = BitWriter::new();
        w.write_bits(0xAB, 8);
        let before = w.position_bits();
        w.align_to(8);
        assert_eq!(w.position_bits(), before);
    }

    #[test]
    fn align_past_end_is_truncation() {
        let data = [0u8; 3];
        let mut r = BitReader::new(&data);
        r.read_bits(8, "a").unwrap();
        assert!(r.align_to(64, "pad").is_err());
    }
}
