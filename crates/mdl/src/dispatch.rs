//! Compiled variant-discriminator probes.
//!
//! Trying every message variant in declaration order is correct but pays
//! the full parse cost for each miss (paper §6 measures this interpreted
//! overhead). At compile time each dialect program lowers its cheap
//! distinguishing constraints — binary `<Rule:Field=Value>` guards on
//! fixed-offset fields, text first-line literals, XML root/operation tag
//! names — into a [`Probe`] the codec evaluates over the raw wire bytes
//! before committing to a variant.
//!
//! # Soundness contract
//!
//! A probe may *reject* input only when the variant's full parse would
//! certainly fail (probe-false ⟹ parse-fails). Dispatch then walks the
//! programs in declaration order, skipping rejected ones; the first
//! success is provably the same variant — with the same fields — that
//! exhaustive try-all would have produced. A probe that cannot decide
//! must answer "maybe" ([`Probe::Always`] accepts everything).

/// One fixed-position integer comparison compiled from a binary rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BitTest {
    /// Absolute offset of the field, in bits from the message start.
    pub(crate) bit_offset: usize,
    /// Field width in bits (1..=64).
    pub(crate) bits: usize,
    /// The raw value the rule demands.
    pub(crate) expect: u64,
    /// Whether the field is read byte-reversed (little-endian multi-byte).
    pub(crate) little_endian: bool,
}

impl BitTest {
    /// Whether the wire bytes *cannot* satisfy this test: the field is
    /// readable but holds a different value, or the input is too short to
    /// contain it (the real parse would fail with `Truncated`).
    fn rejects(&self, data: &[u8]) -> bool {
        match read_raw(data, self.bit_offset, self.bits, self.little_endian) {
            Some(raw) => raw != self.expect,
            None => true,
        }
    }
}

/// First-line constraints compiled from text-dialect rules.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct TextProbe {
    /// The message must start with these bytes (empty = unconstrained).
    pub(crate) prefix: Vec<u8>,
    /// After `prefix` the line must end (CR, LF or end of input) — an
    /// equality rule on a single-field line template.
    pub(crate) line_end_after_prefix: bool,
    /// The first line must contain these bytes (empty = unconstrained).
    pub(crate) line_contains: Vec<u8>,
}

impl TextProbe {
    fn rejects(&self, data: &[u8]) -> bool {
        if !self.prefix.is_empty() {
            if !data.starts_with(&self.prefix) {
                return true;
            }
            if self.line_end_after_prefix {
                match data.get(self.prefix.len()) {
                    None | Some(b'\r') | Some(b'\n') => {}
                    Some(_) => return true,
                }
            }
        }
        if !self.line_contains.is_empty() {
            let line_end = data
                .iter()
                .position(|&b| b == b'\n')
                .map_or(data.len(), |i| i + 1);
            if !contains_bytes(&data[..line_end], &self.line_contains) {
                return true;
            }
        }
        false
    }
}

/// Root-element and tag-name constraints compiled from XML templates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct XmlProbe {
    /// The document's root element must have this local name.
    pub(crate) root_local: String,
    /// Element-name substrings (from guards on `<Name:…>`-bound fields)
    /// that must appear literally in the document bytes. Text-bound
    /// guards are *not* lowered here: character data may be entity-escaped
    /// on the wire, so a byte search would unsoundly reject.
    pub(crate) name_contains: Vec<Vec<u8>>,
}

impl XmlProbe {
    fn rejects(&self, data: &[u8]) -> bool {
        // An undecidable prolog means "maybe": let the parser decide.
        if let Some(root) = sniff_root_local(data) {
            if root != self.root_local.as_bytes() {
                return true;
            }
        }
        self.name_contains
            .iter()
            .any(|needle| !contains_bytes(data, needle))
    }
}

/// A variant's compiled discriminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Probe {
    /// Conjunction of fixed-offset integer tests (binary dialect).
    Binary(Vec<BitTest>),
    /// First-line literal tests (text dialect).
    Text(TextProbe),
    /// Root/tag-name tests (XML dialect).
    Xml(XmlProbe),
    /// No cheap discriminator derivable: always attempt the full parse.
    Always,
}

impl Probe {
    /// Whether the variant's parse would certainly fail on `data`.
    pub(crate) fn rejects(&self, data: &[u8]) -> bool {
        match self {
            Probe::Binary(tests) => tests.iter().any(|t| t.rejects(data)),
            Probe::Text(p) => p.rejects(data),
            Probe::Xml(p) => p.rejects(data),
            Probe::Always => false,
        }
    }

    /// Whether this probe can ever reject anything.
    pub(crate) fn is_discriminating(&self) -> bool {
        !matches!(self, Probe::Always)
    }
}

/// Reads `bits` at `bit_offset` the way the binary engine's `read_fixed`
/// would: byte-reversed when `little_endian` (the builder only sets it for
/// byte-aligned whole-byte fields), MSB-first otherwise. `None` when the
/// input is too short.
fn read_raw(data: &[u8], bit_offset: usize, bits: usize, little_endian: bool) -> Option<u64> {
    if data.len() * 8 < bit_offset + bits {
        return None;
    }
    if little_endian {
        let start = bit_offset / 8;
        let mut v: u64 = 0;
        for i in 0..bits / 8 {
            v |= u64::from(data[start + i]) << (8 * i);
        }
        Some(v)
    } else {
        let mut out: u64 = 0;
        for pos in bit_offset..bit_offset + bits {
            let byte = data[pos / 8];
            let bit = (byte >> (7 - (pos % 8))) & 1;
            out = (out << 1) | u64::from(bit);
        }
        Some(out)
    }
}

fn contains_bytes(haystack: &[u8], needle: &[u8]) -> bool {
    if needle.is_empty() {
        return true;
    }
    haystack
        .windows(needle.len())
        .any(|window| window == needle)
}

/// Extracts the root element's local name from raw document bytes without
/// building a DOM: skips whitespace, the XML declaration, processing
/// instructions, comments and `<!…>` declarations, then reads the first
/// start tag's name. Returns `None` whenever the prolog is not plainly
/// recognisable — the caller must then fall through to the real parser.
pub(crate) fn sniff_root_local(data: &[u8]) -> Option<&[u8]> {
    let mut rest = data;
    loop {
        while let [b, tail @ ..] = rest {
            if b.is_ascii_whitespace() {
                rest = tail;
            } else {
                break;
            }
        }
        if rest.first() != Some(&b'<') {
            return None;
        }
        match rest.get(1)? {
            b'?' => {
                // `<?xml …?>` / processing instruction.
                let end = find_bytes(rest, b"?>")?;
                rest = &rest[end + 2..];
            }
            b'!' => {
                if rest.starts_with(b"<!--") {
                    let end = find_bytes(rest, b"-->")?;
                    rest = &rest[end + 3..];
                } else {
                    // DOCTYPE etc. — a naive '>' scan mishandles internal
                    // subsets, so only trust it when no '[' intervenes.
                    let end = rest.iter().position(|&b| b == b'>')?;
                    if rest[..end].contains(&b'[') {
                        return None;
                    }
                    rest = &rest[end + 1..];
                }
            }
            _ => {
                let name_len = rest[1..]
                    .iter()
                    .position(|&b| b.is_ascii_whitespace() || b == b'>' || b == b'/' || b == b'<')
                    .unwrap_or(rest.len() - 1);
                if name_len == 0 {
                    return None;
                }
                let name = &rest[1..1 + name_len];
                // Local part: after the last ':'.
                let local = match name.iter().rposition(|&b| b == b':') {
                    Some(i) => &name[i + 1..],
                    None => name,
                };
                if local.is_empty() {
                    return None;
                }
                return Some(local);
            }
        }
    }
}

fn find_bytes(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_test_big_endian() {
        let t = BitTest {
            bit_offset: 8,
            bits: 16,
            expect: 0xBEEF,
            little_endian: false,
        };
        assert!(!t.rejects(&[0x00, 0xBE, 0xEF]));
        assert!(t.rejects(&[0x00, 0xBE, 0xEE]));
        // Too short ⟹ parse would truncate ⟹ reject.
        assert!(t.rejects(&[0x00, 0xBE]));
    }

    #[test]
    fn bit_test_little_endian() {
        let t = BitTest {
            bit_offset: 0,
            bits: 32,
            expect: 0x0102_0304,
            little_endian: true,
        };
        assert!(!t.rejects(&[0x04, 0x03, 0x02, 0x01]));
        assert!(t.rejects(&[0x01, 0x02, 0x03, 0x04]));
    }

    #[test]
    fn bit_test_sub_byte_offset() {
        // 4-bit field at bit offset 4: low nibble of the first byte.
        let t = BitTest {
            bit_offset: 4,
            bits: 4,
            expect: 0x9,
            little_endian: false,
        };
        assert!(!t.rejects(&[0x29]));
        assert!(t.rejects(&[0x92]));
    }

    #[test]
    fn text_prefix_and_terminator() {
        let p = TextProbe {
            prefix: b"M-SEARCH ".to_vec(),
            ..TextProbe::default()
        };
        assert!(!p.rejects(b"M-SEARCH * HTTP/1.1\r\n\r\n"));
        assert!(p.rejects(b"NOTIFY * HTTP/1.1\r\n\r\n"));

        let exact = TextProbe {
            prefix: b"PING".to_vec(),
            line_end_after_prefix: true,
            ..TextProbe::default()
        };
        assert!(!exact.rejects(b"PING\r\n"));
        assert!(!exact.rejects(b"PING"));
        assert!(exact.rejects(b"PINGX\r\n"));
    }

    #[test]
    fn text_line_contains_limited_to_first_line() {
        let p = TextProbe {
            line_contains: b" HTTP/".to_vec(),
            ..TextProbe::default()
        };
        assert!(!p.rejects(b"GET /x HTTP/1.1\r\nHost: h\r\n\r\n"));
        assert!(p.rejects(b"GET /x\r\nVersion: HTTP/1.1\r\n\r\n"));
    }

    #[test]
    fn xml_root_sniff() {
        assert_eq!(
            sniff_root_local(b"<feed><entry/></feed>"),
            Some(&b"feed"[..])
        );
        assert_eq!(
            sniff_root_local(b"<?xml version=\"1.0\"?>\n<methodCall/>"),
            Some(&b"methodCall"[..])
        );
        assert_eq!(
            sniff_root_local(b"<!-- c --><soapenv:Envelope>"),
            Some(&b"Envelope"[..])
        );
        assert_eq!(sniff_root_local(b"<!DOCTYPE r><r/>"), Some(&b"r"[..]));
        // Undecidable prologs yield None, never a wrong answer.
        assert_eq!(sniff_root_local(b"not xml"), None);
        assert_eq!(
            sniff_root_local(b"<!DOCTYPE r [<!ENTITY x \"y\">]><r/>"),
            None
        );
        assert_eq!(sniff_root_local(b""), None);
    }

    #[test]
    fn xml_probe_rejects_other_root() {
        let p = XmlProbe {
            root_local: "methodCall".into(),
            name_contains: vec![],
        };
        assert!(!p.rejects(b"<methodCall/>"));
        assert!(!p.rejects(b"<m:methodCall/>"));
        assert!(p.rejects(b"<methodResponse/>"));
        // Unsniffable input is left to the parser.
        assert!(!p.rejects(b"garbage"));
    }

    #[test]
    fn xml_name_contains() {
        let p = XmlProbe {
            root_local: "Envelope".into(),
            name_contains: vec![b"Response".to_vec()],
        };
        assert!(!p.rejects(b"<Envelope><Body><AddResponse/></Body></Envelope>"));
        assert!(p.rejects(b"<Envelope><Body><Add/></Body></Envelope>"));
    }

    #[test]
    fn always_accepts_everything() {
        assert!(!Probe::Always.rejects(b""));
        assert!(!Probe::Always.rejects(b"\xFF\xFF"));
        assert!(!Probe::Always.is_discriminating());
    }
}
