//! MDL — the Message Description Language of the Starlink framework.
//!
//! "A network message is organized as a sequence of text lines, or of bits
//! […] we have proposed a domain specific language approach to describe
//! messages such that the required message parsers and composers can be
//! generated automatically" (paper §4.1). Starlink is "flexible to allow
//! different types of language to be used to specify message formats […]
//! specialised languages for binary messages, text messages and XML
//! messages can be plugged into the framework".
//!
//! This crate implements that design:
//!
//! * a common item syntax `<Key:Value>` / `<Key:Name=Value>` (the GIOP
//!   spec of the paper's Fig. 5 parses verbatim),
//! * three dialect engines selected by `<Dialect:…>`:
//!   [`Dialect::Binary`] (bit-level fields, alignment, length
//!   references, `eof` fields, rule guards — GIOP/IIOP),
//!   [`Dialect::Text`] (request/status line templates, header
//!   blocks, bodies — HTTP), and
//!   [`Dialect::Xml`] (element/attribute/list templates with dynamic
//!   element names — SOAP, XML-RPC, GData),
//! * a generic [`MdlCodec`] that *interprets* a compiled spec to parse
//!   network bytes into [`starlink_message::AbstractMessage`]s and compose
//!   them back — the paper's "generic reusable software elements that
//!   interpret high-level specifications of message content".
//!
//! # Example: the paper's Fig. 5 GIOP request (abridged)
//!
//! ```
//! use starlink_mdl::{MdlCodec, MessageCodec};
//! use starlink_message::{AbstractMessage, Value};
//!
//! let spec = r#"
//! <Dialect:binary>
//! <Message:GIOPRequest>
//! <Rule:MessageType=0>
//! <MessageType:8>
//! <RequestID:32>
//! <OperationLength:32>
//! <Operation:OperationLength:text>
//! <align:64>
//! <ParameterArray:eof:valueseq>
//! <End:Message>
//! "#;
//! let codec = MdlCodec::from_text(spec)?;
//!
//! let mut msg = AbstractMessage::new("GIOPRequest");
//! msg.set_field("RequestID", Value::UInt(7));
//! msg.set_field("Operation", Value::from("Add"));
//! msg.set_field("ParameterArray", Value::Array(vec![Value::Int(1), Value::Int(2)]));
//!
//! let bytes = codec.compose(&msg)?;
//! let back = codec.parse(&bytes)?;
//! assert_eq!(back.get("Operation").unwrap().as_str(), Some("Add"));
//! # Ok::<(), starlink_mdl::MdlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod binary;
mod bits;
mod codec;
mod dispatch;
mod error;
mod text;
mod xml;

pub use ast::{Dialect, Endian, MdlDocument, MessageSpec, SpecItem};
pub use bits::{BitReader, BitWriter};
pub use codec::{MdlCodec, MessageCodec};
pub use error::MdlError;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, MdlError>;
