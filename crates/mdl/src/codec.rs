use crate::ast::{Dialect, MdlDocument};
use crate::binary::BinaryProgram;
use crate::dispatch::Probe;
use crate::error::MdlError;
use crate::text::TextProgram;
use crate::xml::XmlProgram;
use crate::Result;
use starlink_message::AbstractMessage;
use starlink_telemetry::{ProbeOutcome, TelemetrySink, TraceEvent};
use std::sync::Arc;

/// A parser/composer pair over abstract messages.
///
/// This is the interface the Starlink runtime sees: "message parsers read
/// the contents of a network packet and parse them into the
/// AbstractMessage representation […] message composers construct the data
/// packet for a particular protocol message" (paper §4.2). [`MdlCodec`]
/// is the spec-driven implementation; protocol crates may wrap it with
/// protocol-specific conveniences.
pub trait MessageCodec: Send + Sync {
    /// Parses wire bytes into an abstract message, selecting the matching
    /// message variant.
    ///
    /// # Errors
    ///
    /// Implementation-defined; [`MdlCodec`] returns
    /// [`MdlError::NoVariantMatched`] when nothing matches.
    fn parse(&self, data: &[u8]) -> Result<AbstractMessage>;

    /// Composes an abstract message to wire bytes, selecting the variant
    /// by the message's name.
    ///
    /// # Errors
    ///
    /// [`MdlError::UnknownMessage`] when the name matches no variant.
    fn compose(&self, msg: &AbstractMessage) -> Result<Vec<u8>>;

    /// Composes into a caller-provided buffer, clearing it first and
    /// reusing its capacity — the allocation-free steady-state path.
    /// On error the buffer contents are unspecified.
    ///
    /// The default forwards to [`MessageCodec::compose`]; implementations
    /// with a true in-place path override it.
    ///
    /// # Errors
    ///
    /// As [`MessageCodec::compose`].
    fn compose_into(&self, msg: &AbstractMessage, out: &mut Vec<u8>) -> Result<()> {
        let bytes = self.compose(msg)?;
        out.clear();
        out.extend_from_slice(&bytes);
        Ok(())
    }

    /// The names of the message variants this codec understands, in
    /// declaration order. Cached at compile time — calling this never
    /// allocates.
    fn message_names(&self) -> &[String];

    /// As [`MessageCodec::parse`], but reporting parse-related telemetry
    /// (dispatch-probe outcomes) into the caller's sink instead of any
    /// sink baked into the codec. Traced sessions pass a span-scoped
    /// sink here so probe events carry their session's causal metadata.
    ///
    /// The default ignores `sink` and forwards to [`MessageCodec::parse`].
    ///
    /// # Errors
    ///
    /// As [`MessageCodec::parse`].
    fn parse_with_sink(&self, data: &[u8], sink: &dyn TelemetrySink) -> Result<AbstractMessage> {
        let _ = sink;
        self.parse(data)
    }
}

#[derive(Debug, Clone)]
enum Program {
    Binary(BinaryProgram),
    Text(TextProgram),
    Xml(XmlProgram),
}

impl Program {
    fn name(&self) -> &str {
        match self {
            Program::Binary(p) => &p.name,
            Program::Text(p) => &p.name,
            Program::Xml(p) => &p.name,
        }
    }

    fn parse(&self, data: &[u8]) -> Result<AbstractMessage> {
        match self {
            Program::Binary(p) => p.parse(data),
            Program::Text(p) => p.parse(data),
            Program::Xml(p) => p.parse(data),
        }
    }

    fn compose_into(&self, msg: &AbstractMessage, out: &mut Vec<u8>) -> Result<()> {
        match self {
            Program::Binary(p) => p.compose_into(msg, out),
            Program::Text(p) => p.compose_into(msg, out),
            Program::Xml(p) => p.compose_into(msg, out),
        }
    }

    fn probe(&self) -> Probe {
        match self {
            Program::Binary(p) => p.probe(),
            Program::Text(p) => p.probe(),
            Program::Xml(p) => p.probe(),
        }
    }
}

/// A compiled MDL document: parses and composes every message variant the
/// spec defines. This is the runtime-specialised "generic parser/composer"
/// of the paper — building one from spec text is cheap enough to do on
/// deployment of a mediator.
///
/// Compilation also lowers each variant's discriminating constraints into
/// a probe dispatch table: parsing tests the wire bytes against each probe
/// and runs only plausible variants, falling back to
/// [`MdlCodec::parse_try_all`] when nothing matches.
#[derive(Clone)]
pub struct MdlCodec {
    programs: Vec<Program>,
    probes: Vec<Probe>,
    names: Vec<String>,
    /// Where dispatch-probe outcomes are reported; the no-op default
    /// keeps the hot parse path on [`MdlCodec::parse_uninstrumented`]'s
    /// exact instruction sequence behind one `enabled()` check.
    telemetry: Arc<dyn TelemetrySink>,
}

impl std::fmt::Debug for MdlCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Manual: the sink trait object has no Debug; everything else is
        // what you'd want to see anyway.
        f.debug_struct("MdlCodec")
            .field("programs", &self.programs)
            .field("probes", &self.probes)
            .field("names", &self.names)
            .finish_non_exhaustive()
    }
}

impl MdlCodec {
    /// Compiles an MDL document from its text.
    ///
    /// # Errors
    ///
    /// Returns [`MdlError::SpecSyntax`]/[`MdlError::SpecSemantics`] on
    /// malformed specs.
    pub fn from_text(spec: &str) -> Result<MdlCodec> {
        MdlCodec::from_document(&MdlDocument::parse(spec)?)
    }

    /// Compiles an already-parsed MDL document.
    ///
    /// # Errors
    ///
    /// Returns [`MdlError::SpecSemantics`] on dialect violations.
    pub fn from_document(doc: &MdlDocument) -> Result<MdlCodec> {
        let mut programs = Vec::with_capacity(doc.messages.len());
        for msg in &doc.messages {
            programs.push(match doc.dialect {
                Dialect::Binary => Program::Binary(BinaryProgram::compile(msg, doc.endian)?),
                Dialect::Text => Program::Text(TextProgram::compile(msg)?),
                Dialect::Xml => Program::Xml(XmlProgram::compile(msg)?),
            });
        }
        let probes = programs.iter().map(Program::probe).collect();
        let names = programs.iter().map(|p| p.name().to_owned()).collect();
        Ok(MdlCodec {
            programs,
            probes,
            names,
            telemetry: starlink_telemetry::noop_sink(),
        })
    }

    /// Reports dispatch-probe outcomes (hit / miss / fallback-to-try-all)
    /// into `sink` on every [`MessageCodec::parse`] call.
    #[must_use]
    pub fn with_telemetry(mut self, sink: Arc<dyn TelemetrySink>) -> MdlCodec {
        self.telemetry = sink;
        self
    }

    /// Parses with a specific message variant rather than trying all.
    ///
    /// # Errors
    ///
    /// [`MdlError::UnknownMessage`] when `name` matches no variant, or the
    /// variant's own parse error.
    pub fn parse_named(&self, name: &str, data: &[u8]) -> Result<AbstractMessage> {
        let program = self
            .programs
            .iter()
            .find(|p| p.name() == name)
            .ok_or_else(|| MdlError::UnknownMessage {
                name: name.to_owned(),
            })?;
        program.parse(data)
    }

    /// Parses by exhaustively attempting every variant in declaration
    /// order, formatting a diagnostic line per miss — the pre-dispatch
    /// behaviour, kept as the slow path and as the oracle the dispatching
    /// [`MessageCodec::parse`] is tested for equivalence against.
    ///
    /// # Errors
    ///
    /// [`MdlError::NoVariantMatched`] listing every variant's failure.
    pub fn parse_try_all(&self, data: &[u8]) -> Result<AbstractMessage> {
        let mut attempts = Vec::new();
        for program in &self.programs {
            match program.parse(data) {
                Ok(msg) => return Ok(msg),
                Err(e) => attempts.push(format!("{}: {e}", program.name())),
            }
        }
        Err(MdlError::NoVariantMatched { attempts })
    }

    /// The probe loop with dispatch telemetry reported into `sink`
    /// (shared by [`MessageCodec::parse`], which passes the codec's own
    /// sink, and [`MessageCodec::parse_with_sink`]).
    fn parse_instrumented(&self, data: &[u8], sink: &dyn TelemetrySink) -> Result<AbstractMessage> {
        for (program, probe) in self.programs.iter().zip(&self.probes) {
            if probe.rejects(data) {
                sink.record(&TraceEvent::DispatchProbe {
                    outcome: ProbeOutcome::Miss,
                });
                continue;
            }
            if let Ok(msg) = program.parse(data) {
                sink.record(&TraceEvent::DispatchProbe {
                    outcome: ProbeOutcome::Hit,
                });
                return Ok(msg);
            }
        }
        // Nothing matched: re-run exhaustively to build the attempt
        // report, lazily paying the diagnostic cost only on failure.
        sink.record(&TraceEvent::DispatchProbe {
            outcome: ProbeOutcome::Fallback,
        });
        self.parse_try_all(data)
    }

    /// The dispatching parse with no telemetry whatsoever — byte-for-byte
    /// the pre-instrumentation hot path. [`MessageCodec::parse`] delegates
    /// here when the sink is disabled; benches use it as the baseline the
    /// `< 5 %` no-op-sink overhead bound is asserted against.
    ///
    /// # Errors
    ///
    /// As [`MessageCodec::parse`].
    pub fn parse_uninstrumented(&self, data: &[u8]) -> Result<AbstractMessage> {
        for (program, probe) in self.programs.iter().zip(&self.probes) {
            if probe.rejects(data) {
                continue;
            }
            if let Ok(msg) = program.parse(data) {
                return Ok(msg);
            }
        }
        // Nothing matched: re-run exhaustively to build the attempt
        // report, lazily paying the diagnostic cost only on failure.
        self.parse_try_all(data)
    }

    /// Names of the variants whose compiled probe can actually reject
    /// input (an always-attempt probe discriminates nothing). Lets tests
    /// and benches verify dispatch coverage.
    pub fn probed_variants(&self) -> Vec<&str> {
        self.programs
            .iter()
            .zip(&self.probes)
            .filter(|(_, probe)| probe.is_discriminating())
            .map(|(program, _)| program.name())
            .collect()
    }
}

impl MessageCodec for MdlCodec {
    /// Probes the wire bytes once per variant and runs only plausible
    /// programs; the success path allocates nothing for error reporting.
    /// Probes only reject input their variant could never parse, so the
    /// outcome — chosen variant, fields, or failure — is identical to
    /// [`MdlCodec::parse_try_all`].
    ///
    /// With a telemetry sink attached (see [`MdlCodec::with_telemetry`])
    /// every probe rejection, admitted-and-parsed variant, and fallback
    /// to the exhaustive path is reported as a `DispatchProbe` event.
    fn parse(&self, data: &[u8]) -> Result<AbstractMessage> {
        if !self.telemetry.enabled() {
            return self.parse_uninstrumented(data);
        }
        self.parse_instrumented(data, self.telemetry.as_ref())
    }

    fn parse_with_sink(&self, data: &[u8], sink: &dyn TelemetrySink) -> Result<AbstractMessage> {
        if !sink.enabled() {
            return self.parse_uninstrumented(data);
        }
        self.parse_instrumented(data, sink)
    }

    fn compose(&self, msg: &AbstractMessage) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.compose_into(msg, &mut out)?;
        Ok(out)
    }

    fn compose_into(&self, msg: &AbstractMessage, out: &mut Vec<u8>) -> Result<()> {
        let program = self
            .programs
            .iter()
            .find(|p| p.name() == msg.name())
            .ok_or_else(|| MdlError::UnknownMessage {
                name: msg.name().to_owned(),
            })?;
        program.compose_into(msg, out)
    }

    fn message_names(&self) -> &[String] {
        &self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_message::Value;

    const GIOP: &str = "\
<Message:GIOPRequest>\n\
<Rule:MessageType=0>\n\
<MessageType:8><RequestID:32>\n\
<OperationLength:32><Operation:OperationLength>\n\
<align:64><ParameterArray:eof:valueseq>\n\
<End:Message>\n\
<Message:GIOPReply>\n\
<Rule:MessageType=1>\n\
<MessageType:8><RequestID:32><ReplyStatus:32>\n\
<align:64><ParameterArray:eof:valueseq>\n\
<End:Message>";

    #[test]
    fn variant_selection_by_rules() {
        let codec = MdlCodec::from_text(GIOP).unwrap();
        assert_eq!(codec.message_names(), vec!["GIOPRequest", "GIOPReply"]);

        let mut reply = AbstractMessage::new("GIOPReply");
        reply.set_field("RequestID", Value::UInt(9));
        reply.set_field("ReplyStatus", Value::UInt(0));
        reply.set_field("ParameterArray", Value::Array(vec![Value::Int(7)]));
        let bytes = codec.compose(&reply).unwrap();
        let back = codec.parse(&bytes).unwrap();
        assert_eq!(back.name(), "GIOPReply");
        assert_eq!(back.get("RequestID").unwrap().as_uint(), Some(9));
    }

    #[test]
    fn both_variants_carry_discriminating_probes() {
        let codec = MdlCodec::from_text(GIOP).unwrap();
        assert_eq!(codec.probed_variants(), vec!["GIOPRequest", "GIOPReply"]);
    }

    #[test]
    fn dispatch_agrees_with_try_all() {
        let codec = MdlCodec::from_text(GIOP).unwrap();
        let mut reply = AbstractMessage::new("GIOPReply");
        reply.set_field("RequestID", Value::UInt(3));
        reply.set_field("ReplyStatus", Value::UInt(2));
        reply.set_field("ParameterArray", Value::Array(vec![]));
        let bytes = codec.compose(&reply).unwrap();
        let fast = codec.parse(&bytes).unwrap();
        let slow = codec.parse_try_all(&bytes).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn no_variant_matched_lists_attempts() {
        let codec = MdlCodec::from_text(GIOP).unwrap();
        let err = codec.parse(&[0xFF; 2]).unwrap_err();
        match err {
            MdlError::NoVariantMatched { attempts } => assert_eq!(attempts.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_message_on_compose() {
        let codec = MdlCodec::from_text(GIOP).unwrap();
        let msg = AbstractMessage::new("NotAThing");
        assert!(matches!(
            codec.compose(&msg),
            Err(MdlError::UnknownMessage { .. })
        ));
    }

    #[test]
    fn parse_named_bypasses_variant_search() {
        let codec = MdlCodec::from_text(GIOP).unwrap();
        let mut req = AbstractMessage::new("GIOPRequest");
        req.set_field("RequestID", Value::UInt(1));
        req.set_field("Operation", Value::from("Add"));
        req.set_field("ParameterArray", Value::Array(vec![]));
        let bytes = codec.compose(&req).unwrap();
        assert!(codec.parse_named("GIOPRequest", &bytes).is_ok());
        assert!(codec.parse_named("GIOPReply", &bytes).is_err());
        assert!(matches!(
            codec.parse_named("Nope", &bytes),
            Err(MdlError::UnknownMessage { .. })
        ));
    }

    #[test]
    fn dispatch_outcomes_are_reported() {
        let recorder = Arc::new(starlink_telemetry::Recorder::new());
        let codec = MdlCodec::from_text(GIOP)
            .unwrap()
            .with_telemetry(recorder.clone());
        let mut reply = AbstractMessage::new("GIOPReply");
        reply.set_field("RequestID", Value::UInt(9));
        reply.set_field("ReplyStatus", Value::UInt(0));
        reply.set_field("ParameterArray", Value::Array(vec![]));
        let bytes = codec.compose(&reply).unwrap();
        // The request probe rejects (miss), the reply probe admits (hit).
        codec.parse(&bytes).unwrap();
        // Garbage: both probes reject, then the try-all fallback runs.
        let _ = codec.parse(&[0xFF; 2]);
        let snap = TelemetrySink::snapshot(recorder.as_ref()).unwrap();
        let probe = |outcome| snap.value("starlink_dispatch_probe_total", &[("outcome", outcome)]);
        assert_eq!(probe("hit"), Some(1));
        assert_eq!(probe("miss"), Some(3));
        assert_eq!(probe("fallback"), Some(1));
    }

    #[test]
    fn uninstrumented_parse_agrees_with_dispatch() {
        let codec = MdlCodec::from_text(GIOP).unwrap();
        let mut req = AbstractMessage::new("GIOPRequest");
        req.set_field("RequestID", Value::UInt(4));
        req.set_field("Operation", Value::from("Add"));
        req.set_field("ParameterArray", Value::Array(vec![Value::Int(1)]));
        let bytes = codec.compose(&req).unwrap();
        assert_eq!(
            codec.parse(&bytes).unwrap(),
            codec.parse_uninstrumented(&bytes).unwrap()
        );
    }

    #[test]
    fn compose_into_reuses_the_buffer() {
        let codec = MdlCodec::from_text(GIOP).unwrap();
        let mut req = AbstractMessage::new("GIOPRequest");
        req.set_field("RequestID", Value::UInt(1));
        req.set_field("Operation", Value::from("Add"));
        req.set_field("ParameterArray", Value::Array(vec![Value::Int(5)]));

        let reference = codec.compose(&req).unwrap();
        let mut buf = Vec::new();
        codec.compose_into(&req, &mut buf).unwrap();
        assert_eq!(buf, reference);
        let cap = buf.capacity();
        for _ in 0..16 {
            codec.compose_into(&req, &mut buf).unwrap();
            assert_eq!(buf, reference);
        }
        assert_eq!(buf.capacity(), cap, "steady-state compose must not grow");
    }
}
