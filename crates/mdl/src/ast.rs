use crate::error::MdlError;
use crate::Result;

/// Which dialect engine interprets a spec's message definitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dialect {
    /// Bit-level binary messages (GIOP/IIOP-style). The default, matching
    /// the paper's Fig. 5 which carries no dialect header.
    #[default]
    Binary,
    /// Line-oriented text messages (HTTP-style).
    Text,
    /// XML messages (SOAP, XML-RPC, GData feeds).
    Xml,
}

/// Byte order for multi-octet binary fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Endian {
    /// Network byte order (GIOP's default when the flags bit is 0).
    #[default]
    Big,
    /// Little-endian.
    Little,
}

/// One raw `<Key:rest>` item of an MDL spec.
///
/// The split happens at the *first* `:` only; dialect compilers interpret
/// the remainder (which may itself contain `:` — URLs in XML attribute
/// values, type suffixes in binary field items, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecItem {
    /// The item key (`Message`, `Rule`, a field name, …).
    pub key: String,
    /// Everything after the first `:`.
    pub rest: String,
    /// 1-based line number in the spec text, for diagnostics.
    pub line: usize,
}

impl SpecItem {
    /// Splits `rest` on `:` — used by the binary dialect where no value
    /// legitimately contains a colon.
    pub fn rest_parts(&self) -> Vec<&str> {
        self.rest.split(':').collect()
    }

    /// Splits `rest` at the first `=` into `(name, value)`.
    pub fn name_value(&self) -> Option<(&str, &str)> {
        self.rest.split_once('=')
    }
}

/// A single `<Message:Name> … <End:Message>` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageSpec {
    /// The message variant name (also the abstract message's name).
    pub name: String,
    /// The items between the `Message` and `End` markers, in order.
    pub items: Vec<SpecItem>,
}

/// A parsed MDL document: a dialect, an optional endianness, and one or
/// more message definitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MdlDocument {
    /// Dialect all message definitions in this document use.
    pub dialect: Dialect,
    /// Byte order (binary dialect only; ignored otherwise).
    pub endian: Endian,
    /// Message definitions in declaration order.
    pub messages: Vec<MessageSpec>,
}

impl MdlDocument {
    /// Parses MDL spec text.
    ///
    /// Lines may contain any number of `<…>` items; `#` starts a comment
    /// running to end of line; blank lines are ignored. `<Dialect:…>` and
    /// `<Endian:…>` must appear before the first `<Message:…>`.
    ///
    /// # Errors
    ///
    /// Returns [`MdlError::SpecSyntax`] on malformed items, unterminated
    /// messages, nested messages, or items outside a message body.
    pub fn parse(text: &str) -> Result<MdlDocument> {
        let mut dialect = Dialect::default();
        let mut endian = Endian::default();
        let mut messages: Vec<MessageSpec> = Vec::new();
        let mut current: Option<MessageSpec> = None;

        for (line_idx, raw_line) in text.lines().enumerate() {
            let line_no = line_idx + 1;
            let line = match raw_line.find('#') {
                Some(i) => &raw_line[..i],
                None => raw_line,
            };
            let mut rest = line.trim();
            while !rest.is_empty() {
                let start = rest.find('<').ok_or_else(|| MdlError::SpecSyntax {
                    message: format!("stray text `{rest}` outside an item"),
                    line: line_no,
                })?;
                if !rest[..start].trim().is_empty() {
                    return Err(MdlError::SpecSyntax {
                        message: format!("stray text `{}` before item", rest[..start].trim()),
                        line: line_no,
                    });
                }
                let end = rest[start..]
                    .find('>')
                    .ok_or_else(|| MdlError::SpecSyntax {
                        message: "unterminated `<…>` item".into(),
                        line: line_no,
                    })?
                    + start;
                let body = &rest[start + 1..end];
                rest = rest[end + 1..].trim_start();

                let (key, value) = body.split_once(':').ok_or_else(|| MdlError::SpecSyntax {
                    message: format!("item `<{body}>` lacks a `:`"),
                    line: line_no,
                })?;
                let key = key.trim();
                let value = value.trim();
                if key.is_empty() {
                    return Err(MdlError::SpecSyntax {
                        message: "item has an empty key".into(),
                        line: line_no,
                    });
                }
                match key {
                    "Dialect" => {
                        if current.is_some() || !messages.is_empty() {
                            return Err(MdlError::SpecSyntax {
                                message: "<Dialect:…> must precede all messages".into(),
                                line: line_no,
                            });
                        }
                        dialect = match value {
                            "binary" => Dialect::Binary,
                            "text" => Dialect::Text,
                            "xml" => Dialect::Xml,
                            other => {
                                return Err(MdlError::SpecSyntax {
                                    message: format!("unknown dialect `{other}`"),
                                    line: line_no,
                                })
                            }
                        };
                    }
                    "Endian" => {
                        endian = match value {
                            "big" => Endian::Big,
                            "little" => Endian::Little,
                            other => {
                                return Err(MdlError::SpecSyntax {
                                    message: format!("unknown endianness `{other}`"),
                                    line: line_no,
                                })
                            }
                        };
                    }
                    "Message" => {
                        if current.is_some() {
                            return Err(MdlError::SpecSyntax {
                                message: "nested <Message:…> (missing <End:Message>?)".into(),
                                line: line_no,
                            });
                        }
                        if value.is_empty() {
                            return Err(MdlError::SpecSyntax {
                                message: "message name is empty".into(),
                                line: line_no,
                            });
                        }
                        current = Some(MessageSpec {
                            name: value.to_owned(),
                            items: Vec::new(),
                        });
                    }
                    "End" => {
                        let msg = current.take().ok_or_else(|| MdlError::SpecSyntax {
                            message: "<End:Message> without an open message".into(),
                            line: line_no,
                        })?;
                        messages.push(msg);
                    }
                    _ => {
                        let msg = current.as_mut().ok_or_else(|| MdlError::SpecSyntax {
                            message: format!("item `<{key}:…>` outside a message definition"),
                            line: line_no,
                        })?;
                        msg.items.push(SpecItem {
                            key: key.to_owned(),
                            rest: value.to_owned(),
                            line: line_no,
                        });
                    }
                }
            }
        }
        if let Some(open) = current {
            return Err(MdlError::SpecSyntax {
                message: format!("message `{}` not closed by <End:Message>", open.name),
                line: text.lines().count(),
            });
        }
        if messages.is_empty() {
            return Err(MdlError::SpecSyntax {
                message: "spec defines no messages".into(),
                line: 1,
            });
        }
        Ok(MdlDocument {
            dialect,
            endian,
            messages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig5_parses_verbatim() {
        // The GIOP spec exactly as printed in Fig. 5 of the paper.
        let text = "\
<Message:GIOPRequest>\n\
<Rule:MessageType=0>\n\
<RequestID:32><Response:8>\n\
<ObjectKeyLength:32><ObjectKey:ObjectKeyLength>\n\
<OperationLength:32><Operation:OperationLength>\n\
<align:64><ParameterArray:eof>\n\
<End:Message>\n\
\n\
<Message:GIOPReply>\n\
<Rule:MessageType=1>\n\
<RequestID:32><ReplyStatus:32><ContextListLength:32>\n\
<align:64><ParameterArray:eof>\n\
<End:Message>\n";
        let doc = MdlDocument::parse(text).unwrap();
        assert_eq!(doc.dialect, Dialect::Binary);
        assert_eq!(doc.messages.len(), 2);
        assert_eq!(doc.messages[0].name, "GIOPRequest");
        assert_eq!(doc.messages[0].items.len(), 9);
        assert_eq!(doc.messages[1].name, "GIOPReply");
        let rule = &doc.messages[1].items[0];
        assert_eq!(rule.key, "Rule");
        assert_eq!(rule.name_value(), Some(("MessageType", "1")));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text =
            "# GIOP subset\n<Dialect:binary>\n\n<Message:M> # inline\n<F:8>\n<End:Message>\n";
        let doc = MdlDocument::parse(text).unwrap();
        assert_eq!(doc.messages[0].items.len(), 1);
    }

    #[test]
    fn dialect_and_endian_headers() {
        let doc =
            MdlDocument::parse("<Dialect:xml>\n<Message:M>\n<Root:r>\n<End:Message>").unwrap();
        assert_eq!(doc.dialect, Dialect::Xml);
        let doc =
            MdlDocument::parse("<Dialect:binary><Endian:little>\n<Message:M><F:8><End:Message>")
                .unwrap();
        assert_eq!(doc.endian, Endian::Little);
    }

    #[test]
    fn rest_preserves_colons_in_urls() {
        let doc = MdlDocument::parse(
            "<Dialect:xml>\n<Message:M>\n<RootAttr:xmlns=http://schemas.xmlsoap.org/soap/envelope/>\n<End:Message>",
        )
        .unwrap();
        let item = &doc.messages[0].items[0];
        assert_eq!(
            item.name_value(),
            Some(("xmlns", "http://schemas.xmlsoap.org/soap/envelope/"))
        );
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            MdlDocument::parse("<Message:M><F:8>"),
            Err(MdlError::SpecSyntax { .. })
        ));
        assert!(matches!(
            MdlDocument::parse("<End:Message>"),
            Err(MdlError::SpecSyntax { .. })
        ));
        assert!(matches!(
            MdlDocument::parse("<Message:A><Message:B>"),
            Err(MdlError::SpecSyntax { .. })
        ));
        assert!(matches!(
            MdlDocument::parse("<F:8>"),
            Err(MdlError::SpecSyntax { .. })
        ));
        assert!(matches!(
            MdlDocument::parse("stray <Message:M><End:Message>"),
            Err(MdlError::SpecSyntax { .. })
        ));
        assert!(matches!(
            MdlDocument::parse("<NoColon>"),
            Err(MdlError::SpecSyntax { .. })
        ));
        assert!(matches!(
            MdlDocument::parse(""),
            Err(MdlError::SpecSyntax { .. })
        ));
        assert!(matches!(
            MdlDocument::parse("<Message:M><End:Message><Dialect:xml>"),
            Err(MdlError::SpecSyntax { .. })
        ));
    }

    #[test]
    fn line_numbers_reported() {
        let err = MdlDocument::parse("<Message:M>\n<bad\n<End:Message>").unwrap_err();
        match err {
            MdlError::SpecSyntax { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }
}
