use std::fmt;

/// Errors produced when compiling an MDL spec or running a codec.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MdlError {
    /// The spec text is syntactically malformed.
    SpecSyntax {
        /// Description of the problem.
        message: String,
        /// 1-based line number in the spec text.
        line: usize,
    },
    /// The spec is syntactically fine but semantically invalid for its
    /// dialect (e.g. a text-dialect item inside a binary message).
    SpecSemantics {
        /// Description of the problem.
        message: String,
        /// Name of the message definition involved, when known.
        message_name: String,
    },
    /// Wire input ended before the spec was satisfied.
    Truncated {
        /// The field being read when input ran out.
        field: String,
        /// Bits still required.
        needed_bits: usize,
        /// Bits remaining in the buffer.
        available_bits: usize,
    },
    /// Wire input did not match any message variant of the spec.
    NoVariantMatched {
        /// Per-variant failure notes, `name: reason`.
        attempts: Vec<String>,
    },
    /// A rule guard failed while parsing a specific variant.
    RuleFailed {
        /// The message variant.
        message_name: String,
        /// The guarded field.
        field: String,
        /// Expected value (spec side).
        expected: String,
        /// Actual value (wire side).
        actual: String,
    },
    /// Composition failed because the abstract message lacks a field the
    /// spec needs.
    MissingField {
        /// The message variant being composed.
        message_name: String,
        /// The missing field.
        field: String,
    },
    /// Composition/parsing hit a value of the wrong shape.
    BadValue {
        /// The field involved.
        field: String,
        /// What went wrong.
        message: String,
    },
    /// The abstract message's name matches no variant of the spec.
    UnknownMessage {
        /// The offending name.
        name: String,
    },
    /// Underlying XML parse failure (xml dialect).
    Xml(String),
    /// The wire text was not valid UTF-8 where text was required.
    NotUtf8 {
        /// The field involved.
        field: String,
    },
}

impl fmt::Display for MdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdlError::SpecSyntax { message, line } => {
                write!(f, "mdl spec syntax error on line {line}: {message}")
            }
            MdlError::SpecSemantics {
                message,
                message_name,
            } => write!(f, "mdl spec error in <Message:{message_name}>: {message}"),
            MdlError::Truncated {
                field,
                needed_bits,
                available_bits,
            } => write!(
                f,
                "truncated input reading `{field}`: need {needed_bits} bits, have {available_bits}"
            ),
            MdlError::NoVariantMatched { attempts } => {
                write!(
                    f,
                    "no message variant matched input: {}",
                    attempts.join("; ")
                )
            }
            MdlError::RuleFailed {
                message_name,
                field,
                expected,
                actual,
            } => write!(
                f,
                "rule failed for {message_name}: {field} expected {expected}, found {actual}"
            ),
            MdlError::MissingField {
                message_name,
                field,
            } => write!(f, "cannot compose {message_name}: field `{field}` missing"),
            MdlError::BadValue { field, message } => {
                write!(f, "bad value for `{field}`: {message}")
            }
            MdlError::UnknownMessage { name } => {
                write!(f, "spec defines no message named `{name}`")
            }
            MdlError::Xml(e) => write!(f, "xml error: {e}"),
            MdlError::NotUtf8 { field } => write!(f, "field `{field}` is not valid UTF-8"),
        }
    }
}

impl std::error::Error for MdlError {}

impl From<starlink_xml::XmlError> for MdlError {
    fn from(e: starlink_xml::XmlError) -> Self {
        MdlError::Xml(e.to_string())
    }
}
