//! Probe-directed dispatch must be observationally identical to the
//! exhaustive try-all parse, for every `.mdl` model shipped in the
//! repository, on valid wires, corrupted wires, and random bytes. This
//! is the safety net for the dispatch tables: a probe is only allowed to
//! reject a variant whose full parse would certainly fail.

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use starlink_mdl::{MdlCodec, MessageCodec};
use starlink_message::{AbstractMessage, Field, Value};
use std::path::PathBuf;

fn models_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../models"))
}

/// Every `.mdl` model in the repository, compiled.
fn load_models() -> Vec<(String, MdlCodec)> {
    let mut models: Vec<(String, MdlCodec)> = std::fs::read_dir(models_dir())
        .expect("models directory")
        .filter_map(|e| {
            let path = e.expect("dir entry").path();
            if path.extension().is_some_and(|x| x == "mdl") {
                let name = path.file_name().unwrap().to_string_lossy().into_owned();
                let text = std::fs::read_to_string(&path).expect("readable model");
                Some((name, MdlCodec::from_text(&text).expect("model compiles")))
            } else {
                None
            }
        })
        .collect();
    models.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(models.len() >= 6, "expected the full model set");
    models
}

fn msg(name: &str, fields: Vec<(&str, Value)>) -> AbstractMessage {
    let mut m = AbstractMessage::new(name);
    for (label, value) in fields {
        m.set_field(label, value);
    }
    m
}

fn headers(pairs: &[(&str, &str)]) -> Value {
    Value::Struct(
        pairs
            .iter()
            .map(|(n, v)| Field::new(*n, Value::from(*v)))
            .collect(),
    )
}

/// Sample well-typed messages for each model file, covering every
/// variant that a plain compose can produce.
fn fixtures(model: &str) -> Vec<AbstractMessage> {
    match model {
        "GIOP.mdl" => vec![
            msg(
                "GIOPRequest",
                vec![
                    ("VersionMajor", Value::UInt(1)),
                    ("VersionMinor", Value::UInt(0)),
                    ("Flags", Value::UInt(0)),
                    ("RequestID", Value::UInt(9)),
                    ("ResponseExpected", Value::UInt(1)),
                    ("ObjectKey", Value::Bytes(b"calc".to_vec())),
                    ("Operation", Value::from("Add")),
                    (
                        "ParameterArray",
                        Value::Array(vec![Value::Int(3), Value::Int(4)]),
                    ),
                ],
            ),
            msg(
                "GIOPReply",
                vec![
                    ("VersionMajor", Value::UInt(1)),
                    ("VersionMinor", Value::UInt(0)),
                    ("Flags", Value::UInt(0)),
                    ("RequestID", Value::UInt(9)),
                    ("ReplyStatus", Value::UInt(0)),
                    ("ParameterArray", Value::Array(vec![Value::Int(7)])),
                ],
            ),
        ],
        "HTTP.mdl" => vec![
            msg(
                "HTTPRequest",
                vec![
                    ("Method", Value::from("GET")),
                    ("RequestURI", Value::from("/photos?q=tree")),
                    ("Version", Value::from("HTTP/1.1")),
                    ("Headers", headers(&[("Host", "example.org")])),
                    ("Body", Value::from("")),
                ],
            ),
            msg(
                "HTTPResponse",
                vec![
                    ("Version", Value::from("HTTP/1.1")),
                    ("Code", Value::from("200")),
                    ("Reason", Value::from("OK")),
                    ("Headers", headers(&[("Content-Type", "text/plain")])),
                    ("Body", Value::from("hello")),
                ],
            ),
        ],
        "SLP.mdl" => vec![
            msg(
                "SrvRqst",
                vec![
                    ("Version", Value::UInt(2)),
                    ("Function", Value::UInt(1)),
                    ("ServiceType", Value::from("service:printer")),
                ],
            ),
            msg(
                "SrvRply",
                vec![
                    ("Version", Value::UInt(2)),
                    ("Function", Value::UInt(2)),
                    ("ErrorCode", Value::UInt(0)),
                    (
                        "Urls",
                        Value::Array(vec![Value::from("service:printer://p1")]),
                    ),
                ],
            ),
        ],
        "SSDP.mdl" => vec![
            msg(
                "MSearch",
                vec![
                    ("Method", Value::from("M-SEARCH")),
                    ("Target", Value::from("*")),
                    ("Version", Value::from("HTTP/1.1")),
                    ("Headers", headers(&[("ST", "ssdp:all")])),
                    ("Body", Value::from("")),
                ],
            ),
            msg(
                "SearchResponse",
                vec![
                    ("Version", Value::from("HTTP/1.1")),
                    ("Code", Value::from("200")),
                    ("Reason", Value::from("OK")),
                    ("Headers", headers(&[("Location", "http://dev.local")])),
                    ("Body", Value::from("")),
                ],
            ),
        ],
        "SOAP.mdl" => vec![
            msg(
                "SOAPReply",
                vec![
                    ("MethodName", Value::from("PlusResponse")),
                    ("Params", Value::Array(vec![Value::from("7")])),
                ],
            ),
            msg(
                "SOAPRequest",
                vec![
                    ("MethodName", Value::from("Plus")),
                    (
                        "Params",
                        Value::Array(vec![Value::from("3"), Value::from("4")]),
                    ),
                ],
            ),
        ],
        "XMLRPC.mdl" => vec![
            msg(
                "MethodCall",
                vec![
                    ("MethodName", Value::from("flickr.photos.search")),
                    (
                        "Params",
                        Value::Array(vec![Value::Struct(vec![Field::new(
                            "value",
                            Value::from("tree"),
                        )])]),
                    ),
                ],
            ),
            msg(
                "MethodResponse",
                vec![(
                    "Params",
                    Value::Array(vec![Value::Struct(vec![Field::new(
                        "value",
                        Value::from("ok"),
                    )])]),
                )],
            ),
        ],
        "GDATA.mdl" => vec![
            msg(
                "GDataFeed",
                vec![
                    ("Title", Value::from("Search Results")),
                    (
                        "Entries",
                        Value::Array(vec![Value::Struct(vec![
                            Field::new("id", Value::from("gphoto-1")),
                            Field::new("title", Value::from("Photo 1")),
                            Field::new("url", Value::from("http://p.example.org/1.jpg")),
                        ])]),
                    ),
                ],
            ),
            msg(
                "GDataEntry",
                vec![
                    ("id", Value::from("gphoto-2")),
                    ("content", Value::from("a photo")),
                ],
            ),
        ],
        _ => Vec::new(),
    }
}

/// Valid wires per model, produced by the codec's own composer.
fn valid_wires(model: &str, codec: &MdlCodec) -> Vec<Vec<u8>> {
    fixtures(model)
        .iter()
        .map(|m| {
            codec
                .compose(m)
                .unwrap_or_else(|e| panic!("{model}: compose {}: {e}", m.name()))
        })
        .collect()
}

/// The equivalence property itself.
fn assert_equiv(model: &str, codec: &MdlCodec, data: &[u8], ctx: &str) {
    let fast = codec.parse(data);
    let slow = codec.parse_try_all(data);
    match (fast, slow) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "{model} ({ctx}): dispatch picked a different message"),
        (Err(_), Err(_)) => {}
        (fast, slow) => panic!(
            "{model} ({ctx}): dispatch ok={} but try-all ok={} on {data:?}",
            fast.is_ok(),
            slow.is_ok()
        ),
    }
}

#[test]
fn every_model_has_fixtures_for_its_composable_variants() {
    for (model, codec) in load_models() {
        let wires = valid_wires(&model, &codec);
        assert!(!wires.is_empty(), "{model}: no fixtures — add some");
        for wire in &wires {
            codec
                .parse(wire)
                .unwrap_or_else(|e| panic!("{model}: fixture wire unparseable: {e}"));
        }
    }
}

#[test]
fn dispatch_matches_try_all_on_valid_wires() {
    for (model, codec) in load_models() {
        for (i, wire) in valid_wires(&model, &codec).iter().enumerate() {
            assert_equiv(&model, &codec, wire, &format!("valid wire {i}"));
        }
    }
}

#[test]
fn dispatch_matches_try_all_under_mutation() {
    for (model, codec) in load_models() {
        let wires = valid_wires(&model, &codec);
        let mut rng = TestRng::for_test(&format!("mutation:{model}"));
        for (i, wire) in wires.iter().enumerate() {
            for round in 0..200usize {
                let mut data = wire.clone();
                match rng.below(3) {
                    // Flip one byte: corrupts discriminators, lengths,
                    // tag names…
                    0 if !data.is_empty() => {
                        let at = rng.below(data.len() as u64) as usize;
                        data[at] ^= (1 + rng.below(255)) as u8;
                    }
                    // Truncate: exercises the probes' truncation-handling.
                    1 => {
                        let keep = rng.below(data.len() as u64 + 1) as usize;
                        data.truncate(keep);
                    }
                    // Append garbage.
                    _ => {
                        data.push(rng.below(256) as u8);
                    }
                }
                assert_equiv(&model, &codec, &data, &format!("wire {i} mutation {round}"));
            }
        }
    }
}

proptest! {
    #[test]
    fn dispatch_matches_try_all_on_random_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        for (model, codec) in load_models() {
            let fast = codec.parse(&bytes);
            let slow = codec.parse_try_all(&bytes);
            match (fast, slow) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "{}", model),
                (Err(_), Err(_)) => {}
                (fast, slow) => prop_assert!(
                    false,
                    "{}: dispatch ok={} try-all ok={}",
                    model,
                    fast.is_ok(),
                    slow.is_ok()
                ),
            }
        }
    }
}

#[test]
fn compose_into_reuses_and_roundtrips_for_every_model() {
    for (model, codec) in load_models() {
        let mut buf = Vec::new();
        for m in fixtures(&model) {
            // Compose the same message twice into the same buffer: output
            // must match the allocating path and still parse back.
            for _ in 0..2 {
                codec.compose_into(&m, &mut buf).expect("compose_into");
                assert_eq!(buf, codec.compose(&m).unwrap(), "{model}: {}", m.name());
                let back = codec.parse(&buf).expect("roundtrip");
                assert_eq!(back.name(), m.name(), "{model}");
            }
        }
        // Steady state: composing each fixture once more must not grow
        // the buffer beyond the largest wire already seen.
        let cap = buf.capacity();
        let largest = fixtures(&model)
            .iter()
            .map(|m| codec.compose(m).unwrap().len())
            .max()
            .unwrap_or(0);
        if cap >= largest {
            for m in fixtures(&model) {
                codec.compose_into(&m, &mut buf).expect("compose_into");
            }
            assert_eq!(buf.capacity(), cap, "{model}: steady-state compose grew");
        }
    }
}
